"""Setuptools shim.

Kept alongside pyproject.toml so the package can be installed in
environments whose tooling predates PEP 660 editable installs
(``python setup.py develop``); ``pip install -e .`` remains the
recommended path.
"""

from setuptools import setup

setup()
