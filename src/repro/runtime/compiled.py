"""Fused compiled propagation: narrow planes, one-pass rounds, numba.

The third propagation backend (``backend="compiled"``) replays the same
kernel-agnostic packed schedule as :mod:`repro.runtime.batched` — the
:class:`~repro.runtime.batched.PropagationPlan` built once per topology
— but drives each bucket-queue round through a *fused* resolve path:

* **narrow planes** — the route-key/pid/bag planes are allocated in the
  plan's :meth:`~repro.runtime.batched.PropagationPlan.key_plane_dtype`
  (int32 whenever the whole packed-key range fits, true up to ~2900
  nodes), halving the memory traffic of every gather and scatter.  The
  int32 pid plane is guarded by
  :class:`~repro.runtime.batched.PathIdOverflow`: if a batch ever
  allocates more path cells than int32 can address, the batch is re-run
  with int64 planes — propagation is deterministic, so the retry is
  bit-identical, never silently wrapped.
* **fused rounds** — the batched backend's resolve performs a dozen
  numpy passes per round: a seven-array candidate compaction, separate
  scatter-min / winner / first-touch reductions, and full-size
  row-recovery divisions.  The fused resolve skips the compaction
  entirely (candidate positions double as tie-break ranks), folds
  winner selection and first-touch detection into a single scatter
  pass, and recovers origin rows only for the handful of selected
  candidates.  With numba available the scatter pass is a compiled
  ``@njit`` loop (:func:`_winner_touch_kernel`); without it a
  pure-numpy twin keeps the backend available on every install.
* **graceful degradation** — importing this module never raises:
  :data:`HAS_NUMBA` probes for numba once (the ``REPRO_NO_NUMBA``
  environment variable forces the probe off, which is how the CI
  no-numba matrix leg exercises the fallback), and a numba kernel that
  fails to compile at first use permanently falls back to the numpy
  twin for the process.

Exactness is inherited: the fused resolve computes the same winner set,
first-touch order, offer records and transactional conflict splits as
the batched replay (the shared :meth:`BatchedPropagator._commit` applies
them), and the differential suite in ``tests/runtime/test_compiled.py``
plus the goldens pin bit-identity against both other backends.  Result
assembly is shared too: the engine reads the finished planes through
``BatchState.touched_array``/``offer_columns`` and the path store's
``columns()`` into columnar :class:`~repro.runtime.fragments.RouteBlock`
fragments, so the narrow int32 planes flow into int64 block columns
without a per-route conversion loop.
"""

from __future__ import annotations

import os
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.runtime.batched import (
    _HUGE,
    INT32_MAX,
    BatchState,
    BatchedPathStore,
    BatchedPropagator,
    PathIdOverflow,
    PropagationPlan,
    _Arrays,
    numpy_available,
)
from repro.runtime.stores import CommunityBagStore

try:  # gated dependency, exactly like the batched backend
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

__all__ = [
    "HAS_NUMBA",
    "NUMBA_DISABLE_ENV",
    "CompiledPropagator",
    "compiled_available",
    "compiled_batch_size",
]

#: Environment variable that forces the pure-numpy fused path even when
#: numba is importable (the CI no-numba matrix leg sets it).
NUMBA_DISABLE_ENV = "REPRO_NO_NUMBA"


def _probe_numba():
    if os.environ.get(NUMBA_DISABLE_ENV):
        return None
    try:
        import numba
    except Exception:  # pragma: no cover - any broken install counts as absent
        return None
    return numba


_numba = _probe_numba()

#: Whether the fused rounds run through compiled numba kernels in this
#: interpreter.  False means the pure-numpy fused path carries the
#: backend — same results, still selectable everywhere.
HAS_NUMBA = _numba is not None


def compiled_available() -> bool:
    """Whether the compiled backend can run (numpy is the only hard
    requirement; numba merely accelerates it)."""
    return numpy_available()


def _py_winner_touch(flat, key, newly, work_key, work_touch):
    """One fused scatter pass: per-target winner + first-touch marks.

    The numba twin of the numpy reductions in
    :meth:`CompiledPropagator._resolve`'s fallback: a single loop walks
    the candidates once to scatter the packed (key, position) minimum
    and the first-touch position, then once more to emit the marks.
    Candidate position breaks key ties, so the earliest candidate in CSR
    edge order wins — exactly the frontier's sequential acceptance.
    """
    n = flat.shape[0]
    winner = np.zeros(n, dtype=np.uint8)
    first = np.zeros(n, dtype=np.uint8)
    for i in range(n):
        f = flat[i]
        work_key[f] = _HUGE
        work_touch[f] = _HUGE
    for i in range(n):
        f = flat[i]
        packed = np.int64(key[i]) * n + i
        if packed < work_key[f]:
            work_key[f] = packed
        if newly[i] and i < work_touch[f]:
            work_touch[f] = i
    for i in range(n):
        f = flat[i]
        if np.int64(key[i]) * n + i == work_key[f]:
            winner[i] = 1
        if newly[i] and work_touch[f] == i:
            first[i] = 1
    return winner, first


if HAS_NUMBA:  # pragma: no cover - exercised only where numba is installed
    try:
        _winner_touch_kernel = _numba.njit(cache=False)(_py_winner_touch)
    except Exception:
        HAS_NUMBA = False
        _winner_touch_kernel = None
else:
    _winner_touch_kernel = None


#: Default origins per compiled batch.  Measured sweet spot: wide
#: enough to amortise each level round's fixed numpy dispatch cost,
#: narrow enough that the per-round candidate working set stays cache
#: resident — single giant batches measure *slower* than 128 at bench
#: size despite running fewer rounds.
_COMPILED_BATCH_ROWS = 128


def compiled_batch_size(plan: PropagationPlan,
                        budget_bytes: int = 64 << 20) -> int:
    """Origins per compiled batch under a per-batch memory budget.

    Starts from the cache-friendly default batch width and shrinks it
    when the (origins x nodes) planes would blow the budget: three
    value planes in the plan's key dtype, the dirty plane, and three
    int64 scratch vectors.
    """
    item = (3 * np.dtype(plan.key_plane_dtype()).itemsize  # key/pid/bag
            + 1                                            # dirty
            + 3 * 8)                                       # scratch
    per_origin = item * max(plan.num_nodes, 1)
    return max(1, min(_COMPILED_BATCH_ROWS, budget_bytes // per_origin))


class CompiledPropagator(BatchedPropagator):
    """The fused replay loop over the shared packed schedule.

    Subclasses :class:`BatchedPropagator` for the level-synchronous
    sweep/drain machinery and the commit path — the semantics live
    there — and overrides plane construction (narrow dtypes, overflow
    guard) and per-round candidate resolution (the fused kernel).
    """

    #: Process-wide lever: flipped off permanently if the numba kernel
    #: ever fails to compile or execute, so a broken numba install
    #: degrades to the numpy twin instead of failing the run.
    _use_jit = HAS_NUMBA

    def __init__(self, plan: PropagationPlan,
                 bags: CommunityBagStore) -> None:
        super().__init__(plan, bags)
        #: plane dtype for this topology; promoted to int64 for good if
        #: a batch ever overflows the int32 path-id range.
        self._dtype = plan.key_plane_dtype()
        # Per-batch memo: whether the current alternatives mask records
        # anything at all (checked once per mask object, not per round).
        self._alt_mask_seen = None
        self._alt_any = False

    # -- construction hooks ---------------------------------------------------

    def _make_paths(self, num_origins: int) -> BatchedPathStore:
        limit = INT32_MAX if self._dtype is np.int32 else None
        return BatchedPathStore(capacity=max(1024, 2 * num_origins),
                                id_limit=limit)

    def _make_state(self, num_origins: int) -> _Arrays:
        return _Arrays(num_origins, self._plan.num_nodes,
                       self._plan.unset_key, dtype=self._dtype)

    # -- public API -----------------------------------------------------------

    def run_batch(
        self,
        origin_nodes: Sequence[int],
        origin_bags: Sequence[int],
        alt_nodes: FrozenSet[int] = frozenset(),
    ) -> BatchState:
        """Propagate the batch; transparently widen planes on overflow."""
        try:
            return super().run_batch(origin_nodes, origin_bags, alt_nodes)
        except PathIdOverflow:
            # Deterministic algorithm: the int64 re-run is bit-identical
            # to what the narrow run would have produced.  Promotion is
            # sticky — the topology/batch shape evidently needs it.
            self._dtype = np.int64
            return super().run_batch(origin_nodes, origin_bags, alt_nodes)

    # -- fused candidate resolution -------------------------------------------

    def _resolve(self, state: _Arrays, phase, flat, cand_to, edges, key,
                 alt_mask, touched_chunks, offer_chunks, paths,
                 mark_dirty: bool, in_queue: bool = False,
                 ) -> Tuple[Optional[object], Optional[Tuple]]:
        """Fused round resolution; semantics identical to the batched
        replay's :meth:`BatchedPropagator._resolve`.

        Differences are purely mechanical: no candidate compaction
        (positions are their own tie-break ranks, and at typical >50%
        active fractions compaction costs more than it saves), winner
        selection and first-touch detection in one fused scatter pass
        (numba-compiled when available), and origin rows recovered by
        division only for the selected few.
        """
        plan = self._plan
        num_nodes = plan.num_nodes
        span = plan.node_span
        cur_key = state.key_f[flat]
        better = key < cur_key
        if alt_mask is not self._alt_mask_seen:
            self._alt_mask_seen = alt_mask
            self._alt_any = bool(alt_mask.any())
        offer = alt_mask[cand_to] if self._alt_any else None
        if offer is not None and not offer.any():
            offer = None  # hint: the commit path skips offer recording
        has_better = bool(better.any())
        if not has_better and offer is None:
            return None, None
        # The phase's per-edge metadata decides whether edge ids are
        # needed at all downstream (customer/provider phases carry no
        # vias or bags on ordinary topologies).
        need_edges = phase.has_via or phase.has_bag

        row_cut = None
        if in_queue and has_better:
            tgt_pos = state.work_pos[flat]
            # Exporter queue positions, recovered from the key's
            # tie-break term (the exporter is itself a queue member).
            src_pos = state.work_pos[flat - cand_to + key % span - 1]
            conflict = better & (tgt_pos > src_pos)
            if conflict.any():
                cand_rows = (flat - cand_to) // num_nodes
                row_cut = np.full(state.key.shape[0], _HUGE, dtype=np.int64)
                np.minimum.at(row_cut, cand_rows[conflict],
                              tgt_pos[conflict])
                keep = src_pos < row_cut[cand_rows]
                cand_to, key, flat, better, cur_key = (
                    cand_to[keep], key[keep], flat[keep], better[keep],
                    cur_key[keep])
                if need_edges:
                    edges = edges[keep]
                if offer is not None:
                    offer = offer[keep]
                if len(flat) == 0:
                    return row_cut, None

        n = len(flat)
        newly = cur_key == plan.unset_key
        any_new = bool(newly.any())

        # Candidate keys are bounded by the plan's sentinel, so the
        # packed (key, position) scatter fits int64 whenever
        # unset_key * n does — a static bound, no per-round reduction.
        packable = plan.unset_key < _HUGE // n
        winner = first = None
        if self._use_jit and packable:
            try:
                winner_u8, first_u8 = _winner_touch_kernel(
                    flat, key, newly, state.work_key, state.work_touch)
                winner = winner_u8.view(bool)
                first = first_u8.view(bool)
            except Exception:  # pragma: no cover - broken numba installs
                type(self)._use_jit = False
        if winner is None:
            idx = self._identity(n)
            work_key = state.work_key
            if packable:
                combined = key * np.int64(n) + idx
                work_key[flat] = _HUGE
                np.minimum.at(work_key, flat, combined)
                winner = combined == work_key[flat]
            else:  # pragma: no cover - needs astronomically large topologies
                work_key[flat] = _HUGE
                np.minimum.at(work_key, flat, key)
                min_key = key == work_key[flat]
                work_key[flat] = _HUGE
                np.minimum.at(work_key, flat, np.where(min_key, idx, _HUGE))
                winner = idx == work_key[flat]
            if any_new:
                work_touch = state.work_touch
                work_touch[flat] = _HUGE
                np.minimum.at(work_touch, flat, np.where(newly, idx, _HUGE))
                first = newly & (idx == work_touch[flat])

        if any_new:
            fidx = np.nonzero(first)[0]
            if len(fidx):
                first_flat = flat[fidx]
                touched_chunks.append(
                    (first_flat // num_nodes, cand_to[fidx]))

        adopt = winner & better
        return row_cut, self._commit(state, phase, paths, flat, cand_to,
                                     edges, key, adopt, offer, offer_chunks,
                                     mark_dirty)
