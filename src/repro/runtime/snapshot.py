"""Compact, picklable snapshots of a :class:`PipelineContext`.

Sharded stages ship the runtime substrate to worker processes once per
pool, not once per task.  A :class:`ContextSnapshot` flattens the parts
of the context that are expensive to rebuild — the ASN interner and the
three CSR phase-edge blocks — into ``array('q')`` buffers (pickled as
raw machine words, far smaller and faster than lists of Python ints)
plus the interned community bags.  Workers call :func:`restore_context`
from their pool initializer and reconstruct a fully functional context:
same node ids, same bag ids, same deterministic propagation.

Transient state (path store cells, memoised routes, member bitset
indices) is deliberately *not* captured: it is derived data that each
worker recomputes for the origins it is assigned.

The return trip is columnar: workers ship their recorded fragments back
as :class:`~repro.runtime.fragments.RouteBlock`s, whose pickled form is
a handful of numpy arrays plus a block-local community-bag table.  The
bag table matters for correctness, not just size — bag *ids* are
assigned in interning order, which differs between parent and worker
(each worker interns only the bags its origins touch), so blocks never
carry store-level bag ids across the process boundary.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Hashable, Tuple

from repro.runtime.csr import CSRIndex, PhaseEdges
from repro.runtime.interning import Interner
from repro.runtime.stores import CommunityBagStore

if TYPE_CHECKING:
    from repro.runtime.context import PipelineContext

#: One CSR phase as five parallel machine-word arrays
#: (indptr, targets, rels, bags, vias).
PhaseArrays = Tuple[array, array, array, array, array]


@dataclass(frozen=True)
class ContextSnapshot:
    """Everything needed to rebuild a :class:`PipelineContext` elsewhere."""

    node_asns: array                       #: node id -> ASN, ascending
    bag_values: Tuple[FrozenSet[Hashable], ...]  #: bag id -> community set
    customer_phase: PhaseArrays
    peer_phase: PhaseArrays
    provider_phase: PhaseArrays
    num_edges: int
    #: propagation backend the restored context defaults its engines to.
    backend: str = "frontier"
    #: MLP inference backend the restored context defaults its engines
    #: to (workers inherit the parent's data-plane selection).
    inference_backend: str = "object"
    #: the parent's compiled :class:`~repro.runtime.batched
    #: .PropagationPlan`, when one was already built — numpy arrays
    #: pickle as raw buffers, so shipping the plan saves every worker
    #: the per-process schedule compilation (None when the parent never
    #: built one, e.g. frontier-only runs or numpy-less installs).
    plan: object = None

    @property
    def num_nodes(self) -> int:
        return len(self.node_asns)


def _pack_phase(phase: PhaseEdges) -> PhaseArrays:
    return (array("q", phase.indptr), array("q", phase.targets),
            array("q", phase.rels), array("q", phase.bags),
            array("q", phase.vias))


def _unpack_phase(packed: PhaseArrays) -> PhaseEdges:
    indptr, targets, rels, bags, vias = packed
    return PhaseEdges(indptr=list(indptr), targets=list(targets),
                      rels=list(rels), bags=list(bags), vias=list(vias))


def snapshot_context(context: "PipelineContext",
                     include_plan: bool = False) -> ContextSnapshot:
    """Capture the context's index in compact, picklable form.

    With *include_plan* the context's
    :class:`~repro.runtime.batched.PropagationPlan` is built (if numpy
    is available) and shipped alongside the index, so restored worker
    contexts replay it instead of recompiling the schedule; otherwise a
    plan is shipped only when the context already built one.
    """
    index = context.index
    bag_values = tuple(index.bags._values)
    plan = getattr(context, "_plan", None)
    if plan is None and include_plan:
        try:
            plan = context.plan
        except RuntimeError:  # no numpy: workers fall back to frontier
            plan = None
    return ContextSnapshot(
        node_asns=array("q", index.node_asns),
        bag_values=bag_values,
        customer_phase=_pack_phase(index.customer_edges),
        peer_phase=_pack_phase(index.peer_edges),
        provider_phase=_pack_phase(index.provider_edges),
        num_edges=index.num_edges,
        backend=getattr(context, "backend", "frontier"),
        inference_backend=getattr(context, "inference_backend", "object"),
        plan=plan,
    )


def restore_context(snapshot: ContextSnapshot) -> "PipelineContext":
    """Rebuild a fresh :class:`PipelineContext` from *snapshot*.

    Node and bag ids are preserved exactly (values are re-interned in id
    order), so path tie-breaking and community-bag references behave
    identically to the originating context.
    """
    from repro.runtime.context import PipelineContext

    asns = Interner(list(snapshot.node_asns))
    bags = CommunityBagStore()
    for bag in snapshot.bag_values:
        bags.intern(bag)
    index = CSRIndex(
        asns=asns,
        bags=bags,
        customer_edges=_unpack_phase(snapshot.customer_phase),
        peer_edges=_unpack_phase(snapshot.peer_phase),
        provider_edges=_unpack_phase(snapshot.provider_phase),
        num_edges=snapshot.num_edges,
    )
    context = PipelineContext(index, backend=snapshot.backend,
                              inference_backend=snapshot.inference_backend)
    if snapshot.plan is not None:
        # Seed the lazily built schedule: ids were preserved exactly,
        # so the shipped plan is the one this context would compile.
        context._plan = snapshot.plan
    return context


def snapshot_sizes(snapshot: ContextSnapshot) -> dict:
    """Rough per-component byte sizes (introspection / benchmarks)."""
    def phase_bytes(packed: PhaseArrays) -> int:
        return sum(arr.itemsize * len(arr) for arr in packed)

    return {
        "nodes": len(snapshot.node_asns),
        "node_bytes": snapshot.node_asns.itemsize * len(snapshot.node_asns),
        "bags": len(snapshot.bag_values),
        "customer_phase_bytes": phase_bytes(snapshot.customer_phase),
        "peer_phase_bytes": phase_bytes(snapshot.peer_phase),
        "provider_phase_bytes": phase_bytes(snapshot.provider_phase),
        "plan_shipped": snapshot.plan is not None,
    }
