"""Structure-shared stores for AS paths and community bags.

During propagation every AS's best route references its neighbour's path
and community set; materialising tuples and frozensets per AS is what
made the object-graph engine quadratic in memory.  These stores keep the
shared representation:

* :class:`PathStore` — AS paths as cons cells ``(head ASN, parent id)``.
  Extending a path by one hop is O(1) and shares the entire tail with
  the neighbour it was learned from.  Tuples are only built (memoised)
  for the routes actually recorded at observers.
* :class:`CommunityBagStore` — interned ``frozenset[Community]`` values
  with memoised pairwise unions, so a community bag flowing across an
  edge that attaches communities is computed once per distinct
  (bag, edge-bag) pair, not once per route.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Tuple

#: Parent id marking the end of a path chain.
NIL = -1


class PathStore:
    """Interned AS paths as cons cells.

    ``cons(head, parent)`` appends a cell and returns its id; the full
    tuple form ``(head, *parent_path)`` is produced lazily by
    :meth:`materialize` with shared-suffix memoisation.  The store is
    transient: the propagation engine clears it between origins, after
    the recorded routes were materialised.
    """

    __slots__ = ("_heads", "_parents", "_memo")

    def __init__(self) -> None:
        self._heads: List[int] = []
        self._parents: List[int] = []
        self._memo: Dict[int, Tuple[int, ...]] = {}

    def cons(self, head: int, parent: int = NIL) -> int:
        """Create the path ``(head,) + path(parent)`` and return its id."""
        pid = len(self._heads)
        self._heads.append(head)
        self._parents.append(parent)
        return pid

    def materialize(self, pid: int) -> Tuple[int, ...]:
        """The tuple form of path *pid* (memoised, shared suffixes)."""
        if pid < 0:
            return ()
        memo = self._memo
        cached = memo.get(pid)
        if cached is not None:
            return cached
        chain: List[int] = []
        cursor = pid
        while cursor >= 0 and cursor not in memo:
            chain.append(cursor)
            cursor = self._parents[cursor]
        suffix: Tuple[int, ...] = memo[cursor] if cursor >= 0 else ()
        heads = self._heads
        for cell in reversed(chain):
            suffix = (heads[cell],) + suffix
            memo[cell] = suffix
        return suffix

    def columns(self) -> Tuple[List[int], List[int]]:
        """The live ``(heads, parents)`` cell columns.

        Feed for the vectorized chain walk
        (:func:`repro.runtime.fragments.walk_paths`), which replaces
        per-route :meth:`materialize` calls when building columnar
        route blocks.
        """
        return self._heads, self._parents

    def clear(self) -> None:
        """Drop all cells (called between origins)."""
        self._heads.clear()
        self._parents.clear()
        self._memo.clear()

    def __len__(self) -> int:
        return len(self._heads)


class CommunityBagStore:
    """Interned community sets with memoised unions.

    Id 0 is always the empty bag, letting hot paths skip union calls for
    edges that attach no communities.  Values may be frozensets of any
    hashable element (the engine uses :class:`~repro.bgp.communities.
    Community` objects so recorded routes can share the stored frozenset
    directly, with no conversion at the result boundary).
    """

    EMPTY = 0

    __slots__ = ("_ids", "_values", "_unions")

    def __init__(self) -> None:
        empty: FrozenSet[Hashable] = frozenset()
        self._ids: Dict[FrozenSet[Hashable], int] = {empty: 0}
        self._values: List[FrozenSet[Hashable]] = [empty]
        self._unions: Dict[Tuple[int, int], int] = {}

    def intern(self, bag: FrozenSet[Hashable]) -> int:
        """Return the id of *bag*, interning it if new."""
        bid = self._ids.get(bag)
        if bid is None:
            bid = len(self._values)
            self._ids[bag] = bid
            self._values.append(bag)
        return bid

    def value(self, bid: int) -> FrozenSet[Hashable]:
        """The frozenset interned under *bid*."""
        return self._values[bid]

    def union(self, a: int, b: int) -> int:
        """Id of the union of bags *a* and *b* (memoised)."""
        if a == b or b == CommunityBagStore.EMPTY:
            return a
        if a == CommunityBagStore.EMPTY:
            return b
        key = (a, b)
        merged = self._unions.get(key)
        if merged is None:
            merged = self.intern(self._values[a] | self._values[b])
            self._unions[key] = merged
            self._unions[(b, a)] = merged
        return merged

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"CommunityBagStore({len(self._values)} bags)"
