"""Value interning: map hashable values to dense integer ids.

The data plane runs on small integers — node ids in the CSR index, bit
positions in member bitsets, prefix and community ids in observation
sets — and only converts back to the original ASN/:class:`Prefix`/
:class:`Community` objects at result boundaries.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional


class Interner:
    """An append-only bijection ``value <-> dense integer id``.

    Ids are assigned in first-intern order starting at 0, so interning a
    pre-sorted value sequence yields ids whose numeric order equals the
    values' sort order — the property the CSR index relies on to keep
    tie-breaking on node ids identical to tie-breaking on ASNs.
    """

    __slots__ = ("_ids", "_values")

    def __init__(self, values: Iterable[Hashable] = ()) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._values: List[Hashable] = []
        for value in values:
            self.intern(value)

    def intern(self, value: Hashable) -> int:
        """Return the id of *value*, assigning the next dense id if new."""
        iid = self._ids.get(value)
        if iid is None:
            iid = len(self._values)
            self._ids[value] = iid
            self._values.append(value)
        return iid

    def intern_all(self, values: Iterable[Hashable]) -> List[int]:
        """Intern every value, returning the ids in input order."""
        return [self.intern(value) for value in values]

    def id_of(self, value: Hashable) -> int:
        """The id of an already-interned value (KeyError if unknown)."""
        return self._ids[value]

    def get(self, value: Hashable, default: Optional[int] = None) -> Optional[int]:
        """The id of *value*, or *default* when it was never interned."""
        return self._ids.get(value, default)

    def value_of(self, iid: int) -> Hashable:
        """The value interned under *iid* (IndexError if out of range)."""
        return self._values[iid]

    @property
    def values(self) -> List[Hashable]:
        """All interned values, indexable by id.  Treat as read-only."""
        return self._values

    @property
    def id_map(self) -> Dict[Hashable, int]:
        """The value -> id mapping.  Treat as read-only."""
        return self._ids

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._ids

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._values)

    def __repr__(self) -> str:
        return f"Interner({len(self._values)} values)"
