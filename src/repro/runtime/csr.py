"""CSR-style adjacency index over a policy-annotated AS topology.

Built once per topology (``ASGraph.build_index()``) and shared by every
propagation run.  Nodes are ASNs interned in sorted order, so comparing
node ids is the same as comparing ASNs — the propagation tie-break
("lowest neighbour ASN wins") therefore works directly on ids.

The directed edges are pre-partitioned into the three valley-free
phases, each stored as flat parallel arrays in compressed-sparse-row
layout, so the frontier BFS never tests relationships in its inner loop:

* **customer phase** — edges whose importer sees the exporter as a
  CUSTOMER, plus transparent SIBLING edges;
* **peer phase** — PEER and RS_PEER edges;
* **provider phase** — edges whose importer sees the exporter as a
  PROVIDER, plus SIBLING edges.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.bgp.policy import Relationship
from repro.runtime.frontier import (
    REL_CUSTOMER,
    REL_PEER,
    REL_PROVIDER,
    REL_RS_PEER,
    REL_SIBLING,
)
from repro.runtime.interning import Interner
from repro.runtime.stores import CommunityBagStore

_REL_CODE = {
    Relationship.CUSTOMER: REL_CUSTOMER,
    Relationship.PROVIDER: REL_PROVIDER,
    Relationship.PEER: REL_PEER,
    Relationship.RS_PEER: REL_RS_PEER,
    Relationship.SIBLING: REL_SIBLING,
}


class PhaseEdges(NamedTuple):
    """One propagation phase's edges in CSR layout (parallel arrays)."""

    indptr: List[int]    #: per-node slice starts, length num_nodes + 1
    targets: List[int]   #: importing node id per edge
    rels: List[int]      #: REL_* code per edge
    bags: List[int]      #: community-bag id attached on the edge (0 = none)
    vias: List[int]      #: RS ASN inserted in the path, -1 when transparent

    @property
    def num_edges(self) -> int:
        return len(self.targets)


class CSRIndex:
    """The per-topology adjacency index."""

    __slots__ = ("asns", "node_asns", "id_of", "bags",
                 "customer_edges", "peer_edges", "provider_edges",
                 "num_nodes", "num_edges")

    def __init__(
        self,
        asns: Interner,
        bags: CommunityBagStore,
        customer_edges: PhaseEdges,
        peer_edges: PhaseEdges,
        provider_edges: PhaseEdges,
        num_edges: int,
    ) -> None:
        #: ASN interner; ids ascend with ASN value.
        self.asns = asns
        #: node id -> ASN (alias of the interner's value table).
        self.node_asns = asns.values
        #: ASN -> node id (alias of the interner's id map).
        self.id_of = asns.id_map
        #: the community-bag store edge bag ids refer to.
        self.bags = bags
        self.customer_edges = customer_edges
        self.peer_edges = peer_edges
        self.provider_edges = provider_edges
        self.num_nodes = len(asns)
        self.num_edges = num_edges

    # -- construction --------------------------------------------------------

    @classmethod
    def from_adjacencies(
        cls,
        adjacencies: Iterable[object],
        bags: Optional[CommunityBagStore] = None,
    ) -> "CSRIndex":
        """Build the index from directed adjacency records.

        Records are duck-typed: anything exposing ``source``, ``target``,
        ``relationship``, ``communities``, ``via_rs_asn`` and
        ``rs_transparent`` works (notably
        :class:`~repro.bgp.propagation.Adjacency`).
        """
        adjacency_list = list(adjacencies)
        bags = bags if bags is not None else CommunityBagStore()

        asn_set = set()
        for adj in adjacency_list:
            asn_set.add(adj.source)
            asn_set.add(adj.target)
        asns = Interner(sorted(asn_set))
        id_of = asns.id_map
        num_nodes = len(asns)

        # (source, target, rel, bag, via) records per phase.
        phase_records: Tuple[List[Tuple[int, int, int, int, int]], ...] = (
            [], [], [])
        for adj in adjacency_list:
            rel = _REL_CODE[adj.relationship]
            source = id_of[adj.source]
            target = id_of[adj.target]
            communities = adj.communities
            bag = bags.intern(frozenset(communities)) if communities else 0
            via = adj.via_rs_asn
            via_asn = via if (via is not None and not adj.rs_transparent) else -1
            record = (source, target, rel, bag, via_asn)
            if rel == REL_CUSTOMER or rel == REL_SIBLING:
                phase_records[0].append(record)
            if rel == REL_PEER or rel == REL_RS_PEER:
                phase_records[1].append(record)
            if rel == REL_PROVIDER or rel == REL_SIBLING:
                phase_records[2].append(record)

        phases = tuple(_build_phase(records, num_nodes)
                       for records in phase_records)
        return cls(asns, bags, phases[0], phases[1], phases[2],
                   num_edges=len(adjacency_list))

    # -- introspection -------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Size statistics (used by benchmarks and reports)."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "customer_phase_edges": self.customer_edges.num_edges,
            "peer_phase_edges": self.peer_edges.num_edges,
            "provider_phase_edges": self.provider_edges.num_edges,
            "community_bags": len(self.bags),
        }

    def __repr__(self) -> str:
        return f"CSRIndex({self.num_nodes} nodes, {self.num_edges} edges)"


def _build_phase(
    records: List[Tuple[int, int, int, int, int]],
    num_nodes: int,
) -> PhaseEdges:
    records.sort(key=lambda record: (record[0], record[1]))
    indptr = [0] * (num_nodes + 1)
    for source, _, _, _, _ in records:
        indptr[source + 1] += 1
    for node in range(num_nodes):
        indptr[node + 1] += indptr[node]
    return PhaseEdges(
        indptr=indptr,
        targets=[record[1] for record in records],
        rels=[record[2] for record in records],
        bags=[record[3] for record in records],
        vias=[record[4] for record in records],
    )
