"""CSR-style adjacency index over a policy-annotated AS topology.

Built once per topology (``ASGraph.build_index()``) and shared by every
propagation run.  Nodes are ASNs interned in sorted order, so comparing
node ids is the same as comparing ASNs — the propagation tie-break
("lowest neighbour ASN wins") therefore works directly on ids.

The directed edges are pre-partitioned into the three valley-free
phases, each stored as flat parallel arrays in compressed-sparse-row
layout, so the frontier BFS never tests relationships in its inner loop:

* **customer phase** — edges whose importer sees the exporter as a
  CUSTOMER, plus transparent SIBLING edges;
* **peer phase** — PEER and RS_PEER edges;
* **provider phase** — edges whose importer sees the exporter as a
  PROVIDER, plus SIBLING edges.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.bgp.policy import Relationship
from repro.runtime.frontier import (
    REL_CUSTOMER,
    REL_PEER,
    REL_PROVIDER,
    REL_RS_PEER,
    REL_SIBLING,
)
from repro.runtime.interning import Interner
from repro.runtime.stores import CommunityBagStore

_REL_CODE = {
    Relationship.CUSTOMER: REL_CUSTOMER,
    Relationship.PROVIDER: REL_PROVIDER,
    Relationship.PEER: REL_PEER,
    Relationship.RS_PEER: REL_RS_PEER,
    Relationship.SIBLING: REL_SIBLING,
}


class PhaseEdges(NamedTuple):
    """One propagation phase's edges in CSR layout (parallel arrays)."""

    indptr: List[int]    #: per-node slice starts, length num_nodes + 1
    targets: List[int]   #: importing node id per edge
    rels: List[int]      #: REL_* code per edge
    bags: List[int]      #: community-bag id attached on the edge (0 = none)
    vias: List[int]      #: RS ASN inserted in the path, -1 when transparent

    @property
    def num_edges(self) -> int:
        return len(self.targets)


class CSRIndex:
    """The per-topology adjacency index."""

    __slots__ = ("asns", "node_asns", "id_of", "bags",
                 "customer_edges", "peer_edges", "provider_edges",
                 "num_nodes", "num_edges")

    def __init__(
        self,
        asns: Interner,
        bags: CommunityBagStore,
        customer_edges: PhaseEdges,
        peer_edges: PhaseEdges,
        provider_edges: PhaseEdges,
        num_edges: int,
    ) -> None:
        #: ASN interner; ids ascend with ASN value.
        self.asns = asns
        #: node id -> ASN (alias of the interner's value table).
        self.node_asns = asns.values
        #: ASN -> node id (alias of the interner's id map).
        self.id_of = asns.id_map
        #: the community-bag store edge bag ids refer to.
        self.bags = bags
        self.customer_edges = customer_edges
        self.peer_edges = peer_edges
        self.provider_edges = provider_edges
        self.num_nodes = len(asns)
        self.num_edges = num_edges

    # -- construction --------------------------------------------------------

    @classmethod
    def from_adjacencies(
        cls,
        adjacencies: Iterable[object],
        bags: Optional[CommunityBagStore] = None,
    ) -> "CSRIndex":
        """Build the index from directed adjacency records.

        Records are duck-typed: anything exposing ``source``, ``target``,
        ``relationship``, ``communities``, ``via_rs_asn`` and
        ``rs_transparent`` works (notably
        :class:`~repro.bgp.propagation.Adjacency`).
        """
        adjacency_list = list(adjacencies)
        bags = bags if bags is not None else CommunityBagStore()

        asn_set = set()
        for adj in adjacency_list:
            asn_set.add(adj.source)
            asn_set.add(adj.target)
        asns = Interner(sorted(asn_set))
        id_of = asns.id_map
        num_nodes = len(asns)

        # (source, target, rel, bag, via) records per phase.
        phase_records: Tuple[List[Tuple[int, int, int, int, int]], ...] = (
            [], [], [])
        for adj in adjacency_list:
            rel = _REL_CODE[adj.relationship]
            source = id_of[adj.source]
            target = id_of[adj.target]
            communities = adj.communities
            bag = bags.intern(frozenset(communities)) if communities else 0
            via = adj.via_rs_asn
            via_asn = via if (via is not None and not adj.rs_transparent) else -1
            record = (source, target, rel, bag, via_asn)
            if rel == REL_CUSTOMER or rel == REL_SIBLING:
                phase_records[0].append(record)
            if rel == REL_PEER or rel == REL_RS_PEER:
                phase_records[1].append(record)
            if rel == REL_PROVIDER or rel == REL_SIBLING:
                phase_records[2].append(record)

        phases = tuple(_build_phase(records, num_nodes)
                       for records in phase_records)
        return cls(asns, bags, phases[0], phases[1], phases[2],
                   num_edges=len(adjacency_list))

    # -- incremental maintenance ---------------------------------------------

    def spliced(self, removed: Iterable[object], added: Iterable[object],
                retagged: Iterable[object] = ()) -> "CSRIndex":
        """A new index equal to a from-scratch build after an edge delta.

        *removed*/*added* are directed adjacency records (same duck type
        as :meth:`from_adjacencies`); *retagged* records keep their row
        but get their edge annotations (bag, via) re-derived — the
        policy-edit case, where a member's RS communities change on
        edges whose adjacency is untouched.  The phase arrays are copied
        and each change is applied at the sorted ``(source, target)``
        position a full rebuild's stable sort would have produced, so
        the result is structurally identical to
        ``from_adjacencies(post_change_adjacencies)`` — that is what
        makes event-driven delta recompute bit-identical to a rebuild.

        The ASN interner is shared (node ids must not shift) and the bag
        store is shared and appended to (existing bag ids stay valid for
        the old index and any plan built over it).  Raises ``KeyError``
        when an endpoint is not interned or a removed/retagged edge is
        absent — callers fall back to a full rebuild, which also covers
        node-set changes this method must not attempt.
        """
        id_of = self.id_of
        changes: Tuple[list, list, list] = ([], [], [])
        delta = 0
        for sign, adjacencies in ((-1, removed), (+1, added), (0, retagged)):
            for adj in adjacencies:
                rel = _REL_CODE[adj.relationship]
                source = id_of[adj.source]
                target = id_of[adj.target]
                communities = adj.communities
                bag = self.bags.intern(frozenset(communities)) \
                    if communities else 0
                via = adj.via_rs_asn
                via_asn = via if (via is not None
                                  and not adj.rs_transparent) else -1
                record = (sign, source, target, rel, bag, via_asn)
                delta += sign
                if rel == REL_CUSTOMER or rel == REL_SIBLING:
                    changes[0].append(record)
                if rel == REL_PEER or rel == REL_RS_PEER:
                    changes[1].append(record)
                if rel == REL_PROVIDER or rel == REL_SIBLING:
                    changes[2].append(record)
        phases = tuple(
            _splice_phase(phase, phase_changes) if phase_changes else phase
            for phase, phase_changes in zip(
                (self.customer_edges, self.peer_edges, self.provider_edges),
                changes))
        return CSRIndex(self.asns, self.bags, phases[0], phases[1],
                        phases[2], num_edges=self.num_edges + delta)

    # -- introspection -------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Size statistics (used by benchmarks and reports)."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "customer_phase_edges": self.customer_edges.num_edges,
            "peer_phase_edges": self.peer_edges.num_edges,
            "provider_phase_edges": self.provider_edges.num_edges,
            "community_bags": len(self.bags),
        }

    def __repr__(self) -> str:
        return f"CSRIndex({self.num_nodes} nodes, {self.num_edges} edges)"


def _splice_phase(phase: PhaseEdges, changes: List[tuple]) -> PhaseEdges:
    """Apply ``(sign, source, target, rel, bag, via)`` changes to a copy
    of *phase*, keeping the per-source target ordering of a stable
    ``(source, target)`` sort (edges are unique per pair within a
    phase, so the position is exact)."""
    indptr = list(phase.indptr)
    targets = list(phase.targets)
    rels = list(phase.rels)
    bags = list(phase.bags)
    vias = list(phase.vias)
    num_nodes = len(indptr) - 1
    for sign, source, target, rel, bag, via in changes:
        lo, hi = indptr[source], indptr[source + 1]
        position = bisect_left(targets, target, lo, hi)
        present = position < hi and targets[position] == target
        if sign < 0:
            if not present:
                raise KeyError((source, target))
            del targets[position], rels[position], bags[position], \
                vias[position]
        elif sign > 0:
            if present:
                raise KeyError((source, target))
            targets.insert(position, target)
            rels.insert(position, rel)
            bags.insert(position, bag)
            vias.insert(position, via)
        else:  # retag in place: row position and ordering untouched
            if not present:
                raise KeyError((source, target))
            rels[position] = rel
            bags[position] = bag
            vias[position] = via
            continue
        for node in range(source + 1, num_nodes + 1):
            indptr[node] += sign
    return PhaseEdges(indptr=indptr, targets=targets, rels=rels,
                      bags=bags, vias=vias)


def _build_phase(
    records: List[Tuple[int, int, int, int, int]],
    num_nodes: int,
) -> PhaseEdges:
    records.sort(key=lambda record: (record[0], record[1]))
    indptr = [0] * (num_nodes + 1)
    for source, _, _, _, _ in records:
        indptr[source + 1] += 1
    for node in range(num_nodes):
        indptr[node + 1] += indptr[node]
    return PhaseEdges(
        indptr=indptr,
        targets=[record[1] for record in records],
        rels=[record[2] for record in records],
        bags=[record[3] for record in records],
        vias=[record[4] for record in records],
    )
