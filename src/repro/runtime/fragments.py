"""Columnar route fragments: batches of propagated routes as arrays.

The propagation kernels already finish with fully interned per-node
state (route-key planes, path ids, bag ids).  Converting that state to
one ``PropagatedRoute`` object per recorded route — a Python loop with a
``PathStore.materialize`` call per row — was the dominant end-to-end
cost once the sweep itself went vectorized.  This module keeps the
fragments columnar instead:

* :class:`RouteBlock` — one origin's recorded routes as parallel numpy
  columns (``asn``, ``provenance``, ``learned_from``, ``bag_id``,
  ``pid``) plus a CSR-style ``(path_offsets, path_values)`` pair, with a
  block-local ``bag_values`` tuple so blocks are self-contained across
  process boundaries (store-level bag ids are not stable under
  re-interning).  A block behaves as a sequence of
  ``PropagatedRoute``s — rows are materialised lazily and cached — so
  every object-level consumer keeps working, while bulk consumers read
  the columns directly.
* :func:`walk_paths` / :class:`PathTable` — ONE vectorized cons-chain
  walk over all path ids of a batch, replacing the per-route scalar
  ``materialize`` calls.  ``PathTable.gather`` then slices per-row CSR
  views out of the walked table with a single ragged gather.

Like the rest of ``runtime``, numpy is optional: the module imports
without it, and the engine falls back to eager object fragments when
``fragments_available()`` is false.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, List, Sequence, Tuple

try:  # optional dependency, mirrors runtime/batched.py
    import numpy as np
except ImportError:  # pragma: no cover - exercised via fragments_available
    np = None  # type: ignore[assignment]

__all__ = [
    "RouteBlock",
    "PathTable",
    "ObservationIndex",
    "walk_paths",
    "intern_bags",
    "block_from_columns",
    "fragments_available",
]

#: Lazily resolved to avoid a module-level cycle: ``bgp.propagation``
#: imports this module, and only row materialisation needs the class.
_ROUTE_CLS = None


def fragments_available() -> bool:
    """True when the columnar fragment plane can be used (numpy present)."""
    return np is not None


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - numpy is present in CI
        raise RuntimeError(
            "columnar route fragments require numpy; "
            "use the object fragment path instead")


def _route_class():
    global _ROUTE_CLS
    if _ROUTE_CLS is None:
        from repro.bgp.propagation import PropagatedRoute
        _ROUTE_CLS = PropagatedRoute
    return _ROUTE_CLS


def walk_paths(heads, parents, pids):
    """Materialise cons chains *pids* into one CSR ``(offsets, values)``.

    This is the vectorized replacement for N scalar ``materialize``
    calls: two level-synchronous passes over the whole id set (first
    measuring chain lengths, then writing heads), each iterating only
    ``max path length`` times with numpy doing the per-chain work.
    """
    _require_numpy()
    heads = np.asarray(heads, dtype=np.int64)
    parents = np.asarray(parents, dtype=np.int64)
    pids = np.asarray(pids, dtype=np.int64)
    count = len(pids)
    offsets = np.zeros(count + 1, dtype=np.int64)
    if count == 0:
        return offsets, np.empty(0, dtype=np.int64)
    lengths = np.zeros(count, dtype=np.int64)
    cursor = pids.copy()
    alive = np.nonzero(cursor >= 0)[0]
    while len(alive):
        lengths[alive] += 1
        cursor[alive] = parents[cursor[alive]]
        alive = alive[cursor[alive] >= 0]
    np.cumsum(lengths, out=offsets[1:])
    values = np.empty(int(offsets[-1]), dtype=np.int64)
    cursor = pids.copy()
    position = offsets[:-1].copy()
    alive = np.nonzero(cursor >= 0)[0]
    while len(alive):
        values[position[alive]] = heads[cursor[alive]]
        position[alive] += 1
        cursor[alive] = parents[cursor[alive]]
        alive = alive[cursor[alive] >= 0]
    return offsets, values


class PathTable:
    """All paths of one batch, walked once and gathered per block.

    Built from a path store's ``(heads, parents)`` columns and the union
    of every pid a batch will record (negative ids — "no path" — are
    dropped and gather as empty rows).
    """

    __slots__ = ("_pids", "_offsets", "_values", "_lengths")

    def __init__(self, heads, parents, pids) -> None:
        _require_numpy()
        pids = np.unique(np.asarray(pids, dtype=np.int64))
        if len(pids) and pids[0] < 0:
            pids = pids[pids >= 0]
        self._pids = pids
        self._offsets, self._values = walk_paths(heads, parents, pids)
        self._lengths = np.diff(self._offsets)

    def gather(self, pids):
        """CSR ``(offsets, values)`` for *pids*, one ragged gather.

        Every non-negative pid must be in the table; negative pids
        yield empty paths (origin rows have no received path).
        """
        pids = np.asarray(pids, dtype=np.int64)
        count = len(pids)
        offsets = np.zeros(count + 1, dtype=np.int64)
        if count == 0 or len(self._pids) == 0:
            return offsets, np.empty(0, dtype=np.int64)
        valid = pids >= 0
        index = np.searchsorted(self._pids, pids)
        index[~valid] = 0
        lengths = np.where(valid, self._lengths[index], 0)
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        if total == 0:
            return offsets, np.empty(0, dtype=np.int64)
        starts = self._offsets[index]
        shift = np.repeat(starts - offsets[:-1], lengths)
        values = self._values[shift + np.arange(total, dtype=np.int64)]
        return offsets, values


def intern_bags(bag_ids, bag_value):
    """Map store-level *bag_ids* to block-local ids + a value table.

    Each distinct store id resolves ``bag_value`` once; the returned
    table makes the block independent of the store (and picklable
    without dragging the context along).
    """
    _require_numpy()
    bag_ids = np.asarray(bag_ids, dtype=np.int64)
    if len(bag_ids) == 0:
        return np.empty(0, dtype=np.int32), ()
    unique, inverse = np.unique(bag_ids, return_inverse=True)
    values = tuple(bag_value(int(bid)) for bid in unique.tolist())
    return inverse.astype(np.int32, copy=False), values


class RouteBlock:
    """One origin's recorded routes as parallel columns.

    Column schema (all rows parallel):

    ``asn``           int64 — observer ASN of the route
    ``provenance``    int16 — CLASS_* the route was accepted as
    ``learned_from``  int64 — exporter ASN, ``-1`` for locally originated
    ``bag_id``        int32 — index into :attr:`bag_values` (block-local)
    ``pid``           int64 — batch-local path id (``-1`` when unknown,
                      e.g. blocks rebuilt from route objects)
    ``path_offsets``  int64, ``len+1`` — CSR row offsets into
    ``path_values``   int64 — concatenated AS paths (observer-first)

    The block is also a ``Sequence[PropagatedRoute]``: indexing
    materialises (and caches) one lazy row view, so call sites written
    against object fragments keep working unchanged.  Pickling ships
    only the arrays + bag values — caches never cross process
    boundaries.
    """

    __slots__ = ("asn", "provenance", "learned_from", "bag_id", "pid",
                 "path_offsets", "path_values", "bag_values",
                 "_rows", "_scalars")

    def __init__(self, asn, provenance, learned_from, bag_id, pid,
                 path_offsets, path_values,
                 bag_values: Tuple[frozenset, ...]) -> None:
        self.asn = asn
        self.provenance = provenance
        self.learned_from = learned_from
        self.bag_id = bag_id
        self.pid = pid
        self.path_offsets = path_offsets
        self.path_values = path_values
        self.bag_values = bag_values
        self._rows: List[object] = None  # type: ignore[assignment]
        self._scalars = None

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls) -> "RouteBlock":
        """A zero-row block."""
        _require_numpy()
        return cls(
            asn=np.empty(0, dtype=np.int64),
            provenance=np.empty(0, dtype=np.int16),
            learned_from=np.empty(0, dtype=np.int64),
            bag_id=np.empty(0, dtype=np.int32),
            pid=np.empty(0, dtype=np.int64),
            path_offsets=np.zeros(1, dtype=np.int64),
            path_values=np.empty(0, dtype=np.int64),
            bag_values=(),
        )

    @classmethod
    def from_routes(cls, routes: Iterable[object]) -> "RouteBlock":
        """Columnar form of existing route objects.

        The originals are kept as the block's row views, so identity
        (and any interned path/bag sharing they carry) is preserved.
        """
        _require_numpy()
        routes = list(routes)
        count = len(routes)
        bag_index: dict = {}
        bag_values: List[frozenset] = []
        bag_ids = np.empty(count, dtype=np.int32)
        offsets = np.zeros(count + 1, dtype=np.int64)
        for i, route in enumerate(routes):
            bid = bag_index.get(route.communities)
            if bid is None:
                bid = bag_index[route.communities] = len(bag_values)
                bag_values.append(route.communities)
            bag_ids[i] = bid
            offsets[i + 1] = offsets[i] + len(route.path)
        values = np.fromiter(
            (asn for route in routes for asn in route.path),
            dtype=np.int64, count=int(offsets[-1]))
        block = cls(
            asn=np.fromiter((r.asn for r in routes), np.int64, count=count),
            provenance=np.fromiter(
                (r.provenance for r in routes), np.int16, count=count),
            learned_from=np.fromiter(
                (-1 if r.learned_from is None else r.learned_from
                 for r in routes), np.int64, count=count),
            bag_id=bag_ids,
            pid=np.full(count, -1, dtype=np.int64),
            path_offsets=offsets,
            path_values=values,
            bag_values=tuple(bag_values),
        )
        block._rows = routes
        return block

    # -- columnar accessors ------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Array footprint of the block (excludes bag values and caches)."""
        return int(self.asn.nbytes + self.provenance.nbytes
                   + self.learned_from.nbytes + self.bag_id.nbytes
                   + self.pid.nbytes + self.path_offsets.nbytes
                   + self.path_values.nbytes)

    def _scalar_columns(self):
        """Python-int copies of the columns (built once, cached)."""
        columns = self._scalars
        if columns is None:
            columns = self._scalars = (
                self.asn.tolist(), self.provenance.tolist(),
                self.learned_from.tolist(), self.bag_id.tolist(),
                self.path_offsets.tolist(), self.path_values.tolist())
        return columns

    def asn_list(self) -> List[int]:
        """Observer ASNs as a cached python list (row-scan fast path)."""
        return self._scalar_columns()[0]

    def path(self, row: int) -> Tuple[int, ...]:
        """The AS path of *row* as a tuple, without building the route."""
        _, _, _, _, offsets, values = self._scalar_columns()
        return tuple(values[offsets[row]:offsets[row + 1]])

    def communities_at(self, row: int) -> frozenset:
        """The (shared) community frozenset of *row*."""
        return self.bag_values[self._scalar_columns()[3][row]]

    def provenance_at(self, row: int) -> int:
        """The CLASS_* provenance of *row* as a python int."""
        return self._scalar_columns()[1][row]

    def learned_from_at(self, row: int):
        """The exporter ASN of *row* (None for locally originated),
        decoded the way row views decode the ``learned_from`` column."""
        exporter = self._scalar_columns()[2][row]
        return exporter if exporter >= 0 else None

    def equivalent_to(self, other: "RouteBlock") -> bool:
        """Semantic row equality with *other*: same observers, paths,
        provenances, exporters and community bags, row for row.

        Internal numbering (``pid``, the ``bag_id`` -> :attr:`bag_values`
        indirection) is *not* compared — two blocks computed by different
        batch compositions are equivalent as long as they describe the
        same routes.  This is the contract delta patching is tested
        against: a reused block and a recomputed one must compare equal.
        """
        if self is other:
            return True
        if len(self.asn) != len(other.asn):
            return False
        if not (np.array_equal(self.asn, other.asn)
                and np.array_equal(self.provenance, other.provenance)
                and np.array_equal(self.learned_from, other.learned_from)
                and np.array_equal(self.path_offsets, other.path_offsets)
                and np.array_equal(self.path_values, other.path_values)):
            return False
        if self.bag_values == other.bag_values and \
                np.array_equal(self.bag_id, other.bag_id):
            return True
        return all(self.communities_at(row) == other.communities_at(row)
                   for row in range(len(self.asn)))

    def link_pairs(self):
        """Undirected ``(lo, hi)`` ASN pair arrays adjacent in any path.

        Pairs spanning row boundaries are masked out via the CSR
        offsets; ``left == right`` (prepended-origin) pairs are dropped
        to match the object-path ``visible_links`` semantics.  Pairs are
        not deduplicated — callers union across blocks anyway.
        """
        values = self.path_values
        if len(values) < 2:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        left = values[:-1]
        right = values[1:]
        valid = left != right
        boundaries = self.path_offsets[1:-1] - 1
        if len(boundaries):
            valid[boundaries[boundaries >= 0]] = False
        lo = np.minimum(left, right)[valid]
        hi = np.maximum(left, right)[valid]
        return lo, hi

    # -- sequence protocol (lazy row views) --------------------------------

    def route(self, row: int):
        """The :class:`PropagatedRoute` view of *row* (built once)."""
        rows = self._rows
        if rows is None:
            rows = self._rows = [None] * len(self.asn)
        route = rows[row]
        if route is None:
            asns, provs, learned, bags, offsets, values = self._scalar_columns()
            exporter = learned[row]
            route = rows[row] = _route_class()(
                asn=asns[row],
                path=tuple(values[offsets[row]:offsets[row + 1]]),
                communities=self.bag_values[bags[row]],
                provenance=provs[row],
                learned_from=exporter if exporter >= 0 else None,
            )
        return route

    def routes_list(self) -> List[object]:
        """Every row view of the block, materialised in one pass.

        Equivalent to ``[self.route(i) for i in range(len(self))]`` but
        hoists the scalar-column lookups out of the per-row call; rows
        already materialised by :meth:`route` are reused, and the cache
        is shared both ways.
        """
        rows = self._rows
        count = len(self.asn)
        if rows is None:
            rows = self._rows = [None] * count
        if count and None in rows:
            cls = _route_class()
            asns, provs, learned, bags, offsets, values = self._scalar_columns()
            bag_values = self.bag_values
            for i in range(count):
                if rows[i] is None:
                    exporter = learned[i]
                    rows[i] = cls(
                        asn=asns[i],
                        path=tuple(values[offsets[i]:offsets[i + 1]]),
                        communities=bag_values[bags[i]],
                        provenance=provs[i],
                        learned_from=exporter if exporter >= 0 else None,
                    )
        return list(rows)

    def __len__(self) -> int:
        return len(self.asn)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.route(row)
                    for row in range(*index.indices(len(self.asn)))]
        count = len(self.asn)
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError(index)
        return self.route(index)

    def __iter__(self) -> Iterator[object]:
        for row in range(len(self.asn)):
            yield self.route(row)

    def __repr__(self) -> str:
        return (f"RouteBlock({len(self.asn)} routes, "
                f"{len(self.path_values)} path cells, "
                f"{len(self.bag_values)} bags)")

    # -- pickling (cache-free: blocks cross shard worker boundaries) -------

    def __getstate__(self):
        return (self.asn, self.provenance, self.learned_from, self.bag_id,
                self.pid, self.path_offsets, self.path_values,
                self.bag_values)

    def __setstate__(self, state) -> None:
        (self.asn, self.provenance, self.learned_from, self.bag_id,
         self.pid, self.path_offsets, self.path_values,
         self.bag_values) = state
        self._rows = None
        self._scalars = None


class ObservationIndex:
    """Per-(observer, origin-position) CSR index over recorded blocks.

    Built once from the best/offered :class:`RouteBlock` pairs a
    propagation recorded (one pair per origin, in recording order), it
    answers the observation-plane queries — "which routes does observer
    X hold, per origin" — straight from the columns, replacing the
    per-route ``dict.setdefault`` fold of the object path.

    Layout: both sides are the row-wise concatenation of every block's
    columns plus a ``pos`` column (the block's position in recording
    order, i.e. the origin's index).  The best side is stably sorted by
    observer ASN, so each observer's rows appear in ``(pos, row)``
    order.  The offered side is lexsorted by ``(asn, pos, provenance,
    path length, learned_from)`` with ties keeping row order — exactly
    the ``all_paths`` sort — and grouped into maximal ``(asn, pos)``
    runs so one group IS one origin's sorted candidate list.
    """

    __slots__ = ("_b_asn", "_b_pos", "_b_row",
                 "_o_row", "_g_asn", "_g_pos", "_g_start", "_g_end")

    def __init__(self, best_blocks: Sequence[RouteBlock],
                 offered_blocks: Sequence[RouteBlock]) -> None:
        _require_numpy()
        self._b_asn, self._b_pos, self._b_row = \
            self._sorted_side(best_blocks, with_rank=False)
        asn, pos, self._o_row = self._sorted_side(offered_blocks,
                                                  with_rank=True)
        count = len(asn)
        if count:
            change = np.nonzero((asn[1:] != asn[:-1])
                                | (pos[1:] != pos[:-1]))[0] + 1
            starts = np.concatenate(([0], change))
            self._g_asn = asn[starts]
            self._g_pos = pos[starts]
            self._g_start = starts
            self._g_end = np.concatenate((starts[1:], [count]))
        else:
            empty = np.empty(0, dtype=np.int64)
            self._g_asn = self._g_pos = empty
            self._g_start = self._g_end = empty

    @staticmethod
    def _sorted_side(blocks, with_rank: bool):
        """Concatenate one side's columns and sort by observer ASN.

        Without *with_rank* the sort is a stable argsort (rows stay in
        global ``(pos, row)`` order per observer); with it, rows are
        additionally ranked by the ``all_paths`` key ``(provenance,
        path length, learned_from or -1)`` within each ``(asn, pos)``
        run, ties keeping recording order.
        """
        parts = [b for b in blocks if len(b.asn)]
        if not parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        positions = [i for i, b in enumerate(blocks) if len(b.asn)]
        asn = np.concatenate([b.asn for b in parts])
        pos = np.repeat(np.asarray(positions, dtype=np.int64),
                        [len(b.asn) for b in parts])
        row = np.concatenate([np.arange(len(b.asn), dtype=np.int64)
                              for b in parts])
        if with_rank:
            prov = np.concatenate([b.provenance for b in parts])
            plen = np.concatenate([np.diff(b.path_offsets) for b in parts])
            learned = np.concatenate([b.learned_from for b in parts])
            # The object path sorts on ``route.learned_from or -1``:
            # both None (encoded -1) and exporter 0 collapse to -1.
            learned = np.where(learned == 0, -1, learned)
            order = np.lexsort((learned, plen, prov, pos, asn))
        else:
            order = np.argsort(asn, kind="stable")
        return asn[order], pos[order], row[order]

    # -- queries -----------------------------------------------------------

    def best_refs(self, observer: int) -> List[Tuple[int, int]]:
        """``(pos, row)`` of the observer's best routes, recording order."""
        lo = int(np.searchsorted(self._b_asn, observer, side="left"))
        hi = int(np.searchsorted(self._b_asn, observer, side="right"))
        return list(zip(self._b_pos[lo:hi].tolist(),
                        self._b_row[lo:hi].tolist()))

    def best_row(self, observer: int, pos: int):
        """Best-route row for (observer, origin position), or None.

        Multiple rows (never produced by the engines, but legal in a
        hand-built block) resolve to the last one — matching the
        last-write-wins dict fold of the object path.
        """
        lo = int(np.searchsorted(self._b_asn, observer, side="left"))
        hi = int(np.searchsorted(self._b_asn, observer, side="right"))
        index = lo + int(np.searchsorted(self._b_pos[lo:hi], pos,
                                         side="right")) - 1
        if index >= lo and self._b_pos[index] == pos:
            return int(self._b_row[index])
        return None

    def offered_rows(self, observer: int, pos: int):
        """Sorted candidate rows for (observer, origin position), or
        None when the observer holds no offered route for that origin."""
        lo = int(np.searchsorted(self._g_asn, observer, side="left"))
        hi = int(np.searchsorted(self._g_asn, observer, side="right"))
        index = lo + int(np.searchsorted(self._g_pos[lo:hi], pos))
        if index < hi and self._g_pos[index] == pos:
            return self._o_row[self._g_start[index]:
                               self._g_end[index]].tolist()
        return None

    def merged_groups(self, observer: int):
        """The observer's full view, one entry per origin holding routes.

        Returns ``(pos, rows, from_offers)`` triples in origin recording
        order: the sorted offered rows where any exist, else the single
        best row — the same fallback ``all_paths`` applies.  The first
        row of every group is the group's best path.
        """
        glo = int(np.searchsorted(self._g_asn, observer, side="left"))
        ghi = int(np.searchsorted(self._g_asn, observer, side="right"))
        blo = int(np.searchsorted(self._b_asn, observer, side="left"))
        bhi = int(np.searchsorted(self._b_asn, observer, side="right"))
        best_by_pos: dict = dict(zip(self._b_pos[blo:bhi].tolist(),
                                     self._b_row[blo:bhi].tolist()))
        o_row = self._o_row
        starts = self._g_start
        ends = self._g_end
        groups = []
        for index, pos in zip(range(glo, ghi),
                              self._g_pos[glo:ghi].tolist()):
            best_by_pos.pop(pos, None)
            groups.append((pos, o_row[starts[index]:ends[index]].tolist(),
                           True))
        groups.extend((pos, [row], False)
                      for pos, row in best_by_pos.items())
        groups.sort(key=lambda group: group[0])
        return groups


def block_from_columns(asns, provenance, learned_from, pids, bag_ids,
                       bag_value, path_table: PathTable) -> RouteBlock:
    """Assemble a :class:`RouteBlock` from store-level parallel columns.

    *bag_ids* are store-level ids resolved through *bag_value* into a
    block-local table; paths come out of *path_table* (walked once per
    batch).  All columns must already be recorded-observer filtered.
    """
    _require_numpy()
    pids = np.asarray(pids, dtype=np.int64)
    local_bags, bag_values = intern_bags(bag_ids, bag_value)
    offsets, values = path_table.gather(pids)
    return RouteBlock(
        asn=np.asarray(asns, dtype=np.int64),
        provenance=np.asarray(provenance).astype(np.int16, copy=False),
        learned_from=np.asarray(learned_from, dtype=np.int64),
        bag_id=local_bags,
        pid=pids,
        path_offsets=offsets,
        path_values=values,
        bag_values=bag_values,
    )
