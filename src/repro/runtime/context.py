"""The pipeline context: one object owning the shared runtime state.

A :class:`PipelineContext` is created once per topology (usually via
:meth:`from_graph`) and threaded through the whole measurement pipeline:
the propagation engine reads its CSR index and stores, collectors and
looking glasses read propagation fragments memoised per origin, and the
inference layer reuses its member bitset indices and prefix/community
interners.  Everything downstream of the context speaks integer ids and
only converts back to ASNs/prefixes/communities at result boundaries.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional, Tuple

from repro.runtime.bitset import BitsetIndex
from repro.runtime.csr import CSRIndex
from repro.runtime.frontier import FrontierPropagator
from repro.runtime.interning import Interner
from repro.runtime.stores import PathStore


#: Propagation backends a context can default its engines to (the full
#: selector semantics live in :mod:`repro.bgp.propagation`).
PROPAGATION_BACKENDS = ("frontier", "batched", "compiled", "reference")
DEFAULT_BACKEND = "frontier"

#: MLP inference backends (the selector semantics live in
#: :mod:`repro.core.engine`): the per-IXP object engine, or the
#: vectorized bitset-matrix plane of :mod:`repro.core.planes`.
INFERENCE_BACKENDS = ("object", "bitset")
DEFAULT_INFERENCE_BACKEND = "object"

#: Bounded sizes of the context-level inference caches.
_MAX_INFERENCE_PLANE_ENTRIES = 8
_MAX_REACHABILITY_MATRICES = 4

_MISS = object()

#: Rough per-route footprint charged for fragments without an ``nbytes``
#: (eager object lists): slots object + path tuple, order of magnitude.
_ROUTE_OBJECT_BYTES = 96


def _fragments_nbytes(fragments) -> int:
    """Approximate byte footprint of one cached (best, offered) pair.

    Columnar :class:`~repro.runtime.fragments.RouteBlock`s report their
    exact array footprint via ``nbytes``; object lists are charged a
    flat per-route estimate.
    """
    total = 0
    for part in fragments:
        nbytes = getattr(part, "nbytes", None)
        total += int(nbytes) if nbytes is not None \
            else _ROUTE_OBJECT_BYTES * len(part)
    return total


class RouteCache:
    """Memoised per-origin route fragments, with accounting and an
    optional byte-bounded LRU eviction policy.

    Dict-shaped (``get``/``[]=``/``len``/``in``/``clear``) so the
    engine's memoisation protocol is unchanged, but every entry is
    counted: ``entries``/``bytes`` give the current footprint and
    ``hits``/``misses`` count :meth:`get` outcomes across the cache's
    lifetime (``clear`` resets the footprint, not the counters).

    With ``max_bytes`` set, the cache evicts least-recently-used
    entries after every insertion until the accounted footprint fits
    the budget (``evictions`` counts the casualties).  Recency is the
    dict's insertion order: a :meth:`get` hit re-inserts the entry at
    the back, so long daemon runs cycling through many scenarios keep
    the fragments they actually serve and shed the rest.  The newest
    entry is never evicted — a single fragment pair larger than the
    whole budget stays resident until the next insertion displaces it
    (dropping the value just stored would break the engine's
    memoisation contract).  ``entries``/``bytes`` stay exact under
    eviction: every eviction subtracts exactly the bytes its insertion
    added.
    """

    __slots__ = ("_entries", "bytes", "hits", "misses", "max_bytes",
                 "evictions")

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self._entries: Dict[Tuple, Tuple] = {}
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.max_bytes = max_bytes
        self.evictions = 0

    @property
    def entries(self) -> int:
        return len(self._entries)

    def get(self, key, default=None):
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return default
        self.hits += 1
        if self.max_bytes is not None:
            # LRU touch: move the hit to the back of insertion order.
            del self._entries[key]
            self._entries[key] = value
        return value

    def __setitem__(self, key, value) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes -= _fragments_nbytes(old)
        self._entries[key] = value
        self.bytes += _fragments_nbytes(value)
        self._evict()

    def set_max_bytes(self, max_bytes: Optional[int]) -> None:
        """(Re)configure the byte budget; shrinking evicts immediately."""
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self._evict()

    def _evict(self) -> None:
        if self.max_bytes is None:
            return
        entries = self._entries
        while self.bytes > self.max_bytes and len(entries) > 1:
            oldest = next(iter(entries))
            value = entries.pop(oldest)
            self.bytes -= _fragments_nbytes(value)
            self.evictions += 1

    def __getitem__(self, key):
        return self._entries[key]

    def __contains__(self, key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.bytes = 0

    def stats(self) -> Dict[str, int]:
        """Entry/byte/hit/miss/eviction counters as a plain dict."""
        return {"entries": len(self._entries), "bytes": self.bytes,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "max_bytes": self.max_bytes}

    def __repr__(self) -> str:
        bound = f", max {self.max_bytes}" if self.max_bytes is not None \
            else ""
        return (f"RouteCache({len(self._entries)} entries, "
                f"{self.bytes} bytes{bound}, {self.hits} hits, "
                f"{self.misses} misses, {self.evictions} evictions)")


class PipelineContext:
    """Shared interners, adjacency index and memoised propagation."""

    def __init__(self, index: CSRIndex,
                 backend: str = DEFAULT_BACKEND,
                 inference_backend: str = DEFAULT_INFERENCE_BACKEND,
                 epoch_provider: Optional[Callable[[], Hashable]] = None,
                 route_cache_max_bytes: Optional[int] = None,
                 ) -> None:
        if backend not in PROPAGATION_BACKENDS:
            raise ValueError(
                f"unknown propagation backend {backend!r} "
                f"(choose from {PROPAGATION_BACKENDS})")
        if inference_backend not in INFERENCE_BACKENDS:
            raise ValueError(
                f"unknown inference backend {inference_backend!r} "
                f"(choose from {INFERENCE_BACKENDS})")
        #: the CSR adjacency index (owns the ASN interner and bag store).
        self.index = index
        #: default propagation backend for engines built off this context.
        self.backend = backend
        #: default MLP inference backend for engines built off this context.
        self.inference_backend = inference_backend
        #: ASN interner (node ids ascend with ASN value).
        self.asns = index.asns
        #: community-bag store shared with the index's edge bags.
        self.bags = index.bags
        #: transient path store reused across origins.
        self.paths = PathStore()
        #: prefix id space for layers that want dense prefix ids.
        self.prefixes: Interner = Interner()
        #: community-value id space for scheme-level bookkeeping.
        self.communities: Interner = Interner()
        self._propagator: Optional[FrontierPropagator] = None
        self._plan = None
        #: (origin, origin bag, record signature, epoch) -> recorded
        #: fragments, with entry/byte/hit/miss accounting and an
        #: optional LRU byte budget (long-lived daemon processes bound
        #: it so route fragments cannot grow without limit).
        self._route_cache = RouteCache(max_bytes=route_cache_max_bytes)
        #: mutation-epoch provider: a callable returning a hashable
        #: snapshot of the external mutation counters this context's
        #: routes depend on (graph version, route-server versions ...).
        #: The engine salts the epoch into every route-cache key, so a
        #: post-mutation lookup can never return a stale block.
        self._epoch_provider = epoch_provider
        self._member_indices: Dict[Hashable, Tuple[frozenset, BitsetIndex]] = {}
        #: bitset-backend observation planes: (PlaneCacheKey, planes)
        #: pairs, newest last (see repro.core.planes.PlaneCacheKey).
        self._inference_planes: list = []
        #: (inference result, ReachabilityMatrix) pairs, newest last.
        self._reachability_matrices: list = []

    # -- construction --------------------------------------------------------

    @classmethod
    def from_adjacencies(cls, adjacencies: Iterable[object],
                         backend: str = DEFAULT_BACKEND,
                         inference_backend: str = DEFAULT_INFERENCE_BACKEND,
                         route_cache_max_bytes: Optional[int] = None,
                         ) -> "PipelineContext":
        """Build a context from directed adjacency records."""
        return cls(CSRIndex.from_adjacencies(adjacencies), backend=backend,
                   inference_backend=inference_backend,
                   route_cache_max_bytes=route_cache_max_bytes)

    @classmethod
    def from_graph(cls, graph, rs_community_provider=None,
                   backend: str = DEFAULT_BACKEND,
                   inference_backend: str = DEFAULT_INFERENCE_BACKEND,
                   ) -> "PipelineContext":
        """Build a context from an :class:`~repro.topology.as_graph.ASGraph`."""
        return cls(graph.build_index(
            rs_community_provider=rs_community_provider), backend=backend,
            inference_backend=inference_backend)

    # -- propagation ---------------------------------------------------------

    @property
    def propagator(self) -> FrontierPropagator:
        """The frontier propagator bound to this context's index."""
        if self._propagator is None:
            self._propagator = FrontierPropagator(
                self.index, self.paths, self.bags)
        return self._propagator

    @property
    def plan(self):
        """The (lazily compiled, cached)
        :class:`~repro.runtime.batched.PropagationPlan` of this
        context's index — the batched backend's per-topology schedule,
        reused across every batch and engine."""
        if self._plan is None:
            from repro.runtime.batched import PropagationPlan
            self._plan = PropagationPlan(self.index)
        return self._plan

    def engine(self, record_at=None, record_alternatives_at=None,
               backend=None):
        """A :class:`~repro.bgp.propagation.PropagationEngine` sharing
        this context's index, stores and memoised routes; *backend*
        defaults to the context's own."""
        from repro.bgp.propagation import PropagationEngine
        return PropagationEngine(
            record_at=record_at,
            record_alternatives_at=record_alternatives_at,
            context=self,
            backend=backend,
        )

    @property
    def route_cache(self) -> RouteCache:
        """Memoised per-origin recorded route fragments (with
        entry/byte accounting, see :class:`RouteCache`)."""
        return self._route_cache

    def __getstate__(self):
        # A bound epoch provider closes over the live graph/route-server
        # objects whose counters it snapshots; a pickle roundtrip severs
        # that link (the restored context pairs with *restored* copies),
        # so the provider is dropped and the context reverts to the
        # constant epoch until a caller rebinds one.
        state = self.__dict__.copy()
        state["_epoch_provider"] = None
        return state

    def bind_epoch(self, provider: Callable[[], Hashable]) -> None:
        """Bind the mutation counters of the state this context's index
        was built from (see :meth:`mutation_epoch`)."""
        self._epoch_provider = provider

    def mutation_epoch(self) -> Hashable:
        """The current mutation epoch salted into route-cache keys.

        Constant ``0`` when no provider is bound (a context over
        immutable inputs); otherwise whatever hashable snapshot the
        bound provider reports — e.g. ``(graph.version, route-server
        versions)`` as bound by the propagation stage.  Any bump of an
        underlying counter changes the epoch, so fragments memoised
        before a mutation are unreachable afterwards.
        """
        return self._epoch_provider() if self._epoch_provider is not None \
            else 0

    def clear_propagation_cache(self) -> None:
        """Drop all memoised per-origin propagation fragments."""
        self._route_cache.clear()

    # -- inference support ---------------------------------------------------

    def cached_inference_planes(self, key):
        """The stored planes whose cache key ``matches`` *key* (or None).

        Keys are :class:`repro.core.planes.PlaneCacheKey`-shaped (duck
        typed: anything with a ``matches`` method); holding the keyed
        input objects strongly in the entry makes the identity
        comparisons inside ``matches`` safe against id reuse.
        """
        for stored_key, value in self._inference_planes:
            if stored_key.matches(key):
                return value
        return None

    def store_inference_planes(self, key, value) -> None:
        """Remember the bitset observation planes computed under *key*."""
        self._inference_planes.append((key, value))
        if len(self._inference_planes) > _MAX_INFERENCE_PLANE_ENTRIES:
            self._inference_planes.pop(0)

    def reachability_matrix(self, result):
        """The (cached) :class:`~repro.runtime.reachmatrix.ReachabilityMatrix`
        of *result* — the shared artifact the section-5 analyses consume.

        Keyed by result identity: the bitset engine pre-populates the
        cache with its natively built planes, so the usual call pattern
        (inference stage -> reachability stage) never rebuilds."""
        for stored, matrix in self._reachability_matrices:
            if stored is result:
                return matrix
        from repro.runtime.reachmatrix import ReachabilityMatrix
        matrix = ReachabilityMatrix.from_result(result, context=self)
        self.store_reachability_matrix(result, matrix)
        return matrix

    def store_reachability_matrix(self, result, matrix) -> None:
        """Associate a pre-built matrix with its inference result."""
        self._reachability_matrices.append((result, matrix))
        if len(self._reachability_matrices) > _MAX_REACHABILITY_MATRICES:
            self._reachability_matrices.pop(0)

    def member_index(self, key: Hashable, members: Iterable[int]) -> BitsetIndex:
        """A (cached) :class:`BitsetIndex` over *members* under *key*.

        The key is usually the IXP name; the cached index is rebuilt when
        the member population changes (validated via an O(n) frozenset
        comparison, not a re-sort).
        """
        population = frozenset(members)
        cached = self._member_indices.get(key)
        if cached is not None and cached[0] == population:
            return cached[1]
        index = BitsetIndex(population)
        self._member_indices[key] = (population, index)
        return index

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Current sizes of the context-owned structures."""
        summary = self.index.summary()
        summary.update({
            "interned_prefixes": len(self.prefixes),
            "interned_communities": len(self.communities),
            "memoized_origins": len(self._route_cache),
            "route_cache_bytes": self._route_cache.bytes,
            "route_cache_hits": self._route_cache.hits,
            "route_cache_misses": self._route_cache.misses,
            "route_cache_evictions": self._route_cache.evictions,
            "member_indices": len(self._member_indices),
            "inference_plane_entries": len(self._inference_planes),
            "reachability_matrices": len(self._reachability_matrices),
        })
        return summary

    def __repr__(self) -> str:
        return (f"PipelineContext({self.index.num_nodes} nodes, "
                f"{len(self._route_cache)} memoized origins)")
