"""The vectorized reachability plane: per-IXP ALLOW matrices.

The paper's section-4 outcome — one reconstructed export policy N_a per
route-server member — is naturally a square boolean matrix per IXP:
``allow[i][j]`` says whether member *i* lets member *j* receive its
routes.  :class:`ReachabilityPlane` stores exactly that, as integer
bitmask rows over a :class:`~repro.runtime.bitset.BitsetIndex` (bit
position == rank of the member ASN), together with the provenance of
each row (passive / active / third-party), the exact merged policy
behind it, per-member observation counts and the looking-glass query
spend.  :class:`ReachabilityMatrix` bundles one plane per IXP and
memoises every derived view the section-5 analyses consume (global link
set, per-IXP link sets, multi-IXP overlap, link provenance, per-member
peer counts and densities), so the whole figure suite runs off one
artifact instead of re-walking the inference result object.

Reciprocal-ALLOW link inference is ``M & M.T``: with numpy the rows are
unpacked into a boolean matrix, AND-ed with its transpose and the upper
triangle is read out in one pass; without numpy the same answer comes
from the integer-bitmask kernel
(:func:`repro.runtime.bitset.reciprocal_pairs`).  Both paths emit the
identical sorted pair tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.runtime.bitset import BitsetIndex, iter_bits, reciprocal_pairs

try:  # pragma: no cover - exercised via numpy_available()
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: An inferred MLP link: an ordered (lower ASN, higher ASN) pair.
Link = Tuple[int, int]

#: The export-policy mode every mask/openness computation branches on
#: (the other mode, "none-except", is handled by the else arms; the
#: canonical mode definitions live in :mod:`repro.core.reachability`).
MODE_ALL_EXCEPT = "all-except"


def allow_mask_for(mode: str, listed: Iterable[int], index: BitsetIndex,
                   member_asn: Optional[int] = None) -> int:
    """N_a as a bitmask over *index* for a merged (mode, listed) policy.

    Mirrors ``MemberReachability.allowed_mask``: listed values unknown to
    the index are ignored, and the member's own bit is always cleared.
    """
    listed_mask = index.mask_of(listed)
    if mode == MODE_ALL_EXCEPT:
        mask = index.full_mask & ~listed_mask
    else:
        mask = listed_mask
    if member_asn is not None:
        own_bit = index.bit_of.get(member_asn)
        if own_bit is not None:
            mask &= ~(1 << own_bit)
    return mask


def rows_to_bool_matrix(rows: Mapping[int, int], size: int):
    """Unpack integer bitmask rows into an (size x size) numpy bool matrix."""
    assert _np is not None
    matrix = _np.zeros((size, size), dtype=bool)
    num_bytes = (size + 7) // 8
    for bit, mask in rows.items():
        if not mask:
            continue
        packed = _np.frombuffer(
            mask.to_bytes(num_bytes, "little"), dtype=_np.uint8)
        matrix[bit] = _np.unpackbits(
            packed, bitorder="little", count=size).view(bool)
    return matrix


def reciprocal_links(rows: Mapping[int, int], universe: Tuple[int, ...],
                     require_reciprocity: bool = True) -> Tuple[Link, ...]:
    """The sorted reciprocal-ALLOW pairs of the given ALLOW rows.

    With numpy this is the matrix form ``M & M.T`` (or ``M | M.T`` for
    the paper's no-reciprocity ablation) with the upper triangle read in
    ascending (row, column) order — which *is* ascending sorted-pair
    order because the universe is sorted.  The bitmask fallback produces
    the identical tuple.
    """
    size = len(universe)
    if _np is None or size == 0:
        return tuple(sorted(reciprocal_pairs(
            dict(rows), universe, require_reciprocity)))
    matrix = rows_to_bool_matrix(rows, size)
    if require_reciprocity:
        mutual = matrix & matrix.T
    else:
        mutual = matrix | matrix.T
    # Row-major nonzero order == ascending (i, j); keeping i < j reads
    # the upper triangle without allocating a third N x N buffer.
    rows_idx, cols_idx = _np.nonzero(mutual)
    return tuple((universe[int(i)], universe[int(j)])
                 for i, j in zip(rows_idx, cols_idx) if i < j)


# -- shared link-view derivations ---------------------------------------------
#
# One definition of the derived link views, used by both the
# ReachabilityMatrix and core's MLPInferenceResult memo sites (the
# differential tests compare the two across backends, so the
# derivations must never drift apart).


def links_union(links_by_ixp: Mapping[str, Tuple[Link, ...]]
                ) -> Tuple[Link, ...]:
    """De-duplicated union of per-IXP link tuples, ascending."""
    merged: set = set()
    for links in links_by_ixp.values():
        merged.update(links)
    return tuple(sorted(merged))


def link_provenance(links_by_ixp: Mapping[str, Tuple[Link, ...]]
                    ) -> Dict[Link, Tuple[str, ...]]:
    """Link -> the sorted IXP names it was inferred at."""
    provenance: Dict[Link, List[str]] = {}
    for name in sorted(links_by_ixp):
        for link in links_by_ixp[name]:
            provenance.setdefault(link, []).append(name)
    return {link: tuple(names) for link, names in provenance.items()}


def multi_ixp_overlap(provenance: Mapping[Link, Tuple[str, ...]]
                      ) -> Tuple[Link, ...]:
    """The links present at more than one IXP, ascending."""
    return tuple(sorted(link for link, ixps in provenance.items()
                        if len(ixps) > 1))


def peer_counts_of(links: Iterable[Link]) -> Dict[int, int]:
    """Per-AS distinct peer counts, keyed in ascending ASN order."""
    counts: Dict[int, int] = {}
    for a, b in links:
        counts[a] = counts.get(a, 0) + 1
        counts[b] = counts.get(b, 0) + 1
    return {asn: counts[asn] for asn in sorted(counts)}


@dataclass
class ReachabilityPlane:
    """One IXP's reachability data plane.

    Row *i* of ``allow_rows`` is N_a of ``index.universe[i]`` as a
    bitmask; only covered members (``covered_mask``) have rows.  The
    exact merged policy behind every row is kept in ``policies`` so the
    object-level :class:`~repro.core.reachability.MemberReachability`
    view can be reconstructed bit-identically, and analyses that need
    the literal EXCLUDE lists (repellers) or populations outside the
    universe (openness against arbitrary member lists) stay exact.
    """

    ixp_name: str
    index: BitsetIndex
    #: covered member bit -> outgoing ALLOW bitmask.
    allow_rows: Dict[int, int] = field(default_factory=dict)
    #: covered member bit -> the merged (mode, listed) policy.
    policies: Dict[int, Tuple[str, FrozenSet[int]]] = field(default_factory=dict)
    #: covered member bit -> observation provenance ("passive"/...).
    sources: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: covered member bit -> number of distinct prefixes observed.
    prefixes_observed: Dict[int, int] = field(default_factory=dict)
    #: covered member bit -> number of inconsistently announced prefixes.
    inconsistent: Dict[int, int] = field(default_factory=dict)
    #: bits of members with a reconstructed reachability.
    covered_mask: int = 0
    #: provenance planes over member bits (may undercount members whose
    #: observations fell outside the final universe; the exact sets are
    #: in passive_members / active_members).
    passive_mask: int = 0
    active_mask: int = 0
    third_party_mask: int = 0
    #: the exact provenance populations (can contain non-universe ASNs).
    passive_members: FrozenSet[int] = frozenset()
    active_members: FrozenSet[int] = frozenset()
    #: looking-glass queries spent collecting this plane.
    active_queries: int = 0
    #: member bit -> number of raw (prefix, policy) observations.
    observation_counts: Dict[int, int] = field(default_factory=dict)
    _links: Dict[bool, Tuple[Link, ...]] = field(
        default_factory=dict, repr=False, compare=False)

    # -- geometry ------------------------------------------------------------

    @property
    def members(self) -> Tuple[int, ...]:
        """The member universe (ascending ASNs)."""
        return self.index.universe

    @property
    def num_members(self) -> int:
        return len(self.index)

    @property
    def num_covered(self) -> int:
        """Members with a reconstructed reachability row."""
        return len(self.allow_rows)

    def covered_asns(self) -> Tuple[int, ...]:
        """Covered members in ascending ASN order."""
        universe = self.index.universe
        return tuple(universe[bit] for bit in iter_bits(self.covered_mask))

    # -- link inference ------------------------------------------------------

    def links(self, require_reciprocity: bool = True) -> Tuple[Link, ...]:
        """Reciprocal-ALLOW links of this plane (memoised per flag)."""
        cached = self._links.get(require_reciprocity)
        if cached is None:
            cached = reciprocal_links(
                self.allow_rows, self.index.universe, require_reciprocity)
            self._links[require_reciprocity] = cached
        return cached

    # -- per-member views ----------------------------------------------------

    def allows(self, member_asn: int, peer_asn: int) -> bool:
        """Whether *member_asn*'s row allows *peer_asn*."""
        bit = self.index.bit_of.get(member_asn)
        peer_bit = self.index.bit_of.get(peer_asn)
        if bit is None or peer_bit is None:
            return False
        return bool(self.allow_rows.get(bit, 0) >> peer_bit & 1)

    def openness(self, member_asn: int,
                 members: Optional[Iterable[int]] = None) -> float:
        """Fraction of other members this member allows (figure 11).

        With an explicit *members* population the exact merged policy is
        consulted (so members outside the plane universe are handled
        like ``MemberReachability.openness``); the default population is
        the plane universe, answered from the row popcount.
        """
        bit = self.index.bit_of.get(member_asn)
        if bit is None or bit not in self.policies:
            return 0.0
        if members is None:
            others = self.num_members - 1
            if others <= 0:
                return 0.0
            row = self.allow_rows.get(bit, 0) & ~(1 << bit)
            return bin(row).count("1") / others
        mode, listed = self.policies[bit]
        others = [m for m in members if m != member_asn]
        if not others:
            return 0.0
        if mode == MODE_ALL_EXCEPT:
            allowed = sum(1 for m in others if m not in listed)
        else:
            allowed = sum(1 for m in others if m in listed)
        return allowed / len(others)

    def exclusions(self, members: Optional[Iterable[int]] = None
                   ) -> List[Tuple[int, int]]:
        """(blocker, blocked) pairs from ``all-except`` rows whose EXCLUDE
        targets are in *members* (default: the plane universe) — the
        repeller analysis' raw material, in ascending blocker order."""
        population = set(members) if members is not None \
            else set(self.index.universe)
        pairs: List[Tuple[int, int]] = []
        universe = self.index.universe
        for bit in sorted(self.policies):
            mode, listed = self.policies[bit]
            if mode != MODE_ALL_EXCEPT:
                continue
            blocker = universe[bit]
            for blocked in sorted(set(listed) & population):
                pairs.append((blocker, blocked))
        return pairs

    def summary(self) -> Dict[str, int]:
        """Compact per-plane numbers for reports and benchmarks."""
        return {
            "members": self.num_members,
            "covered": self.num_covered,
            "passive": len(self.passive_members),
            "active": len(self.active_members),
            "links": len(self.links()),
            "active_queries": self.active_queries,
        }


class ReachabilityMatrix:
    """The scenario-wide reachability artifact: one plane per IXP.

    Every accessor the analyses consume is memoised, so Table 2, the
    visibility/degree/density figures and the hybrid/repeller reports
    all read from one shared computation instead of re-deriving the
    global link set per figure.
    """

    def __init__(self, planes: Dict[str, ReachabilityPlane],
                 links_by_ixp: Optional[Dict[str, Tuple[Link, ...]]] = None,
                 built_by: str = "object") -> None:
        #: ixp name -> plane.
        self.planes = dict(planes)
        #: inference backend that produced the planes (provenance).
        self.built_by = built_by
        #: per-IXP link tuples — the result's links (identical across
        #: backends); computed from the planes when not supplied.
        self._links_by_ixp: Dict[str, Tuple[Link, ...]] = (
            dict(links_by_ixp) if links_by_ixp is not None
            else {name: plane.links() for name, plane in self.planes.items()})
        self._derived: Dict[str, object] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_result(cls, result, context: Optional[object] = None,
                    built_by: Optional[str] = None) -> "ReachabilityMatrix":
        """Build the matrix from an inference result (any backend).

        *result* is duck-typed (``repro.core.engine.MLPInferenceResult``
        shaped) so the runtime layer stays import-free of core; *context*
        supplies cached per-IXP member indices when available.
        """
        planes: Dict[str, ReachabilityPlane] = {}
        links: Dict[str, Tuple[Link, ...]] = {}
        for ixp_name in sorted(result.per_ixp):
            inference = result.per_ixp[ixp_name]
            if context is not None:
                index = context.member_index(ixp_name, inference.members)
            else:
                index = BitsetIndex(inference.members)
            plane = ReachabilityPlane(
                ixp_name=ixp_name,
                index=index,
                passive_members=frozenset(inference.passive_members),
                active_members=frozenset(inference.active_members),
                passive_mask=index.mask_of(inference.passive_members),
                active_mask=index.mask_of(inference.active_members),
                active_queries=inference.active_queries,
            )
            for asn in sorted(inference.reachabilities):
                reach = inference.reachabilities[asn]
                bit = index.bit_of.get(asn)
                if bit is None:
                    continue
                plane.allow_rows[bit] = allow_mask_for(
                    reach.mode, reach.listed, index, member_asn=asn)
                plane.policies[bit] = (reach.mode, reach.listed)
                plane.sources[bit] = frozenset(reach.sources)
                plane.prefixes_observed[bit] = reach.prefixes_observed
                plane.inconsistent[bit] = reach.inconsistent_prefixes
                plane.covered_mask |= 1 << bit
                if "third-party" in reach.sources:
                    plane.third_party_mask |= 1 << bit
            planes[ixp_name] = plane
            links[ixp_name] = tuple(inference.links)
        return cls(planes, links_by_ixp=links,
                   built_by=built_by if built_by is not None
                   else getattr(result, "inference_backend", "object"))

    # -- shared link views ---------------------------------------------------

    def ixp_names(self) -> List[str]:
        """IXPs ordered by link count (descending, name-tie-broken)."""
        return sorted(self.planes,
                      key=lambda name: (-len(self._links_by_ixp[name]), name))

    def links_by_ixp(self) -> Dict[str, Tuple[Link, ...]]:
        """Per-IXP sorted link tuples (the inference result's links)."""
        return dict(self._links_by_ixp)

    def links_of(self, ixp_name: str) -> Tuple[Link, ...]:
        """One IXP's sorted link tuple."""
        return self._links_by_ixp[ixp_name]

    def all_links(self) -> Tuple[Link, ...]:
        """De-duplicated union of the per-IXP links, ascending (memoised)."""
        cached = self._derived.get("all_links")
        if cached is None:
            cached = links_union(self._links_by_ixp)
            self._derived["all_links"] = cached
        return cached

    def multi_ixp_links(self) -> Tuple[Link, ...]:
        """Links inferred at more than one IXP, ascending (memoised)."""
        cached = self._derived.get("multi_ixp_links")
        if cached is None:
            cached = multi_ixp_overlap(self.link_ixps())
            self._derived["multi_ixp_links"] = cached
        return cached

    def link_ixps(self) -> Dict[Link, Tuple[str, ...]]:
        """Link -> the sorted IXP names it was inferred at (memoised) —
        the link-provenance view the hybrid analysis consumes."""
        cached = self._derived.get("link_ixps")
        if cached is None:
            cached = link_provenance(self._links_by_ixp)
            self._derived["link_ixps"] = cached
        return cached

    def peer_counts(self) -> Dict[int, int]:
        """Per-AS distinct MLP peer counts (figure 6's x-axis), keyed in
        ascending ASN order (memoised)."""
        cached = self._derived.get("peer_counts")
        if cached is None:
            cached = peer_counts_of(self.all_links())
            self._derived["peer_counts"] = cached
        return cached

    # -- aggregate introspection ---------------------------------------------

    def total_active_queries(self) -> int:
        """Looking-glass queries spent across every plane."""
        return sum(plane.active_queries for plane in self.planes.values())

    def summary(self) -> Dict[str, object]:
        """Headline numbers across all planes."""
        return {
            "ixps": len(self.planes),
            "links": len(self.all_links()),
            "multi_ixp_links": len(self.multi_ixp_links()),
            "covered_members": sum(plane.num_covered
                                   for plane in self.planes.values()),
            "active_queries": self.total_active_queries(),
            "built_by": self.built_by,
        }

    def __repr__(self) -> str:
        return (f"ReachabilityMatrix({len(self.planes)} planes, "
                f"{len(self.all_links())} links, built_by={self.built_by})")
