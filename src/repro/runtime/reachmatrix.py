"""The vectorized reachability plane: per-IXP ALLOW matrices.

The paper's section-4 outcome — one reconstructed export policy N_a per
route-server member — is naturally a square boolean matrix per IXP:
``allow[i][j]`` says whether member *i* lets member *j* receive its
routes.  :class:`ReachabilityPlane` stores exactly that, as integer
bitmask rows over a :class:`~repro.runtime.bitset.BitsetIndex` (bit
position == rank of the member ASN), together with the provenance of
each row (passive / active / third-party), the exact merged policy
behind it, per-member observation counts and the looking-glass query
spend.  :class:`ReachabilityMatrix` bundles one plane per IXP and
memoises every derived view the section-5 analyses consume (global link
set, per-IXP link sets, multi-IXP overlap, link provenance, per-member
peer counts and densities), so the whole figure suite runs off one
artifact instead of re-walking the inference result object.

Reciprocal-ALLOW link inference is ``M & M.T``: with numpy the rows are
unpacked into a boolean matrix, AND-ed with its transpose and the upper
triangle is read out in one pass; without numpy the same answer comes
from the integer-bitmask kernel
(:func:`repro.runtime.bitset.reciprocal_pairs`).  Both paths emit the
identical sorted pair tuple.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.runtime.bitset import BitsetIndex, iter_bits, reciprocal_pairs

try:  # pragma: no cover - exercised via numpy_available()
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: An inferred MLP link: an ordered (lower ASN, higher ASN) pair.
Link = Tuple[int, int]

#: The on-wire dtype of packed ALLOW planes: 64-bit little-endian words,
#: word ``w`` holding member bits ``64*w .. 64*w+63`` (bit ``b`` of the
#: mask is bit ``b % 64`` of word ``b // 64``).  The explicit ``<``
#: keeps arrays byte-identical across hosts, which is what lets the
#: service artifact be mmap'd by any worker that can read the file.
PACKED_DTYPE = "<u8"

#: The export-policy mode every mask/openness computation branches on
#: (the other mode, "none-except", is handled by the else arms; the
#: canonical mode definitions live in :mod:`repro.core.reachability`).
MODE_ALL_EXCEPT = "all-except"


def allow_mask_for(mode: str, listed: Iterable[int], index: BitsetIndex,
                   member_asn: Optional[int] = None) -> int:
    """N_a as a bitmask over *index* for a merged (mode, listed) policy.

    Mirrors ``MemberReachability.allowed_mask``: listed values unknown to
    the index are ignored, and the member's own bit is always cleared.
    """
    listed_mask = index.mask_of(listed)
    if mode == MODE_ALL_EXCEPT:
        mask = index.full_mask & ~listed_mask
    else:
        mask = listed_mask
    if member_asn is not None:
        own_bit = index.bit_of.get(member_asn)
        if own_bit is not None:
            mask &= ~(1 << own_bit)
    return mask


def packed_words(size: int) -> int:
    """Words per packed row for a *size*-member universe (>= 1)."""
    return max(1, (size + 63) // 64)


def pack_mask(mask: int, size: int):
    """One integer bitmask as a ``(words,)`` :data:`PACKED_DTYPE` row."""
    assert _np is not None
    nbytes = packed_words(size) * 8
    return _np.frombuffer(mask.to_bytes(nbytes, "little"),
                          dtype=PACKED_DTYPE).copy()


def unpack_mask(row) -> int:
    """The integer bitmask of one packed row (inverse of :func:`pack_mask`)."""
    return int.from_bytes(_np.ascontiguousarray(row).tobytes(), "little")


def pack_rows(rows: Mapping[int, int], size: int):
    """Integer bitmask rows as a packed ``(size, words)`` uint64 plane.

    Uncovered rows (bits without an entry) pack as all-zero words —
    exactly how :func:`rows_to_bool_matrix` treated them.
    """
    assert _np is not None
    words = packed_words(size)
    packed = _np.zeros((size, words), dtype=PACKED_DTYPE)
    nbytes = words * 8
    for bit, mask in rows.items():
        if mask:
            packed[bit] = _np.frombuffer(
                mask.to_bytes(nbytes, "little"), dtype=PACKED_DTYPE)
    return packed


def packed_to_bool_matrix(packed, size: int):
    """Unpack a ``(size, words)`` uint64 plane into a bool matrix.

    One vectorized ``unpackbits`` over the whole plane — no per-row
    Python-integer traffic, which is what makes this usable directly on
    an mmap'd artifact plane.
    """
    assert _np is not None
    if size == 0:
        return _np.zeros((0, 0), dtype=bool)
    as_bytes = _np.ascontiguousarray(packed).view(_np.uint8)
    return _np.unpackbits(as_bytes, axis=1, bitorder="little",
                          count=size).view(bool)


def rows_to_bool_matrix(rows: Mapping[int, int], size: int):
    """Unpack integer bitmask rows into an (size x size) numpy bool matrix."""
    assert _np is not None
    return packed_to_bool_matrix(pack_rows(rows, size), size)


def reciprocal_links_packed(packed, universe: Tuple[int, ...],
                            require_reciprocity: bool = True
                            ) -> Tuple[Link, ...]:
    """:func:`reciprocal_links` over a packed uint64 ALLOW plane.

    The kernel the query service runs on mmap'd planes: unpack once,
    ``M & M.T`` (or ``M | M.T``), read the upper triangle in ascending
    row-major order — which *is* ascending sorted-pair order because
    the universe is sorted.
    """
    assert _np is not None
    size = len(universe)
    if size == 0:
        return ()
    matrix = packed_to_bool_matrix(packed, size)
    if require_reciprocity:
        mutual = matrix & matrix.T
    else:
        mutual = matrix | matrix.T
    # Row-major nonzero order == ascending (i, j); keeping i < j reads
    # the upper triangle without allocating a third N x N buffer.
    rows_idx, cols_idx = _np.nonzero(mutual)
    return tuple((universe[int(i)], universe[int(j)])
                 for i, j in zip(rows_idx, cols_idx) if i < j)


def reciprocal_links(rows: Mapping[int, int], universe: Tuple[int, ...],
                     require_reciprocity: bool = True) -> Tuple[Link, ...]:
    """The sorted reciprocal-ALLOW pairs of the given ALLOW rows.

    With numpy the rows are packed into a uint64 plane and handed to
    :func:`reciprocal_links_packed`; the integer-bitmask fallback
    (:func:`~repro.runtime.bitset.reciprocal_pairs`) produces the
    identical tuple on installs without numpy.
    """
    size = len(universe)
    if _np is None or size == 0:
        return tuple(sorted(reciprocal_pairs(
            dict(rows), universe, require_reciprocity)))
    return reciprocal_links_packed(
        pack_rows(rows, size), universe, require_reciprocity)


class PackedRows(MappingABC):
    """A read-only ``Mapping[bit, int-mask]`` view over a packed plane.

    The authoritative data is the ``(members, words)`` uint64 array
    (usually an mmap of the service artifact); Python integers are
    materialised lazily per accessed row and memoised, so planes loaded
    for packed-kernel queries never pay the integer conversion unless
    object-level code actually asks for a row.  Equality compares like
    a dict, so loaded planes compare clean against built ones.
    """

    __slots__ = ("_packed", "_bits", "_bitset", "_cache")

    def __init__(self, packed, bits: Iterable[int]) -> None:
        self._packed = packed
        self._bits = tuple(bits)
        self._bitset = frozenset(self._bits)
        self._cache: Dict[int, int] = {}

    def __getitem__(self, bit: int) -> int:
        if bit not in self._bitset:
            raise KeyError(bit)
        value = self._cache.get(bit)
        if value is None:
            value = unpack_mask(self._packed[bit])
            self._cache[bit] = value
        return value

    def __iter__(self):
        return iter(self._bits)

    def __len__(self) -> int:
        return len(self._bits)

    def __contains__(self, bit) -> bool:
        return bit in self._bitset

    def __eq__(self, other) -> bool:
        if isinstance(other, (dict, MappingABC)):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __reduce__(self):
        # Pickle as a plain in-memory array (an mmap does not travel).
        return (PackedRows, (_np.asarray(self._packed), self._bits))

    def __repr__(self) -> str:
        return f"PackedRows({len(self._bits)} rows)"


# -- shared link-view derivations ---------------------------------------------
#
# One definition of the derived link views, used by both the
# ReachabilityMatrix and core's MLPInferenceResult memo sites (the
# differential tests compare the two across backends, so the
# derivations must never drift apart).


def links_union(links_by_ixp: Mapping[str, Tuple[Link, ...]]
                ) -> Tuple[Link, ...]:
    """De-duplicated union of per-IXP link tuples, ascending."""
    merged: set = set()
    for links in links_by_ixp.values():
        merged.update(links)
    return tuple(sorted(merged))


def link_provenance(links_by_ixp: Mapping[str, Tuple[Link, ...]]
                    ) -> Dict[Link, Tuple[str, ...]]:
    """Link -> the sorted IXP names it was inferred at."""
    provenance: Dict[Link, List[str]] = {}
    for name in sorted(links_by_ixp):
        for link in links_by_ixp[name]:
            provenance.setdefault(link, []).append(name)
    return {link: tuple(names) for link, names in provenance.items()}


def multi_ixp_overlap(provenance: Mapping[Link, Tuple[str, ...]]
                      ) -> Tuple[Link, ...]:
    """The links present at more than one IXP, ascending."""
    return tuple(sorted(link for link, ixps in provenance.items()
                        if len(ixps) > 1))


def peer_counts_of(links: Iterable[Link]) -> Dict[int, int]:
    """Per-AS distinct peer counts, keyed in ascending ASN order."""
    counts: Dict[int, int] = {}
    for a, b in links:
        counts[a] = counts.get(a, 0) + 1
        counts[b] = counts.get(b, 0) + 1
    return {asn: counts[asn] for asn in sorted(counts)}


@dataclass
class ReachabilityPlane:
    """One IXP's reachability data plane.

    Row *i* of ``allow_rows`` is N_a of ``index.universe[i]`` as a
    bitmask; only covered members (``covered_mask``) have rows.  The
    exact merged policy behind every row is kept in ``policies`` so the
    object-level :class:`~repro.core.reachability.MemberReachability`
    view can be reconstructed bit-identically, and analyses that need
    the literal EXCLUDE lists (repellers) or populations outside the
    universe (openness against arbitrary member lists) stay exact.
    """

    ixp_name: str
    index: BitsetIndex
    #: covered member bit -> outgoing ALLOW bitmask.  Built planes use a
    #: plain dict; planes loaded from the service artifact install a
    #: lazy :class:`PackedRows` view over the mmap'd uint64 plane (the
    #: two compare equal row-for-row).
    allow_rows: Dict[int, int] = field(default_factory=dict)
    #: covered member bit -> the merged (mode, listed) policy.
    policies: Dict[int, Tuple[str, FrozenSet[int]]] = field(default_factory=dict)
    #: covered member bit -> observation provenance ("passive"/...).
    sources: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: covered member bit -> number of distinct prefixes observed.
    prefixes_observed: Dict[int, int] = field(default_factory=dict)
    #: covered member bit -> number of inconsistently announced prefixes.
    inconsistent: Dict[int, int] = field(default_factory=dict)
    #: bits of members with a reconstructed reachability.
    covered_mask: int = 0
    #: provenance planes over member bits (may undercount members whose
    #: observations fell outside the final universe; the exact sets are
    #: in passive_members / active_members).
    passive_mask: int = 0
    active_mask: int = 0
    third_party_mask: int = 0
    #: the exact provenance populations (can contain non-universe ASNs).
    passive_members: FrozenSet[int] = frozenset()
    active_members: FrozenSet[int] = frozenset()
    #: looking-glass queries spent collecting this plane.
    active_queries: int = 0
    #: member bit -> number of raw (prefix, policy) observations.
    observation_counts: Dict[int, int] = field(default_factory=dict)
    _links: Dict[bool, Tuple[Link, ...]] = field(
        default_factory=dict, repr=False, compare=False)
    #: lazily packed ``(members, words)`` uint64 ALLOW plane (the hot
    #: representation behind :meth:`links`/:meth:`allows`; mmap'd for
    #: artifact-loaded planes, packed once from ``allow_rows`` for
    #: built ones).  Treat the plane as frozen once packed.
    _packed: Optional[object] = field(
        default=None, repr=False, compare=False)

    # -- geometry ------------------------------------------------------------

    @property
    def members(self) -> Tuple[int, ...]:
        """The member universe (ascending ASNs)."""
        return self.index.universe

    @property
    def num_members(self) -> int:
        return len(self.index)

    @property
    def num_covered(self) -> int:
        """Members with a reconstructed reachability row."""
        return len(self.allow_rows)

    def covered_asns(self) -> Tuple[int, ...]:
        """Covered members in ascending ASN order."""
        universe = self.index.universe
        return tuple(universe[bit] for bit in iter_bits(self.covered_mask))

    # -- packed representation -----------------------------------------------

    def packed(self):
        """The ``(members, words)`` :data:`PACKED_DTYPE` ALLOW plane.

        Packed once from ``allow_rows`` and memoised (None without
        numpy); artifact-loaded planes carry their mmap'd plane from
        construction and never touch Python integers here.  The plane
        must not be mutated after the first call.
        """
        if self._packed is None and _np is not None:
            self._packed = pack_rows(self.allow_rows, len(self.index))
        return self._packed

    # -- link inference ------------------------------------------------------

    def links(self, require_reciprocity: bool = True) -> Tuple[Link, ...]:
        """Reciprocal-ALLOW links of this plane (memoised per flag).

        Runs on the packed uint64 plane when numpy is importable; the
        integer-bitmask kernel answers identically without it.
        """
        cached = self._links.get(require_reciprocity)
        if cached is None:
            packed = self.packed()
            if packed is not None:
                cached = reciprocal_links_packed(
                    packed, self.index.universe, require_reciprocity)
            else:
                cached = reciprocal_links(
                    self.allow_rows, self.index.universe,
                    require_reciprocity)
            self._links[require_reciprocity] = cached
        return cached

    # -- per-member views ----------------------------------------------------

    def allows(self, member_asn: int, peer_asn: int) -> bool:
        """Whether *member_asn*'s row allows *peer_asn*."""
        bit = self.index.bit_of.get(member_asn)
        peer_bit = self.index.bit_of.get(peer_asn)
        if bit is None or peer_bit is None:
            return False
        if self._packed is not None:
            word = self._packed[bit, peer_bit >> 6]
            return bool(int(word) >> (peer_bit & 63) & 1)
        return bool(self.allow_rows.get(bit, 0) >> peer_bit & 1)

    def openness(self, member_asn: int,
                 members: Optional[Iterable[int]] = None) -> float:
        """Fraction of other members this member allows (figure 11).

        With an explicit *members* population the exact merged policy is
        consulted (so members outside the plane universe are handled
        like ``MemberReachability.openness``); the default population is
        the plane universe, answered from the row popcount.
        """
        bit = self.index.bit_of.get(member_asn)
        if bit is None or bit not in self.policies:
            return 0.0
        if members is None:
            others = self.num_members - 1
            if others <= 0:
                return 0.0
            row = self.allow_rows.get(bit, 0) & ~(1 << bit)
            return bin(row).count("1") / others
        mode, listed = self.policies[bit]
        others = [m for m in members if m != member_asn]
        if not others:
            return 0.0
        if mode == MODE_ALL_EXCEPT:
            allowed = sum(1 for m in others if m not in listed)
        else:
            allowed = sum(1 for m in others if m in listed)
        return allowed / len(others)

    def exclusions(self, members: Optional[Iterable[int]] = None
                   ) -> List[Tuple[int, int]]:
        """(blocker, blocked) pairs from ``all-except`` rows whose EXCLUDE
        targets are in *members* (default: the plane universe) — the
        repeller analysis' raw material, in ascending blocker order."""
        population = set(members) if members is not None \
            else set(self.index.universe)
        pairs: List[Tuple[int, int]] = []
        universe = self.index.universe
        for bit in sorted(self.policies):
            mode, listed = self.policies[bit]
            if mode != MODE_ALL_EXCEPT:
                continue
            blocker = universe[bit]
            for blocked in sorted(set(listed) & population):
                pairs.append((blocker, blocked))
        return pairs

    def summary(self) -> Dict[str, int]:
        """Compact per-plane numbers for reports and benchmarks."""
        return {
            "members": self.num_members,
            "covered": self.num_covered,
            "passive": len(self.passive_members),
            "active": len(self.active_members),
            "links": len(self.links()),
            "active_queries": self.active_queries,
        }


class ReachabilityMatrix:
    """The scenario-wide reachability artifact: one plane per IXP.

    Every accessor the analyses consume is memoised, so Table 2, the
    visibility/degree/density figures and the hybrid/repeller reports
    all read from one shared computation instead of re-deriving the
    global link set per figure.
    """

    def __init__(self, planes: Dict[str, ReachabilityPlane],
                 links_by_ixp: Optional[Dict[str, Tuple[Link, ...]]] = None,
                 built_by: str = "object") -> None:
        #: ixp name -> plane.
        self.planes = dict(planes)
        #: inference backend that produced the planes (provenance).
        self.built_by = built_by
        #: per-IXP link tuples — the result's links (identical across
        #: backends); computed from the planes when not supplied.
        self._links_by_ixp: Dict[str, Tuple[Link, ...]] = (
            dict(links_by_ixp) if links_by_ixp is not None
            else {name: plane.links() for name, plane in self.planes.items()})
        self._derived: Dict[str, object] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_result(cls, result, context: Optional[object] = None,
                    built_by: Optional[str] = None) -> "ReachabilityMatrix":
        """Build the matrix from an inference result (any backend).

        *result* is duck-typed (``repro.core.engine.MLPInferenceResult``
        shaped) so the runtime layer stays import-free of core; *context*
        supplies cached per-IXP member indices when available.
        """
        planes: Dict[str, ReachabilityPlane] = {}
        links: Dict[str, Tuple[Link, ...]] = {}
        for ixp_name in sorted(result.per_ixp):
            inference = result.per_ixp[ixp_name]
            if context is not None:
                index = context.member_index(ixp_name, inference.members)
            else:
                index = BitsetIndex(inference.members)
            plane = ReachabilityPlane(
                ixp_name=ixp_name,
                index=index,
                passive_members=frozenset(inference.passive_members),
                active_members=frozenset(inference.active_members),
                passive_mask=index.mask_of(inference.passive_members),
                active_mask=index.mask_of(inference.active_members),
                active_queries=inference.active_queries,
            )
            for asn in sorted(inference.reachabilities):
                reach = inference.reachabilities[asn]
                bit = index.bit_of.get(asn)
                if bit is None:
                    continue
                plane.allow_rows[bit] = allow_mask_for(
                    reach.mode, reach.listed, index, member_asn=asn)
                plane.policies[bit] = (reach.mode, reach.listed)
                plane.sources[bit] = frozenset(reach.sources)
                plane.prefixes_observed[bit] = reach.prefixes_observed
                plane.inconsistent[bit] = reach.inconsistent_prefixes
                plane.covered_mask |= 1 << bit
                if "third-party" in reach.sources:
                    plane.third_party_mask |= 1 << bit
            planes[ixp_name] = plane
            links[ixp_name] = tuple(inference.links)
        return cls(planes, links_by_ixp=links,
                   built_by=built_by if built_by is not None
                   else getattr(result, "inference_backend", "object"))

    # -- shared link views ---------------------------------------------------

    def ixp_names(self) -> List[str]:
        """IXPs ordered by link count (descending, name-tie-broken)."""
        return sorted(self.planes,
                      key=lambda name: (-len(self._links_by_ixp[name]), name))

    def links_by_ixp(self) -> Dict[str, Tuple[Link, ...]]:
        """Per-IXP sorted link tuples (the inference result's links)."""
        return dict(self._links_by_ixp)

    def links_of(self, ixp_name: str) -> Tuple[Link, ...]:
        """One IXP's sorted link tuple."""
        return self._links_by_ixp[ixp_name]

    def all_links(self) -> Tuple[Link, ...]:
        """De-duplicated union of the per-IXP links, ascending (memoised)."""
        cached = self._derived.get("all_links")
        if cached is None:
            cached = links_union(self._links_by_ixp)
            self._derived["all_links"] = cached
        return cached

    def multi_ixp_links(self) -> Tuple[Link, ...]:
        """Links inferred at more than one IXP, ascending (memoised)."""
        cached = self._derived.get("multi_ixp_links")
        if cached is None:
            cached = multi_ixp_overlap(self.link_ixps())
            self._derived["multi_ixp_links"] = cached
        return cached

    def link_ixps(self) -> Dict[Link, Tuple[str, ...]]:
        """Link -> the sorted IXP names it was inferred at (memoised) —
        the link-provenance view the hybrid analysis consumes."""
        cached = self._derived.get("link_ixps")
        if cached is None:
            cached = link_provenance(self._links_by_ixp)
            self._derived["link_ixps"] = cached
        return cached

    def peer_counts(self) -> Dict[int, int]:
        """Per-AS distinct MLP peer counts (figure 6's x-axis), keyed in
        ascending ASN order (memoised)."""
        cached = self._derived.get("peer_counts")
        if cached is None:
            cached = peer_counts_of(self.all_links())
            self._derived["peer_counts"] = cached
        return cached

    # -- aggregate introspection ---------------------------------------------

    def total_active_queries(self) -> int:
        """Looking-glass queries spent across every plane."""
        return sum(plane.active_queries for plane in self.planes.values())

    def summary(self) -> Dict[str, object]:
        """Headline numbers across all planes."""
        return {
            "ixps": len(self.planes),
            "links": len(self.all_links()),
            "multi_ixp_links": len(self.multi_ixp_links()),
            "covered_members": sum(plane.num_covered
                                   for plane in self.planes.values()),
            "active_queries": self.total_active_queries(),
            "built_by": self.built_by,
        }

    def __repr__(self) -> str:
        return (f"ReachabilityMatrix({len(self.planes)} planes, "
                f"{len(self.all_links())} links, built_by={self.built_by})")
