"""Frontier-limited delta recompute over a prior propagation result.

A single topology event — a session flap, an RS policy edit, a member
join/leave — can only change the routes of origins whose valley-free
propagation cone crosses the changed edge or policy.  This module
computes that affected set directly on the CSR index and patches a
prior :class:`~repro.bgp.propagation.PropagationResult`: only affected
origins are re-run through the (frontier/batched/compiled) kernels,
every other origin's columnar :class:`RouteBlock` is reused
byte-for-byte from the baseline.

Affected-set soundness
----------------------
Valley-free forward propagation from an origin is: a climb over
customer-phase edges, at most one peer-phase hop, then a descent over
provider-phase edges.  :func:`affected_update` computes, on the
**pre-event** state, a sound superset of the origins whose recorded
fragments can change — per change kind:

* **Removed edges and policy/bag edits are exact.**  Removing an edge
  only removes candidate routes, and route selection is a pure function
  of the offered paths, so a recorded fragment changes iff one of its
  recorded paths crossed the removed edge (a non-recorded node whose
  best route used the edge forwards that full path to every recorded
  observer downstream of it, so the crossing is always visible in the
  prior blocks).  Likewise an edited member's route-server communities
  ride only routes whose path visits the member.
  :func:`origins_touching` scans the prior result's columnar blocks for
  those pairs/nodes.
* **Added edges use the first-crossing argument plus export scoping.**
  A new route through an added edge must reach one endpoint via
  pre-event edges.  What crosses, and where the change can surface, is
  bounded by valley-free export rules:

  - a ``customer -> provider`` crossing carries only the customer's
    cone (its transitive customers plus itself) and re-exports
    globally, so the customer's :func:`customer_cone` is always
    affected;
  - a ``provider -> customer`` crossing can carry anything the provider
    holds, but the route then only descends — it surfaces solely at
    observers at or below the customer endpoint.  When no recording
    observer sits there, the descent direction affects nothing; when
    one does, the provider side falls back to the conservative
    three-phase backward cone (:func:`affected_origins`);
  - a peer crossing carries each exporter's customer cone and surfaces
    only at or below the importer, so each side's cone is gated on an
    observer below the other side.

Origins outside the computed set provably record identical fragments on
the post-event index, so their blocks are safe to reuse without
comparison.  :func:`affected_origins` — the three phases run *backward
from seed ASNs* (``S3`` backward over provider edges, ``S2`` one
backward peer hop, ``S1`` backward over customer edges) — remains the
conservative fallback for changes with no sharper analysis
(sibling/unknown edges).

NOTE: this module imports :mod:`repro.bgp.propagation` at module level;
that is only acyclic because ``repro/runtime/__init__.py`` deliberately
does NOT import ``repro.runtime.delta``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

try:  # optional, mirrors runtime/fragments.py — block scans need it,
    import numpy as np  # the object-fragment fallback does not.
except ImportError:  # pragma: no cover - exercised via object fragments
    np = None  # type: ignore[assignment]

from repro.bgp.propagation import OriginSpec, PropagationResult
from repro.runtime.csr import CSRIndex, PhaseEdges

#: One origin's recorded fragments, as the engine returns them:
#: ``(best, offered)`` RouteBlocks (or plain route lists without numpy).
Fragments = Tuple[Sequence, Sequence]

#: Computes fragments for the stale origins, in spec order — typically
#: ``engine.batch_fragments`` or a sharded equivalent.
FragmentsFn = Callable[[Sequence[OriginSpec]], List[Fragments]]


def _reverse_lists(phase: PhaseEdges, num_nodes: int) -> List[List[int]]:
    """Reverse adjacency (target -> sources) of one phase's CSR edges."""
    reverse: List[List[int]] = [[] for _ in range(num_nodes)]
    indptr, targets = phase.indptr, phase.targets
    for source in range(num_nodes):
        for edge in range(indptr[source], indptr[source + 1]):
            reverse[targets[edge]].append(source)
    return reverse


def _backward_closure(marked: bytearray, frontier: List[int],
                      reverse: List[List[int]]) -> None:
    """Mark, in place, everything reaching a marked node over *reverse*."""
    while frontier:
        node = frontier.pop()
        for source in reverse[node]:
            if not marked[source]:
                marked[source] = 1
                frontier.append(source)


def affected_origins(
    index: CSRIndex,
    seeds: Iterable[int],
    origins: Iterable[int],
) -> FrozenSet[int]:
    """Origins whose propagation cone can cross any seed ASN.

    *index* must be the **pre-event** index (see the module docstring's
    soundness argument); *seeds* are the ASNs adjacent to the change.
    Seed ASNs absent from the index (isolated nodes) still taint
    themselves: a new link may connect them.
    """
    seed_asns = set(seeds)
    if not seed_asns:
        return frozenset()
    origins = list(origins)
    num_nodes = index.num_nodes
    marked = bytearray(num_nodes)
    frontier: List[int] = []
    for asn in seed_asns:
        node = index.id_of.get(asn)
        if node is not None and not marked[node]:
            marked[node] = 1
            frontier.append(node)

    # S3: backward over the provider phase (descents ending at a seed).
    _backward_closure(marked, frontier,
                      _reverse_lists(index.provider_edges, num_nodes))
    # S2: one backward peer hop into S3.  Scanned against a fixed copy
    # of S3 so a freshly marked source never chains a second peer hop.
    peer = index.peer_edges
    in_s3 = bytes(marked)
    for source in range(num_nodes):
        if marked[source]:
            continue
        for edge in range(peer.indptr[source], peer.indptr[source + 1]):
            if in_s3[peer.targets[edge]]:
                marked[source] = 1
                break
    # S1: backward over the customer phase (climbs reaching S2).
    _backward_closure(marked, [n for n in range(num_nodes) if marked[n]],
                      _reverse_lists(index.customer_edges, num_nodes))

    id_of = index.id_of
    affected = set()
    for asn in origins:
        node = id_of.get(asn)
        if (node is not None and marked[node]) or asn in seed_asns:
            affected.add(asn)
    return frozenset(affected)


def _forward_closure(marked: bytearray, frontier: List[int],
                     phase: PhaseEdges) -> None:
    """Mark, in place, everything reachable from *frontier* over *phase*."""
    indptr, targets = phase.indptr, phase.targets
    while frontier:
        node = frontier.pop()
        for edge in range(indptr[node], indptr[node + 1]):
            target = targets[edge]
            if not marked[target]:
                marked[target] = 1
                frontier.append(target)


def customer_cone(index: CSRIndex, asn: int) -> FrozenSet[int]:
    """*asn* plus every ASN whose valley-free climb can reach it
    (transitive customers over customer-phase edges, siblings included).
    ASNs absent from the index cone onto themselves."""
    node = index.id_of.get(asn)
    if node is None:
        return frozenset({asn})
    marked = bytearray(index.num_nodes)
    marked[node] = 1
    _backward_closure(marked, [node],
                      _reverse_lists(index.customer_edges, index.num_nodes))
    node_asns = index.node_asns
    return frozenset(node_asns[n] for n in range(index.num_nodes)
                     if marked[n])


def _observer_below(index: CSRIndex, asn: int,
                    records: Optional[FrozenSet[int]]) -> bool:
    """Does a recording observer sit at *asn* or in its descent (its
    provider-phase reachable set)?  ``records=None`` means the engine
    records everywhere."""
    if records is None:
        return True
    if asn in records:
        return True
    node = index.id_of.get(asn)
    if node is None:
        return False
    indptr = index.provider_edges.indptr
    targets = index.provider_edges.targets
    node_asns = index.node_asns
    marked = bytearray(index.num_nodes)
    marked[node] = 1
    frontier = [node]
    while frontier:
        source = frontier.pop()
        for edge in range(indptr[source], indptr[source + 1]):
            target = targets[edge]
            if not marked[target]:
                if node_asns[target] in records:
                    return True
                marked[target] = 1
                frontier.append(target)
    return False


def _block_touches(block, pair_set: Set[Tuple[int, int]],
                   visit_set: Set[int]) -> bool:
    """Does one fragment block contain any pair as an adjacent path hop,
    or visit any of the ASNs?  Columnar fast path, object fallback."""
    if hasattr(block, "link_pairs"):
        values = block.path_values
        for asn in visit_set:
            if bool((values == asn).any()):
                return True
        if pair_set:
            lo, hi = block.link_pairs()
            if len(lo):
                hit = np.zeros(len(lo), dtype=bool)
                for low, high in pair_set:
                    hit |= (lo == low) & (hi == high)
                if bool(hit.any()):
                    return True
        return False
    for route in block:
        path = route.path
        if visit_set and any(asn in visit_set for asn in path):
            return True
        if pair_set:
            for left, right in zip(path, path[1:]):
                if left != right and \
                        (min(left, right), max(left, right)) in pair_set:
                    return True
    return False


def origins_touching(
    prior: PropagationResult,
    pairs: Iterable[Tuple[int, int]] = (),
    visits: Iterable[int] = (),
) -> Set[int]:
    """Origins whose recorded fragments cross any of *pairs* (as an
    adjacent undirected path hop) or visit any ASN in *visits*.

    This is the exact affected set for edge removals and for policy/bag
    edits (see the module docstring); it scans the prior result's
    recorded best **and** offered blocks.
    """
    pair_set = {(min(a, b), max(a, b)) for a, b in pairs}
    visit_set = set(visits)
    if not pair_set and not visit_set:
        return set()
    touched: Set[int] = set()
    for origin, (best, offered) in prior.recorded_fragments().items():
        if _block_touches(best, pair_set, visit_set) or \
                _block_touches(offered, pair_set, visit_set):
            touched.add(origin)
    return touched


#: Link-change kinds accepted by :func:`affected_update`.
KIND_C2P = "c2p"      #: ``(customer, provider)`` endpoints, in that order
KIND_PEER = "peer"    #: peer / route-server peer edge
KIND_OTHER = "other"  #: sibling or unknown — conservative backward cone

#: ``(kind, a, b)`` — one changed undirected edge.
LinkChange = Tuple[str, int, int]


def affected_update(
    prior: PropagationResult,
    index: CSRIndex,
    origins: Iterable[int],
    records: Optional[FrozenSet[int]],
    removed: Iterable[Tuple[int, int]] = (),
    added: Iterable[LinkChange] = (),
    tainted: Iterable[int] = (),
) -> FrozenSet[int]:
    """Origins whose fragments can change under one event's batch of
    changes — the sharp affected set (soundness: module docstring).

    *prior* and *index* describe the **pre-event** state; *records* is
    the union of the recording observer sets (``None`` = everywhere);
    *removed* holds the endpoint pairs of removed edges, *added* the
    :data:`LinkChange` tuples of added edges (``KIND_C2P`` with the
    customer first), *tainted* the ASNs whose attached route-server
    communities changed.  Batching is sound because events never mix
    customer-phase edits with the peer-link maintenance that relies on
    customer cones staying fixed.
    """
    origin_list = list(origins)
    affected: Set[int] = set(
        origins_touching(prior, pairs=removed, visits=tainted))
    for kind, a, b in added:
        if kind == KIND_C2P:
            affected |= customer_cone(index, a)
            if _observer_below(index, a, records):
                affected |= affected_origins(index, {b}, origin_list)
        elif kind == KIND_PEER:
            if _observer_below(index, b, records):
                affected |= customer_cone(index, a)
            if _observer_below(index, a, records):
                affected |= customer_cone(index, b)
        else:
            affected |= affected_origins(index, {a, b}, origin_list)
    return frozenset(asn for asn in origin_list if asn in affected)


@dataclass(frozen=True)
class DeltaStats:
    """Recompute accounting for one patched result."""

    total: int       #: origins in the patched result
    recomputed: int  #: origins re-run through the kernels
    reused: int      #: origins whose baseline blocks were reused

    @property
    def recomputed_fraction(self) -> float:
        return self.recomputed / self.total if self.total else 0.0


def patched_result(
    prior: PropagationResult,
    origin_specs: Sequence[OriginSpec],
    stale: Iterable[int],
    fragments_fn: FragmentsFn,
) -> Tuple[PropagationResult, DeltaStats]:
    """A fresh result: *stale* origins recomputed, the rest reused.

    *origin_specs* is the **post-event** origin list in recording order;
    origins absent from *prior* (new announcers) are recomputed
    regardless of *stale*, origins absent from *origin_specs* silently
    drop out.  Reused ``(best, offered)`` fragments are the baseline's
    exact objects — byte-for-byte block reuse, no copies.
    """
    prior_map = prior.recorded_fragments()
    stale = set(stale)
    recompute = [spec for spec in origin_specs
                 if spec.asn in stale or spec.asn not in prior_map]
    fresh: Dict[int, Fragments] = {
        spec.asn: fragments for spec, fragments in
        zip(recompute, fragments_fn(recompute))
    }
    result = PropagationResult()
    for spec in origin_specs:
        best, offered = fresh.get(spec.asn) or prior_map[spec.asn]
        result._record_origin(spec)
        result._record_fragments(spec.asn, best, offered)
    stats = DeltaStats(total=len(origin_specs),
                       recomputed=len(recompute),
                       reused=len(origin_specs) - len(recompute))
    return result, stats


def fragments_equivalent(a: Fragments, b: Fragments) -> bool:
    """Semantic equality of two ``(best, offered)`` fragment pairs.

    RouteBlocks compare via :meth:`RouteBlock.equivalent_to` (ignoring
    batch-local ``pid``/``bag_id`` numbering); plain route lists compare
    row by row on the route fields.
    """
    for mine, theirs in zip(a, b):
        if hasattr(mine, "equivalent_to") and hasattr(theirs, "equivalent_to"):
            if not mine.equivalent_to(theirs):
                return False
            continue
        mine, theirs = list(mine), list(theirs)
        if len(mine) != len(theirs):
            return False
        for left, right in zip(mine, theirs):
            if (left.asn, left.path, left.communities, left.provenance,
                    left.learned_from) != \
                    (right.asn, right.path, right.communities,
                     right.provenance, right.learned_from):
                return False
    return True
