"""Batched multi-origin propagation: plan once, sweep whole batches.

The :class:`~repro.runtime.frontier.FrontierPropagator` pays full Python
interpreter overhead per origin — every inference sweep re-walks the
same CSR edges thousands of times, once per origin member.  This module
replaces those per-origin BFS walks with a two-part design:

* :class:`PropagationPlan` — a per-topology compilation of the CSR
  index's three phase-edge blocks into flat numpy arrays (source,
  target, sibling flag, hop cost, RS via, edge community bag) plus the
  exporter->edge expansion tables.  Built once per
  :class:`~repro.runtime.context.PipelineContext` and reused across
  every batch, so warm re-runs of a scenario only pay the sweeps.  The
  plan is a *kernel-agnostic packed schedule*: its arrays are stored in
  the narrowest safe integer dtype (int32 where the value range allows,
  int64 otherwise — see :func:`fit_dtype`) and the same schedule drives
  both this module's numpy replay loop and the fused kernel of
  :mod:`repro.runtime.compiled`.
* :class:`BatchedPropagator` — runs the three valley-free phases for a
  whole batch of origins at once over flat state arrays shaped
  ``(origins x nodes)`` (provenance class, path length, learned-from
  node, path id, community-bag id).  Each phase is a *level-synchronous*
  replay of the frontier engine's bucket queue: at bucket level ``L``
  every origin's exporters with a pending pop at ``L`` export
  simultaneously, candidate relaxations are resolved with vectorized
  scatter-min reductions, and newly adopted routes are scheduled into
  later levels.  A full batch therefore costs a few dozen vectorized
  sweeps per phase instead of ``origins x edges`` Python iterations.

Exactness
---------
The sweep reproduces the frontier engine bit-for-bit: best routes
(provenance, AS path, communities, learned-from), the ``touched``
discovery order and the candidate offers recorded for
alternative-tracking observers.  Three mechanisms carry the proof
obligations the per-origin bucket queue discharges implicitly:

* adopted *paths are snapshotted at export time* (cons cells allocated
  per adoption, exactly like the frontier's
  :class:`~repro.runtime.stores.PathStore`), never reconstructed from
  final state — sibling links can class-improve an exporter *after*
  neighbours adopted its earlier, shorter announcement, so transient
  exports are part of the semantics;
* bucket pushes are replayed literally (per-level push lists, drops of
  already-drained buckets, the exported-state guard as a dirty flag),
  so re-export timing matches pop for pop;
* optimistic rounds are *transactional*: when an adoption lands on a
  queue entry that pops later in the same bucket drain — the frontier's
  sequential pop would have seen the update — the round detects the
  contaminated queue position per origin row, commits only the pops
  before it, and re-drains the rest against the updated state.  Normal
  rounds never split; only same-bucket sibling chains do, and only for
  the affected origin rows.

The cross-backend differential suite
(``tests/runtime/test_batched.py``, ``tests/test_goldens.py``,
``benchmarks/bench_backend_matrix.py``) verifies exact equality on
every registered scenario (tiny and bench sizes) and on randomized
adjacency sets and generator configurations.

numpy is required; import :func:`numpy_available` to gate callers (the
``frontier`` backend remains the dependency-free default).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.runtime.frontier import (
    CLASS_CUSTOMER,
    CLASS_PEER,
    CLASS_PROVIDER,
    REL_SIBLING,
    UNSET,
    Offer,
    OriginState,
)
from repro.runtime.stores import CommunityBagStore

try:  # gated dependency: the frontier backend never needs numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

#: Scatter-min filler, larger than any candidate key or index.
_HUGE = (1 << 62)

#: Largest value an int32 plane/schedule cell can hold.
INT32_MAX = (1 << 31) - 1


class PathIdOverflow(RuntimeError):
    """A path-cell id outgrew the narrow plane dtype in use.

    Raised by :meth:`BatchedPathStore.alloc` when the store was given an
    ``id_limit`` (set by callers that keep path ids in int32 planes) and
    allocation would exceed it.  Callers re-run the batch with int64
    planes — propagation is deterministic, so the retry is bit-identical.
    """


def numpy_available() -> bool:
    """Whether the batched backend can run in this interpreter."""
    return np is not None


def fit_dtype(max_value: int):
    """The narrowest schedule/plane dtype that can hold *max_value*.

    This is the int32/int64 promotion rule of the packed schedule: a
    value range that fits int32 (``<= 2**31 - 1``) is stored narrow,
    anything larger — 4-byte ASNs above 2**31 in ``via``/ASN arrays,
    route keys on topologies beyond ~2900 nodes — falls back to int64.
    """
    _require_numpy()
    return np.int32 if 0 <= max_value <= INT32_MAX else np.int64


def _require_numpy():
    if np is None:
        raise RuntimeError(
            "the batched propagation backend requires numpy; "
            "install numpy or select backend='frontier'")
    return np


class PhasePlan:
    """One phase's edges as flat numpy arrays, in CSR order.

    ``key_tail`` pre-packs each edge's contribution to the candidate
    route key (see :class:`PropagationPlan` for the packing): the hop
    cost in the length term plus the exporter id in the tie-break term,
    so building a round's candidate keys is one gather plus one
    multiply-add over the exporter prefixes.
    """

    __slots__ = ("indptr", "deg", "src", "dst", "sib", "has_sib", "hop",
                 "via", "has_via", "bag", "has_bag", "key_tail",
                 "num_edges")

    def __init__(self, indptr, src, dst, sib, hop, via, bag,
                 key_tail) -> None:
        self.indptr = indptr  #: per-node out-edge slice starts
        self.deg = indptr[1:] - indptr[:-1]  #: out-degree per node
        self.src = src        #: exporting node per edge
        self.dst = dst        #: importing node per edge
        self.sib = sib        #: True where the edge is a sibling link
        self.has_sib = bool(sib.any())
        self.hop = hop        #: path-length cost (2 for opaque-RS edges)
        self.via = via        #: RS ASN inserted in the path, -1 when none
        self.has_via = bool((via >= 0).any())
        self.bag = bag        #: community-bag id attached on the edge
        self.has_bag = bool((bag != 0).any())
        self.key_tail = key_tail  #: hop * node_span + src + 1, per edge
        self.num_edges = len(dst)

    @classmethod
    def from_phase_edges(cls, edges, num_nodes: int) -> "PhasePlan":
        """Pack one phase's edges, each array in its narrowest safe dtype.

        ``indptr``/``src``/``dst``/``hop``/``key_tail`` are bounded by
        the node and edge counts and the key-tail packing; ``via`` holds
        ASNs (4-byte ASNs above ``2**31`` force int64) and ``bag`` holds
        interned bag ids.  Mixed int32/int64 arithmetic downstream
        promotes to int64, so narrowing is free for exactness.
        """
        _require_numpy()
        num_edges = len(edges.targets)
        idx_dtype = fit_dtype(max(num_nodes + 1, num_edges))
        indptr = np.asarray(edges.indptr, dtype=idx_dtype)
        dst = np.asarray(edges.targets, dtype=idx_dtype)
        rels = np.asarray(edges.rels, dtype=np.int64)
        vias = edges.vias
        via = np.asarray(vias, dtype=fit_dtype(max(max(vias, default=0), 0)))
        bags = edges.bags
        bag = np.asarray(bags, dtype=fit_dtype(max(max(bags, default=0), 0)))
        src = np.repeat(np.arange(num_nodes, dtype=idx_dtype),
                        np.diff(indptr))
        hop = np.where(via >= 0, 2, 1).astype(idx_dtype)
        tail_dtype = fit_dtype(2 * (num_nodes + 1) + num_nodes + 1)
        key_tail = (hop.astype(np.int64) * (num_nodes + 1)
                    + src + 1).astype(tail_dtype)
        return cls(indptr=indptr, src=src, dst=dst, sib=rels == REL_SIBLING,
                   hop=hop, via=via, bag=bag, key_tail=key_tail)


class PropagationPlan:
    """The per-topology compiled edge schedule of the batched backend.

    Owns nothing mutable: one plan serves any number of concurrent
    batches over the same :class:`~repro.runtime.csr.CSRIndex`.

    Route preference — better class, then shorter path, then lower
    exporting node id (ids ascend with ASNs) — is packed into a single
    int64 **route key** ``(cls * max_len + length) * node_span + frm +
    1`` (``node_span = nodes + 1`` so a missing learned-from of -1
    packs cleanly; ``max_len`` bounds any AS-path length in the
    topology).  One integer compare is then the full lexicographic
    acceptance rule, and class/length/exporter are recovered from a key
    by division, so the sweeps only materialise them for the few
    candidates that win or get recorded.
    """

    __slots__ = ("num_nodes", "node_span", "max_len", "unset_key",
                 "node_asns", "customer", "peer", "provider")

    def __init__(self, index) -> None:
        _require_numpy()
        self.num_nodes = index.num_nodes
        #: tie-break packing span (node ids shifted by one).
        self.node_span = index.num_nodes + 1
        #: exclusive bound on any AS-path length in this topology
        #: (origin counts 1, each hop adds 1, opaque RSes add 1 more).
        self.max_len = 2 * index.num_nodes + 3
        #: packed key of an untouched node (UNSET class, length 0,
        #: learned-from -1) — strictly above every real route key.
        self.unset_key = UNSET * self.max_len * self.node_span
        self.node_asns = np.asarray(index.node_asns, dtype=np.int64)
        self.customer = PhasePlan.from_phase_edges(
            index.customer_edges, index.num_nodes)
        self.peer = PhasePlan.from_phase_edges(
            index.peer_edges, index.num_nodes)
        self.provider = PhasePlan.from_phase_edges(
            index.provider_edges, index.num_nodes)

    def key_plane_dtype(self):
        """The narrowest dtype a route-key plane over this plan needs.

        int32 whenever the whole packed-key range (``unset_key`` is its
        exclusive top) fits — true up to ~2900 nodes — int64 beyond.
        The compiled backend sizes its planes with this; the batched
        replay keeps int64 planes unconditionally.
        """
        return fit_dtype(self.unset_key)

    def summary(self) -> Dict[str, int]:
        """Size statistics (benchmarks and reports)."""
        return {
            "nodes": self.num_nodes,
            "customer_phase_edges": self.customer.num_edges,
            "peer_phase_edges": self.peer.num_edges,
            "provider_phase_edges": self.provider.num_edges,
            "key_plane_bits": 8 * np.dtype(self.key_plane_dtype()).itemsize,
        }

    def __repr__(self) -> str:
        edges = (self.customer.num_edges + self.peer.num_edges
                 + self.provider.num_edges)
        return f"PropagationPlan({self.num_nodes} nodes, {edges} phase edges)"


class BatchedPathStore:
    """Cons-cell path store with vectorized allocation.

    Same structure sharing as :class:`~repro.runtime.stores.PathStore`
    (cells are ``(head ASN, parent id)``), but cells for a whole
    relaxation round are allocated in one append and the backing buffers
    are numpy arrays.  Materialisation converts to plain int tuples with
    shared-suffix memoisation; because a parent cell is always allocated
    before its children (ids ascend along every chain), the memo lets a
    store shared across origin batches resolve already-walked suffixes
    without re-walking them.

    ``id_limit`` is the int32 overflow guard: callers that keep path ids
    in narrow planes pass ``INT32_MAX`` and :meth:`alloc` raises
    :class:`PathIdOverflow` instead of silently wrapping.
    """

    __slots__ = ("_heads", "_parents", "_size", "_memo", "id_limit")

    def __init__(self, capacity: int = 1024,
                 id_limit: Optional[int] = None) -> None:
        _require_numpy()
        self._heads = np.empty(capacity, dtype=np.int64)
        self._parents = np.empty(capacity, dtype=np.int64)
        self._size = 0
        self._memo: Dict[int, Tuple[int, ...]] = {}
        self.id_limit = id_limit

    def reset(self) -> None:
        """Drop every cell and the memo (ids become invalid)."""
        self._size = 0
        self._memo = {}

    def alloc(self, heads, parents):
        """Append one cell per (head, parent) pair; returns the new ids."""
        count = len(heads)
        need = self._size + count
        if self.id_limit is not None and need > self.id_limit:
            raise PathIdOverflow(
                f"path store would grow to {need} cells, beyond the "
                f"narrow-plane id limit {self.id_limit}")
        if need > len(self._heads):
            capacity = max(need, 2 * len(self._heads))
            for name in ("_heads", "_parents"):
                grown = np.empty(capacity, dtype=np.int64)
                grown[:self._size] = getattr(self, name)[:self._size]
                setattr(self, name, grown)
        ids = np.arange(self._size, need, dtype=np.int64)
        self._heads[self._size:need] = heads
        self._parents[self._size:need] = parents
        self._size = need
        return ids

    def materialize_many(self, pids) -> None:
        """Bulk-materialise *pids* into the memo, sharing suffixes.

        Requested ids are visited in ascending order; since every cell's
        parent has a smaller id, a path materialises as one cons onto
        its parent's already-memoised tuple whenever the parent was
        requested too (or walked by an earlier batch) — the common case
        when observers' paths toward one origin share their tails.  The
        rare unseen parent falls back to the scalar chain walk.
        Subsequent :meth:`materialize` calls for these ids are
        dictionary hits.
        """
        pids = np.unique(np.asarray(pids, dtype=np.int64))
        pids = pids[pids >= 0]
        if len(pids) == 0:
            return
        memo = self._memo
        heads = self._heads[pids].tolist()
        parents = self._parents[pids].tolist()
        scalar = self.materialize
        for pid, head, parent in zip(pids.tolist(), heads, parents):
            if pid in memo:
                continue
            if parent < 0:
                memo[pid] = (head,)
                continue
            suffix = memo.get(parent)
            if suffix is None:
                suffix = scalar(parent)
            memo[pid] = (head,) + suffix

    def materialize(self, pid: int) -> Tuple[int, ...]:
        """The tuple form of path *pid* (memoised, shared suffixes)."""
        pid = int(pid)
        if pid < 0:
            return ()
        memo = self._memo
        cached = memo.get(pid)
        if cached is not None:
            return cached
        chain: List[int] = []
        cursor = pid
        while cursor >= 0 and cursor not in memo:
            chain.append(cursor)
            cursor = int(self._parents[cursor])
        suffix: Tuple[int, ...] = memo[cursor] if cursor >= 0 else ()
        heads = self._heads
        for cell in reversed(chain):
            suffix = (int(heads[cell]),) + suffix
            memo[cell] = suffix
        return suffix

    def columns(self):
        """The live ``(heads, parents)`` cell columns (array views).

        Feed for the vectorized chain walk
        (:func:`repro.runtime.fragments.walk_paths`), which materialises
        every recorded path of a batch in one pass instead of N scalar
        :meth:`materialize` calls.
        """
        return self._heads[:self._size], self._parents[:self._size]

    def __len__(self) -> int:
        return self._size


class LazyRows:
    """Per-row results materialised once, on first access.

    Raw sweeps (state computation only — the unit the backend matrix
    times) never touch the assembled rows, so the argsort/``tolist``
    result assembly is deferred until a consumer actually reads a row;
    full propagation pays it exactly once per batch, as before.
    """

    __slots__ = ("_build", "_rows", "_length")

    def __init__(self, num_rows: int, build) -> None:
        self._build = build
        self._rows = None
        self._length = num_rows

    def _materialise(self):
        if self._rows is None:
            self._rows = self._build()
            self._build = None
        return self._rows

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, row):
        return self._materialise()[row]

    def __iter__(self):
        return iter(self._materialise())


class BatchState:
    """The outcome of one batch run, row-per-origin.

    ``origin_state(row)`` exposes each origin's result through the same
    :class:`~repro.runtime.frontier.OriginState` contract the frontier
    engine uses (``touched`` converted to a plain list); ``paths`` is
    the store whose ``materialize`` resolves the state's path ids.
    ``touched_nodes(row, mask)`` is the materialisation fast path: the
    discovery-ordered touched array filtered to a recorded-node mask
    without a Python pass over every routed node.  ``touched`` and
    ``offers`` are :class:`LazyRows` (assembled on first row access);
    ``offer_pids`` reads the raw offer path ids without assembling any
    per-row tuples.
    """

    __slots__ = ("paths", "cls", "length", "frm", "pid", "bag",
                 "touched", "offers", "_offer_chunks")

    def __init__(self, paths, cls, length, frm, pid, bag,
                 touched, offers, offer_chunks=()) -> None:
        self.paths = paths
        self.cls = cls
        self.length = length
        self.frm = frm
        self.pid = pid
        self.bag = bag
        self.touched = touched  #: per-row discovery-ordered node arrays
        self.offers = offers
        self._offer_chunks = offer_chunks

    @property
    def num_origins(self) -> int:
        return len(self.touched)

    def offer_pids(self):
        """All offered path ids across rows, in no particular order —
        the bulk-materialisation feed (order-insensitive by contract)."""
        if not self._offer_chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [chunk[5] for chunk in self._offer_chunks])

    def touched_array(self, row: int, mask=None):
        """Touched node ids of *row* in discovery order as an array,
        optionally restricted to a boolean node *mask* — the columnar
        feed for :class:`~repro.runtime.fragments.RouteBlock` building."""
        touched = self.touched[row]
        if mask is not None:
            touched = touched[mask[touched]]
        return touched

    def touched_nodes(self, row: int, mask=None) -> List[int]:
        """Touched node ids of *row* in discovery order, optionally
        restricted to a boolean node *mask*."""
        return self.touched_array(row, mask).tolist()

    def offer_columns(self):
        """Offers as batch-wide column arrays plus per-row bounds.

        Returns ``((to, cls, len, frm, pid, bag), bounds)`` where the six
        parallel arrays are sorted stably by origin row — the exact
        recording order :func:`per_origin_offers` produces — and
        ``bounds`` holds the exclusive per-row end offsets
        (``bounds[row]:bounds[row + 1]`` slices row *row*).  This is the
        columnar counterpart of :attr:`offers`: no tuples, no per-row
        Python conversion.
        """
        bounds = np.zeros(self.num_origins + 1, dtype=np.int64)
        if not self._offer_chunks:
            empty = np.empty(0, dtype=np.int64)
            return (empty,) * 6, bounds
        if len(self._offer_chunks) == 1:
            columns = list(self._offer_chunks[0])
        else:
            columns = [
                np.concatenate([chunk[col] for chunk in self._offer_chunks])
                for col in range(7)]
        rows = np.asarray(columns[0])
        order = np.argsort(rows, kind="stable")
        np.cumsum(np.bincount(rows, minlength=self.num_origins),
                  out=bounds[1:])
        return tuple(np.asarray(column)[order]
                     for column in columns[1:]), bounds

    def origin_state(self, row: int) -> OriginState:
        """Row *row* as an :class:`OriginState` (arrays are row views)."""
        return OriginState(self.cls[row], self.length[row], self.frm[row],
                           self.pid[row], self.bag[row],
                           self.touched_nodes(row), self.offers[row])


class UnionTable:
    """Dense (bag, edge-bag) -> union-bag memo, grown on demand.

    The :class:`~repro.runtime.stores.CommunityBagStore`'s own dict memo
    is only consulted for missing pairs, so hot rounds never sort or
    hash.  Shared by the batched and compiled replay loops.
    """

    __slots__ = ("_bags", "_table")

    def __init__(self, bags: CommunityBagStore) -> None:
        _require_numpy()
        self._bags = bags
        self._table = np.full((1, 1), -1, dtype=np.int64)

    def union_many(self, left, right):
        """Vectorized community-bag union of parallel id arrays."""
        table = self._table
        need_rows = int(left.max()) + 1
        need_cols = int(right.max()) + 1
        if need_rows > table.shape[0] or need_cols > table.shape[1]:
            grown = np.full((max(need_rows, 2 * table.shape[0]),
                             max(need_cols, 2 * table.shape[1])),
                            -1, dtype=np.int64)
            grown[:table.shape[0], :table.shape[1]] = table
            self._table = table = grown
        merged = table[left, right]
        missing = np.nonzero(merged < 0)[0]
        if len(missing):
            columns = table.shape[1]
            pair, inverse = np.unique(
                left[missing].astype(np.int64) * columns + right[missing],
                return_inverse=True)
            union = self._bags.union
            values = np.fromiter(
                (union(int(p) // columns, int(p) % columns) for p in pair),
                dtype=np.int64, count=len(pair))
            table[pair // columns, pair % columns] = values
            merged[missing] = values[inverse]
        return merged


class _Arrays:
    """Per-batch mutable sweep state (origins x nodes).

    *dtype* sizes the route-key/pid/bag planes: the batched replay keeps
    int64 unconditionally; the compiled backend passes the plan's
    :meth:`~PropagationPlan.key_plane_dtype` (int32 where the key range
    allows, with :class:`PathIdOverflow` guarding the pid plane).
    Scatter scratch stays int64 — the packed (key, position) reduction
    values exceed int32 regardless of plane width.
    """

    __slots__ = ("key", "pid", "bag", "dirty",
                 "key_f", "pid_f", "bag_f", "dirty_f",
                 "work_key", "work_touch", "work_pos")

    def __init__(self, num_origins: int, num_nodes: int,
                 unset_key: int, dtype=None) -> None:
        shape = (num_origins, num_nodes)
        dtype = np.int64 if dtype is None else dtype
        #: packed route key per node (see :class:`PropagationPlan`) —
        #: the single comparison plane; provenance class, path length
        #: and learned-from are recovered from it by division.
        self.key = np.full(shape, unset_key, dtype=dtype)
        self.pid = np.full(shape, -1, dtype=dtype)
        self.bag = np.zeros(shape, dtype=dtype)
        #: state changed since the node's last export (per origin) —
        #: the vectorized form of the frontier's exported-key guard.
        self.dirty = np.zeros(shape, dtype=bool)
        # Flat views of the planes: the sweeps index with precomputed
        # ``row * nodes + node`` offsets, which is markedly faster than
        # two-array fancy indexing on the 2D planes.
        self.key_f = self.key.ravel()
        self.pid_f = self.pid.ravel()
        self.bag_f = self.bag.ravel()
        self.dirty_f = self.dirty.ravel()
        # flat (origins*nodes) scratch for scatter-min winner selection
        # and queue-position lookup.
        flat = num_origins * num_nodes
        self.work_key = np.empty(flat, dtype=np.int64)
        self.work_touch = np.empty(flat, dtype=np.int64)
        self.work_pos = np.full(flat, -1, dtype=np.int64)


class BatchedPropagator:
    """Replay the compiled plan for a whole batch of origins at once."""

    def __init__(self, plan: PropagationPlan, bags: CommunityBagStore) -> None:
        _require_numpy()
        self._plan = plan
        self._bags = bags
        self._unions = UnionTable(bags)
        # Growable identity scratch serving the per-round ``arange``
        # needs (ragged expansion offsets, queue positions, tie-break
        # ranks).  The buffer is only ever *replaced* on growth, never
        # written, so outstanding slices stay valid.
        self._idx_scratch = np.empty(0, dtype=np.int64)

    def _identity(self, n: int):
        """``arange(n)`` served from the cached scratch buffer."""
        if len(self._idx_scratch) < n:
            self._idx_scratch = np.arange(
                max(n, 2 * len(self._idx_scratch)), dtype=np.int64)
        return self._idx_scratch[:n]

    # -- construction hooks (overridden by the compiled backend) -------------

    def _make_paths(self, num_origins: int) -> BatchedPathStore:
        """A fresh per-batch path store (compiled adds an id limit)."""
        return BatchedPathStore(capacity=max(1024, 2 * num_origins))

    def _make_state(self, num_origins: int) -> _Arrays:
        """Fresh per-batch planes (compiled narrows the dtype)."""
        return _Arrays(num_origins, self._plan.num_nodes,
                       self._plan.unset_key)

    # -- public API ----------------------------------------------------------

    def run_batch(
        self,
        origin_nodes: Sequence[int],
        origin_bags: Sequence[int],
        alt_nodes: FrozenSet[int] = frozenset(),
    ) -> BatchState:
        """Propagate every origin in the batch; rows follow input order."""
        plan = self._plan
        num_nodes = plan.num_nodes
        num_origins = len(origin_nodes)
        paths = self._make_paths(num_origins)
        state = self._make_state(num_origins)

        rows = np.arange(num_origins, dtype=np.int64)
        onodes = np.asarray(list(origin_nodes), dtype=np.int64)
        # Origin route: class ORIGIN (0), length 1, learned-from -1.
        state.key[rows, onodes] = plan.node_span
        state.pid[rows, onodes] = paths.alloc(
            plan.node_asns[onodes], np.full(num_origins, -1, dtype=np.int64))
        state.bag[rows, onodes] = np.asarray(
            list(origin_bags), dtype=np.int64)

        alt_mask = np.zeros(num_nodes, dtype=bool)
        for node in alt_nodes:
            alt_mask[node] = True

        # (row, node) chunks in adoption order / offer chunks in offer order.
        touched_chunks: List[Tuple] = []
        offer_chunks: List[Tuple] = []

        # Phase 1: customer routes climb provider chains (and siblings).
        # Seed chunks carry a third element marking them pre-sorted.
        state.dirty[rows, onodes] = True
        self._sweep(plan.customer, CLASS_CUSTOMER, CLASS_CUSTOMER, state,
                    {1: [(rows, onodes, True)]}, alt_mask, touched_chunks,
                    offer_chunks, paths)

        # Phase 2: one staged hop across peering links.
        self._peer_hop(plan.peer, state, alt_mask, touched_chunks,
                       offer_chunks, paths)

        # Phase 3: everything descends provider->customer chains.  The
        # frontier engine reseeds its queue with every touched node and
        # an empty exported-guard, which is exactly "all routed nodes
        # dirty, pushed at their current length".
        routed_rows, routed_nodes = np.nonzero(state.key != plan.unset_key)
        state.dirty[:] = False
        state.dirty[routed_rows, routed_nodes] = True
        lengths = (state.key[routed_rows, routed_nodes]
                   // plan.node_span) % plan.max_len
        order = np.argsort(lengths, kind="stable")
        levels, starts = np.unique(lengths[order], return_index=True)
        bounds = list(starts[1:]) + [len(order)]
        seeds = {
            int(level): [(routed_rows[order[start:end]],
                          routed_nodes[order[start:end]], True)]
            for level, start, end in zip(levels, starts, bounds)}
        self._sweep(plan.provider, CLASS_PROVIDER, CLASS_PROVIDER, state,
                    seeds, alt_mask, touched_chunks, offer_chunks, paths)

        # The class/length/learned-from planes are unpacked from the key
        # plane in three sequential passes — far cheaper than scattering
        # them per adoption during the sweeps.
        cls = state.key // (plan.node_span * plan.max_len)
        length = (state.key // plan.node_span) % plan.max_len
        frm = state.key % plan.node_span - 1
        return BatchState(
            paths, cls, length, frm, state.pid, state.bag,
            touched=LazyRows(num_origins, lambda: per_origin_touched(
                num_origins, onodes, touched_chunks)),
            offers=LazyRows(num_origins, lambda: per_origin_offers(
                num_origins, offer_chunks)),
            offer_chunks=offer_chunks,
        )

    # -- phases --------------------------------------------------------------

    def _sweep(self, phase: PhasePlan, base_class: int, export_limit: int,
               state: _Arrays, pushes: Dict[int, List[Tuple]], alt_mask,
               touched_chunks, offer_chunks,
               paths: BatchedPathStore) -> None:
        """Level-synchronous bucket-queue replay of one BFS phase.

        *pushes* maps bucket level -> pending (rows, nodes) push chunks,
        mirroring the frontier's bucket lists exactly: the outer loop
        drains levels in ascending order, the first sub-round of a level
        processes its accumulated pushes in sorted order (the frontier
        sorts a bucket before draining it), and adoptions made *at* the
        draining level re-enter it as append sub-rounds in push order.
        Pushes below the draining level land in an already-drained
        bucket and are dropped, again exactly like the frontier — such
        nodes re-export only if another pending push reaches them.
        """
        num_nodes = self._plan.num_nodes
        while pushes:
            level = min(pushes)
            chunks = pushes.pop(level)
            first_round = True
            while chunks:
                exp_rows = np.concatenate([chunk[0] for chunk in chunks]) \
                    if len(chunks) > 1 else chunks[0][0]
                exp_nodes = np.concatenate([chunk[1] for chunk in chunks]) \
                    if len(chunks) > 1 else chunks[0][1]
                flat = exp_rows * num_nodes + exp_nodes
                if first_round:
                    # Bucket drain order: sorted, duplicates popped
                    # once.  Seed queues (single chunk, built row-major)
                    # are already sorted and unique.
                    first_round = False
                    presorted = len(chunks) == 1 and len(chunks[0]) > 2
                    if not presorted:
                        order = np.argsort(flat, kind="stable")
                        keep = np.ones(len(order), dtype=bool)
                        keep[1:] = flat[order[1:]] != flat[order[:-1]]
                        order = order[keep]
                        exp_rows = exp_rows[order]
                        exp_nodes = exp_nodes[order]
                else:
                    # Mid-drain appends pop in push order.
                    _vals, first = np.unique(flat, return_index=True)
                    order = np.sort(first)
                    exp_rows = exp_rows[order]
                    exp_nodes = exp_nodes[order]
                chunks = self._drain_queue(
                    phase, base_class, export_limit, state, level,
                    exp_rows, exp_nodes, pushes, alt_mask,
                    touched_chunks, offer_chunks, paths)

    def _drain_queue(self, phase: PhasePlan, base_class: int,
                     export_limit: int, state: _Arrays, level: int,
                     queue_rows, queue_nodes, pushes, alt_mask,
                     touched_chunks, offer_chunks,
                     paths: BatchedPathStore) -> List[Tuple]:
        """Pop one level sub-round's queue; returns same-level re-pushes.

        Pops are optimistically batched: all queue entries export their
        current state in one vectorized round.  That is exact unless an
        adoption lands on a queue entry that pops *later in this very
        queue* — the frontier's sequential drain would show it the
        updated state.  `_resolve` detects exactly that and reports, per
        origin row, the first contaminated queue position; the drain
        commits each row's pops before its cut and re-gathers only the
        contaminated rows' remainders with the updates applied.  Origins
        are independent, so a sibling chain inside one row's bucket
        never re-processes the rest of the batch.  Normal topologies
        never split at all.
        """
        plan = self._plan
        num_nodes = plan.num_nodes
        span = plan.node_span
        max_len = plan.max_len
        # Export gate as a key threshold: class <= limit is one compare.
        gate_key = (export_limit + 1) * max_len * span
        work_pos = state.work_pos
        same_level: List[Tuple] = []
        remaining = self._identity(len(queue_rows))
        queue_flat = queue_rows * num_nodes + queue_nodes
        while len(remaining):
            rem_flat = queue_flat[remaining]
            # A pop exports only when the state changed since the
            # node's last export (the exported-key guard); a gated
            # pop (class above the export limit) consumes the push
            # without exporting or recording.
            export = state.dirty_f[rem_flat] & (
                state.key_f[rem_flat] < gate_key)
            exp_idx = np.nonzero(export)[0]
            if len(exp_idx) == 0:
                break
            exp_flat = rem_flat[exp_idx]
            exp_nodes = queue_nodes[remaining[exp_idx]]
            counts = phase.deg[exp_nodes]
            total = int(counts.sum())
            # Exporting records the guard key: clean before resolving,
            # so an adoption landing back on an already-popped exporter
            # correctly re-dirties it.
            state.dirty_f[exp_flat] = False
            if total == 0:
                break
            # Queue positions (relative to the current remainder) for
            # contamination detection; reset after the round.
            work_pos[rem_flat] = self._identity(len(rem_flat))
            # Ragged expansion: one candidate per (exporter, edge), in
            # (row, node, edge) order — the frontier's pop order.
            ends = np.cumsum(counts)
            edges = self._identity(total) + np.repeat(
                phase.indptr[exp_nodes] - ends + counts, counts)
            # Candidate keys from the exporters' packed keys: siblings
            # propagate the exporter's class, everything else the
            # phase's base class; the edge tail adds hop and tie-break.
            # Sibling edges are rare, so the class override is a sparse
            # fix-up instead of a full select.
            exp_key = state.key_f[exp_flat]
            normal = base_class * max_len + (exp_key // span) % max_len
            # Pre-multiply on the compact exporter side: one fewer
            # full-candidate-size pass per round.
            key = np.repeat(normal * span, counts) + phase.key_tail[edges]
            if phase.has_sib:
                sib = np.nonzero(phase.sib[edges])[0]
                if len(sib):
                    src = np.searchsorted(ends, sib, side="right")
                    key[sib] += (exp_key[src] // span
                                 - normal[src]) * span
            cand_to = phase.dst[edges]
            outcome = self._resolve(
                state, phase,
                flat=np.repeat(exp_flat - exp_nodes, counts) + cand_to,
                cand_to=cand_to,
                edges=edges,
                key=key,
                alt_mask=alt_mask,
                touched_chunks=touched_chunks,
                offer_chunks=offer_chunks,
                paths=paths,
                mark_dirty=True,
                in_queue=True,
            )
            work_pos[rem_flat] = -1
            row_cut, adopted = outcome
            if adopted is not None:
                adopted_rows, adopted_nodes, adopted_len = adopted
                # Push per target bucket: one stable counting split by
                # adopted length instead of an equality scan per level.
                keep = np.nonzero(adopted_len >= level)[0]
                if len(keep) < len(adopted_len):
                    adopted_rows = adopted_rows[keep]
                    adopted_nodes = adopted_nodes[keep]
                    adopted_len = adopted_len[keep]
                if len(adopted_len):
                    # Lengths are far below the uint16 range on any
                    # int32-keyed plan; the narrower radix sort halves
                    # the stable-sort passes.
                    sort_len = (adopted_len.astype(np.uint16)
                                if max_len <= 65535 else adopted_len)
                    order = np.argsort(sort_len, kind="stable")
                    sorted_len = adopted_len[order]
                    run_edge = np.empty(len(sorted_len), dtype=bool)
                    run_edge[0] = True
                    run_edge[1:] = sorted_len[1:] != sorted_len[:-1]
                    starts = np.nonzero(run_edge)[0]
                    bounds = list(starts[1:]) + [len(order)]
                    for start, end in zip(starts, bounds):
                        target_level = int(sorted_len[start])
                        chunk = (adopted_rows[order[start:end]],
                                 adopted_nodes[order[start:end]])
                        if target_level == level:
                            same_level.append(chunk)
                        else:
                            pushes.setdefault(target_level, []).append(chunk)
            if row_cut is None:
                break
            # Pops at or behind their row's cut did not happen: restore
            # their pending export state and re-drain only those rows.
            stale = exp_idx[
                exp_idx >= row_cut[queue_rows[remaining[exp_idx]]]]
            state.dirty_f[rem_flat[stale]] = True
            remaining = remaining[
                self._identity(len(remaining))
                >= row_cut[queue_rows[remaining]]]
        return same_level

    def _peer_hop(self, phase: PhasePlan, state: _Arrays, alt_mask,
                  touched_chunks, offer_chunks,
                  paths: BatchedPathStore) -> None:
        """Simultaneous single-hop peer exchange (phase 2).

        Every node holding an own/customer route offers its *pre-phase*
        state; because the exporter gather happens before any adoption
        is applied, one `_resolve` call is exactly the frontier's staged
        update.
        """
        plan = self._plan
        exp_rows, exp_nodes = np.nonzero(
            state.key < (CLASS_CUSTOMER + 1) * plan.max_len * plan.node_span)
        if len(exp_rows) == 0:
            return
        counts = phase.deg[exp_nodes]
        total = int(counts.sum())
        if total == 0:
            return
        ends = np.cumsum(counts)
        edges = self._identity(total) + np.repeat(
            phase.indptr[exp_nodes] - ends + counts, counts)
        exp_flat = exp_rows * plan.num_nodes + exp_nodes
        prefix = CLASS_PEER * plan.max_len + (
            state.key_f[exp_flat] // plan.node_span) % plan.max_len
        cand_to = phase.dst[edges]
        self._resolve(
            state, phase,
            flat=np.repeat(exp_flat - exp_nodes, counts) + cand_to,
            cand_to=cand_to,
            edges=edges,
            key=np.repeat(prefix * plan.node_span, counts)
            + phase.key_tail[edges],
            alt_mask=alt_mask,
            touched_chunks=touched_chunks,
            offer_chunks=offer_chunks,
            paths=paths,
            mark_dirty=False,
        )

    # -- candidate resolution -------------------------------------------------

    def _resolve(self, state: _Arrays, phase: PhasePlan, flat,
                 cand_to, edges, key, alt_mask, touched_chunks,
                 offer_chunks, paths: BatchedPathStore, mark_dirty: bool,
                 in_queue: bool = False,
                 ) -> Tuple[Optional[object], Optional[Tuple]]:
        """Resolve one round of candidates against the current state.

        Reproduces the frontier's sequential acceptance exactly: per
        target the winning candidate is the minimum packed route *key*
        (class, length, exporter — see :class:`PropagationPlan`) with
        ties broken by earliest candidate (= CSR edge order), which is
        then adopted only if strictly below the target's current key.
        Offers into alternative-tracking nodes are recorded for every
        candidate, winner or not, in candidate order.

        With *in_queue* (bucket-drain rounds, where ``work_pos`` holds
        the exporters' queue positions), an adoption landing on a queue
        entry *behind* its exporter is detected as contamination: the
        frontier's sequential drain would have shown that entry the
        update before it popped.  The round is then truncated, per
        origin row, to the candidates of that row's uncontaminated
        queue prefix.  Returns ``(row_cut, adoptions)``: the per-row
        queue positions the caller must re-drain from (None when every
        row committed fully) and the applied adoptions as ``(rows,
        nodes, lengths)`` arrays.
        """
        plan = self._plan
        num_nodes = plan.num_nodes
        span = plan.node_span
        max_len = plan.max_len
        cur_key = state.key_f[flat]
        better = key < cur_key
        offer = alt_mask[cand_to]

        # Compact to the candidates that can matter before any scatter
        # machinery: a candidate that neither improves its target nor
        # lands on an alternative-tracking observer can never be
        # adopted, recorded or touch-order relevant (the per-target
        # minimum key is a `better` key whenever any better candidate
        # exists).  Original positions are kept for ordering.
        active = np.nonzero(better | offer)[0]
        if len(active) == 0:
            return None, None
        idx = active
        (cand_to, edges, key, flat, better, offer, cur_key) = (
            cand_to[active], edges[active], key[active],
            flat[active], better[active], offer[active], cur_key[active])
        cand_rows = (flat - cand_to) // num_nodes

        row_cut = None
        if in_queue:
            tgt_pos = state.work_pos[flat]
            # Exporter queue positions, recovered from the key's
            # tie-break term (the exporter is itself a queue member).
            src_pos = state.work_pos[flat - cand_to + key % span - 1]
            conflict = better & (tgt_pos > src_pos)
            if conflict.any():
                row_cut = np.full(state.key.shape[0], _HUGE, dtype=np.int64)
                np.minimum.at(row_cut, cand_rows[conflict],
                              tgt_pos[conflict])
                keep = src_pos < row_cut[cand_rows]
                (cand_rows, cand_to, edges, key, flat, better, offer,
                 cur_key, idx) = (
                    cand_rows[keep], cand_to[keep], edges[keep], key[keep],
                    flat[keep], better[keep], offer[keep], cur_key[keep],
                    idx[keep])
                if len(cand_rows) == 0:
                    return row_cut, None

        # Scatter-min winner per (origin, target): one reduction over
        # (key, candidate position) packed into a single int64, so the
        # earliest candidate wins key ties (= CSR edge order).  Stale
        # scratch entries are reset only at the touched slots.
        num = int(idx[-1]) + 1
        work_key = state.work_key
        if int(key.max()) < _HUGE // max(num, 1):
            # Compute the packed reduction value in int64 regardless of
            # the key plane's width — int32 keys times the candidate
            # count overflow 32 bits long before they threaten _HUGE.
            combined = key.astype(np.int64, copy=False) * num + idx
            work_key[flat] = _HUGE
            np.minimum.at(work_key, flat, combined)
            winner = combined == work_key[flat]
        else:  # pragma: no cover - needs astronomically large topologies
            work_key[flat] = _HUGE
            np.minimum.at(work_key, flat, key)
            min_key = key == work_key[flat]
            work_key[flat] = _HUGE
            np.minimum.at(work_key, flat, np.where(min_key, idx, _HUGE))
            winner = idx == work_key[flat]

        adopt = winner & better

        # First-touch order: the earliest candidate per still-unrouted
        # target (any candidate beats UNSET, so the first one touches).
        newly = cur_key == plan.unset_key
        if newly.any():
            work_touch = state.work_touch
            work_touch[flat] = _HUGE
            np.minimum.at(work_touch, flat, np.where(newly, idx, _HUGE))
            first = np.nonzero(newly & (idx == work_touch[flat]))[0]
            touched_chunks.append((cand_rows[first], cand_to[first]))

        return row_cut, self._commit(state, phase, paths, flat, cand_to,
                                     edges, key, adopt, offer, offer_chunks,
                                     mark_dirty)

    def _commit(self, state: _Arrays, phase: PhasePlan, paths, flat,
                cand_to, edges, key, adopt, offer, offer_chunks,
                mark_dirty: bool, frm=None) -> Optional[Tuple]:
        """Materialise and apply one round's winning/recorded candidates.

        Shared by the batched and compiled resolve paths.  Only the few
        candidates that win or get recorded are materialised: class,
        length and exporter come back out of the packed key by division;
        paths are snapshotted now — the exporter's *current* path id,
        never reconstructed from final state (transient exports are part
        of the contract).  *offer* may be None (caller proved the round
        records nothing), *edges* may be None when the phase carries no
        per-edge vias or bags, and *frm* optionally passes an already
        recovered learned-from array.  Returns the applied adoptions as
        ``(rows, nodes, lengths)`` arrays, or None.
        """
        plan = self._plan
        num_nodes = plan.num_nodes
        span = plan.node_span
        max_len = plan.max_len
        sel = np.nonzero(adopt if offer is None else adopt | offer)[0]
        if len(sel) == 0:
            return None
        sel_flat = flat[sel]
        sel_to = cand_to[sel]
        sel_rows = (sel_flat - sel_to) // num_nodes
        sel_key = key[sel]
        sel_from = frm[sel] if frm is not None else sel_key % span - 1
        sel_len = (sel_key // span) % max_len
        from_flat = sel_rows * num_nodes + sel_from
        sel_edges = edges[sel] if phase.has_via or phase.has_bag else None
        parent = state.pid_f[from_flat].astype(np.int64, copy=False)
        if phase.has_via:
            via = phase.via[sel_edges]
            has_via = via >= 0
            if has_via.any():
                parent = parent.copy()
                parent[has_via] = paths.alloc(via[has_via], parent[has_via])
        sel_pid = paths.alloc(plan.node_asns[sel_to], parent)
        sel_bag = state.bag_f[from_flat]
        if phase.has_bag:
            edge_bag = phase.bag[sel_edges]
            merge = np.nonzero(edge_bag != 0)[0]
            if len(merge):
                sel_bag = sel_bag.copy()
                sel_bag[merge] = self._unions.union_many(sel_bag[merge],
                                                         edge_bag[merge])

        if offer is None:
            # No offers this round: every selected candidate is an
            # adoption, apply them without the re-partition.
            state.key_f[sel_flat] = sel_key
            state.pid_f[sel_flat] = sel_pid
            state.bag_f[sel_flat] = sel_bag
            if mark_dirty:
                state.dirty_f[sel_flat] = True
            return sel_rows, sel_to, sel_len

        offer_sel = np.nonzero(offer[sel])[0]
        if len(offer_sel):
            offer_chunks.append(
                (sel_rows[offer_sel], sel_to[offer_sel],
                 (sel_key[offer_sel] // (span * max_len)),
                 sel_len[offer_sel], sel_from[offer_sel],
                 sel_pid[offer_sel], sel_bag[offer_sel]))

        adopt_sel = np.nonzero(adopt[sel])[0]
        if len(adopt_sel) == 0:
            return None
        rows_ = sel_rows[adopt_sel]
        to_ = sel_to[adopt_sel]
        new_len = sel_len[adopt_sel]
        adopt_flat = sel_flat[adopt_sel]
        state.key_f[adopt_flat] = sel_key[adopt_sel]
        state.pid_f[adopt_flat] = sel_pid[adopt_sel]
        state.bag_f[adopt_flat] = sel_bag[adopt_sel]
        if mark_dirty:
            state.dirty_f[adopt_flat] = True
        return rows_, to_, new_len

# -- result assembly ----------------------------------------------------------
#
# Shared by the batched and compiled replay loops: both sweeps emit the
# same chunk streams and assemble :class:`BatchState` rows identically.

def per_origin_touched(num_origins: int, onodes, touched_chunks) -> List:
    """Per-row discovery-ordered touched arrays from adoption chunks."""
    if not touched_chunks:
        return [onodes[row:row + 1] for row in range(num_origins)]
    rows = np.concatenate([chunk[0] for chunk in touched_chunks])
    nodes = np.concatenate([chunk[1] for chunk in touched_chunks])
    order = np.argsort(rows, kind="stable")
    counts = np.bincount(rows, minlength=num_origins)
    groups = np.split(nodes[order], np.cumsum(counts)[:-1])
    return [np.concatenate((onodes[row:row + 1], group))
            for row, group in enumerate(groups)]


def per_origin_offers(num_origins: int, offer_chunks) -> List[List[Offer]]:
    """Per-row offer tuples from offer chunks, in recording order.

    Assembled in one pass: sort every column by origin row once, convert
    each column to a Python list once, zip the whole batch into tuples
    once, then slice per row — instead of ``np.split`` + ``tolist`` per
    column per row, which dominated result assembly on wide batches.
    """
    if not offer_chunks:
        return [[] for _ in range(num_origins)]
    if len(offer_chunks) == 1:
        columns = list(offer_chunks[0])
    else:
        columns = [np.concatenate([chunk[col] for chunk in offer_chunks])
                   for col in range(7)]
    order = np.argsort(columns[0], kind="stable")
    merged = list(zip(*(np.asarray(column)[order].tolist()
                        for column in columns[1:])))
    bounds = np.cumsum(
        np.bincount(columns[0], minlength=num_origins)).tolist()
    start = 0
    out = []
    for end in bounds:
        out.append(merged[start:end])
        start = end
    return out
