"""Bitmask index over a fixed member population.

Reachability sets (the paper's N_a) and reciprocal-ALLOW link inference
operate on IXP member populations of a few hundred ASes.  Representing
each set as a Python integer bitmask over the sorted member list turns
the pairwise reciprocity check into bit arithmetic and makes every
derived ordering deterministic (bit position == rank of the ASN).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple


class BitsetIndex:
    """Dense bit positions for a sorted universe of hashable values."""

    __slots__ = ("universe", "bit_of", "full_mask")

    def __init__(self, universe: Iterable[int]) -> None:
        #: the sorted universe; bit ``i`` stands for ``universe[i]``.
        self.universe: Tuple[int, ...] = tuple(sorted(set(universe)))
        self.bit_of: Dict[int, int] = {
            value: bit for bit, value in enumerate(self.universe)}
        self.full_mask: int = (1 << len(self.universe)) - 1

    def mask_of(self, values: Iterable[int]) -> int:
        """Bitmask of the given values (unknown values are ignored)."""
        bit_of = self.bit_of
        mask = 0
        for value in values:
            bit = bit_of.get(value)
            if bit is not None:
                mask |= 1 << bit
        return mask

    def values_of(self, mask: int) -> List[int]:
        """The values selected by *mask*, in sorted order."""
        return [self.universe[bit] for bit in iter_bits(mask)]

    def __len__(self) -> int:
        return len(self.universe)

    def __repr__(self) -> str:
        return f"BitsetIndex({len(self.universe)} members)"


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of *mask* in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def reciprocal_pairs(
    masks: Dict[int, int],
    universe: Tuple[int, ...],
    require_reciprocity: bool = True,
) -> set:
    """Emit the sorted value pairs whose ALLOW masks agree.

    *masks* maps bit position -> outgoing mask ("bit *i* allows bit
    *j*"); a missing entry means "allows nobody".  With
    ``require_reciprocity`` a pair needs both directions, otherwise one
    direction suffices.  This is the shared kernel behind both
    reciprocal-ALLOW link inference (N_a sets) and the route server's
    ground-truth ``served_pairs``.
    """
    allowed_by = [0] * len(universe)
    for bit, mask in masks.items():
        own = 1 << bit
        for other in iter_bits(mask):
            allowed_by[other] |= own

    pairs = set()
    for bit, value in enumerate(universe):
        outgoing = masks.get(bit, 0)
        if require_reciprocity:
            mutual = outgoing & allowed_by[bit]
        else:
            mutual = outgoing | allowed_by[bit]
        lower = mutual & ((1 << bit) - 1)
        for other in iter_bits(lower):
            pairs.add((universe[other], value))
    return pairs
