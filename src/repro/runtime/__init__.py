"""Shared runtime substrate: interning, CSR adjacency index, context.

Every layer of the reproduction (bgp -> topology -> collectors/ixp ->
core -> scenarios) works against the primitives in this package instead
of materialising per-route objects:

* :class:`Interner` — dense integer ids for ASNs, prefixes and
  community values;
* :class:`PathStore` / :class:`CommunityBagStore` — structure-shared AS
  paths (cons cells) and memoised community-set unions, so propagation
  never copies a path or a community bag per AS;
* :class:`CSRIndex` — a compressed-sparse-row adjacency index built once
  per topology, pre-partitioned into the three valley-free phases;
* :class:`FrontierPropagator` — the array-based frontier BFS the
  :class:`~repro.bgp.propagation.PropagationEngine` runs on;
* :class:`PropagationPlan` / :class:`BatchedPropagator` — the vectorized
  multi-origin backend: the plan compiles the CSR index once per
  topology, batches of origins replay it as level-synchronous numpy
  sweeps, bit-identical to the frontier engine (gate on
  :func:`numpy_available`);
* :class:`BitsetIndex` — member-population bitmasks used by the
  reachability/link-inference layer;
* :class:`PipelineContext` — owns the interners, the index and the
  memoised per-origin propagation results, and is threaded through the
  whole pipeline;
* :class:`ContextSnapshot` — a compact, picklable capture of a context
  that sharded pipeline stages ship to worker processes
  (:func:`snapshot_context` / :func:`restore_context`).
"""

from repro.runtime.batched import (
    BatchedPropagator,
    BatchState,
    PropagationPlan,
    numpy_available,
)
from repro.runtime.bitset import BitsetIndex
from repro.runtime.context import PipelineContext
from repro.runtime.csr import CSRIndex
from repro.runtime.reachmatrix import ReachabilityMatrix, ReachabilityPlane
from repro.runtime.frontier import FrontierPropagator, OriginState
from repro.runtime.interning import Interner
from repro.runtime.snapshot import (
    ContextSnapshot,
    restore_context,
    snapshot_context,
)
from repro.runtime.stores import CommunityBagStore, PathStore

__all__ = [
    "BatchedPropagator",
    "BatchState",
    "BitsetIndex",
    "CommunityBagStore",
    "ContextSnapshot",
    "CSRIndex",
    "FrontierPropagator",
    "Interner",
    "numpy_available",
    "OriginState",
    "PathStore",
    "PipelineContext",
    "PropagationPlan",
    "ReachabilityMatrix",
    "ReachabilityPlane",
    "restore_context",
    "snapshot_context",
]
