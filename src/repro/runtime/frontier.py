"""Array-based frontier BFS over the CSR index.

This is the data plane of the valley-free propagation engine.  Per-AS
state lives in parallel arrays indexed by node id — provenance class,
path length, learned-from node, path id, community-bag id — and the
three phases (customer climb, one-hop peering, provider descent) are
bucket-queue BFS sweeps over the pre-partitioned phase edges of the
:class:`~repro.runtime.csr.CSRIndex`.

Best-route semantics match the object-graph reference engine
(:class:`~repro.bgp.reference_propagation.ReferencePropagationEngine`)
exactly — provenance, path, communities, learned-from: within a phase
shorter paths win, across phases earlier phases win, ties break on the
lowest exporting neighbour (node ids ascend with ASNs, so comparing ids
*is* comparing ASNs), and the pop order replicates the reference heap.
The property tests in ``tests/bgp/test_propagation_equivalence.py``
exercise this.  One deliberate difference: the reference engine re-offers
a candidate to alternative-tracking observers every time its exporter is
re-popped with unchanged state, so its Adj-RIB-In lists can contain
duplicates; the ``exported`` guard here suppresses those exact-duplicate
re-exports, so ``all_paths()`` returns the same *set* of candidates with
different multiplicities.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, List, Sequence, Tuple

from repro.runtime.stores import CommunityBagStore, PathStore

if TYPE_CHECKING:  # avoid a runtime cycle: csr imports the REL codes below
    from repro.runtime.csr import CSRIndex, PhaseEdges

#: Compact relationship codes used in the CSR edge arrays (defined here,
#: at the leaf of the import graph; :mod:`repro.runtime.csr` re-exports
#: them alongside the Relationship mapping).
REL_CUSTOMER = 0
REL_PROVIDER = 1
REL_PEER = 2
REL_RS_PEER = 3
REL_SIBLING = 4

#: Provenance classes, in decreasing preference (canonical values; the
#: bgp layer re-exports them).
CLASS_ORIGIN = 0
CLASS_CUSTOMER = 1
CLASS_PEER = 2
CLASS_PROVIDER = 3

#: Provenance sentinel for "no route".
UNSET = 127

#: An offered candidate: (target node, class, path length, exporter
#: node, path id, bag id).  Recorded only for alternative-tracking
#: observers.
Offer = Tuple[int, int, int, int, int, int]


class OriginState:
    """The per-origin propagation outcome, still in interned form.

    Valid only until the next :meth:`FrontierPropagator.run` call — the
    arrays and the path store are reused across origins.  Callers must
    materialise what they record before propagating the next origin.
    """

    __slots__ = ("cls", "length", "frm", "pid", "bag", "touched", "offers")

    def __init__(self, cls: List[int], length: List[int], frm: List[int],
                 pid: List[int], bag: List[int], touched: List[int],
                 offers: List[Offer]) -> None:
        self.cls = cls          #: provenance class per node (UNSET = no route)
        self.length = length    #: AS-path length per node
        self.frm = frm          #: learned-from node id per node (-1 = none)
        self.pid = pid          #: path id per node (PathStore)
        self.bag = bag          #: community-bag id per node
        self.touched = touched  #: node ids holding a route, discovery order
        self.offers = offers    #: candidates offered to alt-recorded nodes


class FrontierPropagator:
    """Run the three-phase valley-free computation for one origin at a
    time, reusing scratch arrays across origins."""

    def __init__(self, index: CSRIndex, paths: PathStore,
                 bags: CommunityBagStore) -> None:
        self._index = index
        self._paths = paths
        self._bags = bags
        n = index.num_nodes
        self._cls = [UNSET] * n
        self._len = [0] * n
        self._frm = [-1] * n
        self._pid = [-1] * n
        self._bag = [0] * n
        self._touched: List[int] = []

    def run(self, origin_node: int, origin_bag: int,
            alt_nodes: FrozenSet[int] = frozenset()) -> OriginState:
        """Propagate one origin; see :class:`OriginState` for lifetime."""
        cls_, len_, frm, pid, bag = (
            self._cls, self._len, self._frm, self._pid, self._bag)
        for node in self._touched:
            cls_[node] = UNSET
            len_[node] = 0
            frm[node] = -1
            pid[node] = -1
            bag[node] = 0
        self._paths.clear()

        touched = [origin_node]
        self._touched = touched
        offers: List[Offer] = []

        cls_[origin_node] = CLASS_ORIGIN
        len_[origin_node] = 1
        pid[origin_node] = self._paths.cons(
            self._index.node_asns[origin_node])
        bag[origin_node] = origin_bag

        index = self._index
        # Phase 1: customer routes climb provider chains (and siblings).
        self._bfs(index.customer_edges, CLASS_CUSTOMER, CLASS_CUSTOMER,
                  [origin_node], alt_nodes, offers, touched)
        # Phase 2: one hop across peering links.
        self._peer_hop(index.peer_edges, alt_nodes, offers, touched)
        # Phase 3: everything descends provider->customer chains.
        self._bfs(index.provider_edges, CLASS_PROVIDER, CLASS_PROVIDER,
                  list(touched), alt_nodes, offers, touched)

        return OriginState(cls_, len_, frm, pid, bag, touched, offers)

    # -- phases --------------------------------------------------------------

    def _bfs(self, edges: PhaseEdges, base_class: int, export_limit: int,
             seeds: Sequence[int], alt_nodes: FrozenSet[int],
             offers: List[Offer], touched: List[int]) -> None:
        """Bucket-queue label correction along one phase's edges.

        The pop order replicates the reference engine's heap exactly:
        entries ordered by (path length at push time, node id), node ids
        ascending with ASNs.  Candidates generated while draining bucket
        ``L`` always land in a bucket ``> L`` (every hop adds at least
        one AS), so each bucket is complete — and can be sorted — before
        it drains.  A popped node exports its *current* state (which may
        be newer than the pushed one, e.g. a peer route inherited over a
        sibling link replacing a shorter provider route); the
        ``exported`` guard drops exact-duplicate re-exports.
        """
        indptr, targets, rels, ebags, evias = edges
        cls_, len_, frm, pid, bag = (
            self._cls, self._len, self._frm, self._pid, self._bag)
        node_asns = self._index.node_asns
        cons = self._paths.cons
        union = self._bags.union
        check_alt = bool(alt_nodes)

        buckets: List[List[int]] = []
        for node in seeds:
            length = len_[node]
            while length >= len(buckets):
                buckets.append([])
            buckets[length].append(node)

        exported = {}
        level = 0
        while level < len(buckets):
            queue = buckets[level]
            queue.sort()
            for u in queue:
                ucls = cls_[u]
                if ucls > export_limit:
                    continue
                ulen = len_[u]
                key = (ucls, ulen, frm[u])
                if exported.get(u) == key:
                    continue
                exported[u] = key
                start = indptr[u]
                end = indptr[u + 1]
                if start == end:
                    continue
                upid = pid[u]
                ubag = bag[u]
                for edge in range(start, end):
                    v = targets[edge]
                    ccls = ucls if rels[edge] == REL_SIBLING else base_class
                    via = evias[edge]
                    clen = ulen + 2 if via >= 0 else ulen + 1
                    vcls = cls_[v]
                    if ccls < vcls:
                        better = True
                    elif ccls > vcls:
                        better = False
                    else:
                        vlen = len_[v]
                        better = clen < vlen or (clen == vlen and u < frm[v])
                    offer = check_alt and v in alt_nodes
                    if not better and not offer:
                        continue
                    path = cons(via, upid) if via >= 0 else upid
                    path = cons(node_asns[v], path)
                    ebag = ebags[edge]
                    nbag = ubag if ebag == 0 else union(ubag, ebag)
                    if offer:
                        offers.append((v, ccls, clen, u, path, nbag))
                    if better:
                        if vcls == UNSET:
                            touched.append(v)
                        cls_[v] = ccls
                        len_[v] = clen
                        frm[v] = u
                        pid[v] = path
                        bag[v] = nbag
                        while clen >= len(buckets):
                            buckets.append([])
                        buckets[clen].append(v)
            buckets[level] = []
            level += 1

    def _peer_hop(self, edges: PhaseEdges, alt_nodes: FrozenSet[int],
                  offers: List[Offer], touched: List[int]) -> None:
        """Simultaneous single-hop peer exchange (phase 2).

        Updates are staged and applied after the sweep so every peer
        offers its *pre-phase* route, exactly like the reference engine.
        """
        indptr, targets, _rels, ebags, evias = edges
        cls_, len_, frm, pid, bag = (
            self._cls, self._len, self._frm, self._pid, self._bag)
        node_asns = self._index.node_asns
        cons = self._paths.cons
        union = self._bags.union
        check_alt = bool(alt_nodes)

        updates = {}
        for u in sorted(node for node in touched
                        if cls_[node] <= CLASS_CUSTOMER):
            start = indptr[u]
            end = indptr[u + 1]
            if start == end:
                continue
            ulen = len_[u]
            upid = pid[u]
            ubag = bag[u]
            for edge in range(start, end):
                v = targets[edge]
                via = evias[edge]
                clen = ulen + 2 if via >= 0 else ulen + 1
                pending = updates.get(v)
                if pending is None:
                    vcls = cls_[v]
                    better = CLASS_PEER < vcls or (
                        CLASS_PEER == vcls and (
                            clen < len_[v]
                            or (clen == len_[v] and u < frm[v])))
                else:
                    better = clen < pending[1] or (
                        clen == pending[1] and u < pending[2])
                offer = check_alt and v in alt_nodes
                if not better and not offer:
                    continue
                path = cons(via, upid) if via >= 0 else upid
                path = cons(node_asns[v], path)
                ebag = ebags[edge]
                nbag = ubag if ebag == 0 else union(ubag, ebag)
                if offer:
                    offers.append((v, CLASS_PEER, clen, u, path, nbag))
                if better:
                    updates[v] = (CLASS_PEER, clen, u, path, nbag)

        for v, (ccls, clen, u, path, nbag) in updates.items():
            vcls = cls_[v]
            if ccls < vcls or (ccls == vcls and (
                    clen < len_[v] or (clen == len_[v] and u < frm[v]))):
                if vcls == UNSET:
                    touched.append(v)
                cls_[v] = ccls
                len_[v] = clen
                frm[v] = u
                pid[v] = path
                bag[v] = nbag
