"""repro — reproduction of "Inferring Multilateral Peering" (CoNEXT 2013).

The package is organised around the paper's pipeline:

* :mod:`repro.runtime` — shared runtime substrate: value interning, the
  CSR adjacency index, structure-shared path/community stores, and the
  :class:`~repro.runtime.context.PipelineContext` threaded through every
  layer (see ARCHITECTURE.md).
* :mod:`repro.bgp` — BGP substrate: prefixes, communities, routes, RIBs,
  policies and a valley-free propagation engine.
* :mod:`repro.topology` — AS-level topology substrate: relationships,
  graph container, synthetic Internet generator, relationship inference
  and customer cones.
* :mod:`repro.ixp` — IXP substrate: route servers, per-IXP BGP community
  schemes, looking glasses.
* :mod:`repro.registries` — IRR/RPSL and PeeringDB-like registries.
* :mod:`repro.collectors` — Route Views / RIPE RIS style route collectors.
* :mod:`repro.measurement` — traceroute-derived links and geolocation.
* :mod:`repro.core` — the paper's contribution: multilateral-peering (MLP)
  link inference from route-server BGP communities.
* :mod:`repro.analysis` — the evaluation-section analyses (figures 5-13,
  tables 2-3, sections 5.6-5.7).
* :mod:`repro.scenarios` — ready-made synthetic ecosystems, most notably
  the "13 European IXPs, May 2013" scenario.

The convenience re-exports below are resolved lazily so that importing
:mod:`repro` stays cheap for callers that only need one substrate.
"""

from typing import TYPE_CHECKING

#: Kept in sync with pyproject.toml.
__version__ = "1.1.0"

__all__ = [
    "MLPInferenceEngine",
    "MLPInferenceResult",
    "PipelineContext",
    "build_europe2013",
    "ScenarioConfig",
    "__version__",
]

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers only
    from repro.core.engine import MLPInferenceEngine, MLPInferenceResult
    from repro.runtime.context import PipelineContext
    from repro.scenarios.europe2013 import ScenarioConfig, build_europe2013

_LAZY_EXPORTS = {
    "MLPInferenceEngine": ("repro.core.engine", "MLPInferenceEngine"),
    "MLPInferenceResult": ("repro.core.engine", "MLPInferenceResult"),
    "PipelineContext": ("repro.runtime.context", "PipelineContext"),
    "build_europe2013": ("repro.scenarios.europe2013", "build_europe2013"),
    "ScenarioConfig": ("repro.scenarios.europe2013", "ScenarioConfig"),
}


def __getattr__(name: str):
    """Resolve the lazy top-level exports (PEP 562)."""
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attribute)


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
