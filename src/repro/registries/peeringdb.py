"""PeeringDB-like registry.

Holds the self-reported facts the paper joins against its inferences:
peering policy (open / selective / restrictive), geographic scope,
IXP presences, and the looking glasses a network operates (used to pick
the 70 validation LGs of section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.topology.as_graph import GeographicScope, PeeringPolicy


@dataclass
class LookingGlassRecord:
    """A looking glass advertised in the registry."""

    asn: int
    url: str
    display_all_paths: bool = True


@dataclass
class PeeringDBRecord:
    """The registry entry of one network."""

    asn: int
    name: str = ""
    policy: PeeringPolicy = PeeringPolicy.UNKNOWN
    scope: GeographicScope = GeographicScope.NOT_AVAILABLE
    ixps: Set[str] = field(default_factory=set)
    looking_glasses: List[LookingGlassRecord] = field(default_factory=list)


class PeeringDB:
    """The registry: a queryable collection of :class:`PeeringDBRecord`."""

    def __init__(self) -> None:
        self._records: Dict[int, PeeringDBRecord] = {}

    # -- population --------------------------------------------------------------

    def register(self, record: PeeringDBRecord) -> PeeringDBRecord:
        """Add (or replace) a network record."""
        self._records[record.asn] = record
        return record

    def add_looking_glass(self, asn: int, url: str,
                          display_all_paths: bool = True) -> LookingGlassRecord:
        """Attach a looking glass to an existing (or new) record."""
        record = self._records.setdefault(asn, PeeringDBRecord(asn=asn))
        lg = LookingGlassRecord(asn=asn, url=url,
                                display_all_paths=display_all_paths)
        record.looking_glasses.append(lg)
        return lg

    # -- queries ------------------------------------------------------------------

    def record(self, asn: int) -> Optional[PeeringDBRecord]:
        """The record of *asn*, or None if the network never registered."""
        return self._records.get(asn)

    def records(self) -> List[PeeringDBRecord]:
        """All records, ordered by ASN."""
        return [self._records[asn] for asn in sorted(self._records)]

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, asn: int) -> bool:
        return asn in self._records

    def policy_of(self, asn: int) -> PeeringPolicy:
        """Self-reported policy of *asn* (UNKNOWN when unregistered)."""
        record = self._records.get(asn)
        return record.policy if record else PeeringPolicy.UNKNOWN

    def scope_of(self, asn: int) -> GeographicScope:
        """Self-reported geographic scope (N/A when unregistered)."""
        record = self._records.get(asn)
        return record.scope if record else GeographicScope.NOT_AVAILABLE

    def networks_with_policy(self, policy: PeeringPolicy) -> List[int]:
        """ASNs that self-report *policy*."""
        return sorted(asn for asn, record in self._records.items()
                      if record.policy is policy)

    def networks_at_ixp(self, ixp_name: str) -> List[int]:
        """ASNs that list a presence at *ixp_name*."""
        return sorted(asn for asn, record in self._records.items()
                      if ixp_name in record.ixps)

    def looking_glasses(self, relevant_asns: Optional[Iterable[int]] = None
                        ) -> List[LookingGlassRecord]:
        """All advertised looking glasses, optionally restricted to the
        networks in *relevant_asns* (how the paper selected its 70
        validation LGs)."""
        wanted = set(relevant_asns) if relevant_asns is not None else None
        result: List[LookingGlassRecord] = []
        for asn in sorted(self._records):
            if wanted is not None and asn not in wanted:
                continue
            result.extend(self._records[asn].looking_glasses)
        return result
