"""Internet Routing Registry (IRR) database substrate.

Holds aut-num policies (import/export filters) and as-set objects.  Two
uses in the paper:

* route-server member discovery: IXPs register an as-set listing the
  networks connected to their route server, and members reference the RS
  ASN in their aut-num import/export lines (this is how the paper
  recovered partial LINX membership);
* the reciprocity validation of section 4.4: AMS-IX generates its RS
  filters from IRR data, so both import and export filters of 230 members
  could be compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.registries.rpsl import RPSLObject, parse_as_references


@dataclass
class AutNumPolicy:
    """Import/export policy of one AS as registered in the IRR.

    ``import_accept`` / ``export_announce`` map a peer ASN to the set of
    origin ASNs whose routes are accepted from / announced to that peer.
    An empty set with the peer present means "nothing"; a peer key mapped
    to None means "ANY".  ``blocked_import`` / ``blocked_export`` list
    route-server peers explicitly filtered (the form AMS-IX members use).
    """

    asn: int
    blocked_import: Set[int] = field(default_factory=set)
    blocked_export: Set[int] = field(default_factory=set)
    rs_peers: Set[int] = field(default_factory=set)
    source: str = "RIPE"
    accurate: bool = True

    def import_allows(self, peer_asn: int) -> bool:
        """True if routes from *peer_asn* are accepted."""
        return peer_asn not in self.blocked_import

    def export_allows(self, peer_asn: int) -> bool:
        """True if routes are announced to *peer_asn*."""
        return peer_asn not in self.blocked_export

    def references_asn(self, asn: int) -> bool:
        """True if the policy references *asn* anywhere (used for the
        LINX-style search of members that peer with a given RS ASN)."""
        return asn in self.rs_peers or asn in self.blocked_import \
            or asn in self.blocked_export


@dataclass
class ASSet:
    """An RPSL as-set object (e.g. ``AS-DECIX-RS-MEMBERS``)."""

    name: str
    members: Set[int] = field(default_factory=set)
    source: str = "RIPE"
    #: Fraction of real members missing / spurious entries are modelled by
    #: the scenario when it populates the set.
    maintained_by: Optional[int] = None


class IRRDatabase:
    """A multi-source IRR database (RIPE / ARIN / RADB merged view)."""

    def __init__(self) -> None:
        self._aut_nums: Dict[int, AutNumPolicy] = {}
        self._as_sets: Dict[str, ASSet] = {}

    # -- population -----------------------------------------------------------------

    def register_aut_num(self, policy: AutNumPolicy) -> AutNumPolicy:
        """Add (or replace) an aut-num policy."""
        self._aut_nums[policy.asn] = policy
        return policy

    def register_as_set(self, as_set: ASSet) -> ASSet:
        """Add (or replace) an as-set."""
        self._as_sets[as_set.name.upper()] = as_set
        return as_set

    def load_rpsl_objects(self, objects: Iterable[RPSLObject]) -> int:
        """Ingest parsed RPSL objects (aut-num and as-set classes only)."""
        count = 0
        for obj in objects:
            if obj.object_class == "aut-num":
                asn_text = obj.key.upper().lstrip("AS")
                if not asn_text.isdigit():
                    continue
                policy = AutNumPolicy(asn=int(asn_text), source=obj.source)
                for value in obj.values("import"):
                    policy.rs_peers.update(parse_as_references(value))
                for value in obj.values("export"):
                    policy.rs_peers.update(parse_as_references(value))
                self.register_aut_num(policy)
                count += 1
            elif obj.object_class == "as-set":
                as_set = ASSet(name=obj.key, source=obj.source)
                for value in obj.values("members"):
                    as_set.members.update(parse_as_references(value))
                self.register_as_set(as_set)
                count += 1
        return count

    # -- queries ---------------------------------------------------------------------

    def aut_num(self, asn: int) -> Optional[AutNumPolicy]:
        """The aut-num policy of *asn*, or None."""
        return self._aut_nums.get(asn)

    def aut_nums(self) -> List[AutNumPolicy]:
        """All registered aut-num policies."""
        return [self._aut_nums[asn] for asn in sorted(self._aut_nums)]

    def as_set(self, name: str) -> Optional[ASSet]:
        """The as-set called *name*, or None."""
        return self._as_sets.get(name.upper())

    def as_sets(self) -> List[ASSet]:
        """All registered as-sets."""
        return [self._as_sets[name] for name in sorted(self._as_sets)]

    def find_as_sets_containing(self, asn: int) -> List[ASSet]:
        """As-sets that list *asn* as a member."""
        return [s for s in self._as_sets.values() if asn in s.members]

    def ases_referencing(self, asn: int) -> List[int]:
        """ASes whose aut-num policy references *asn*.

        This is the LINX fallback of Table 2: when an IXP publishes
        neither a member list nor an as-set, searching member aut-num
        records for the route-server ASN recovers a partial member list.
        """
        return sorted(policy.asn for policy in self._aut_nums.values()
                      if policy.references_asn(asn))

    def __len__(self) -> int:
        return len(self._aut_nums) + len(self._as_sets)
