"""Minimal RPSL (Routing Policy Specification Language) objects.

The IRR stores aut-num, as-set and route objects as attribute/value
blocks.  This module provides a small parser/serialiser for the subset
the paper touches: ``aut-num`` objects with ``import`` / ``export``
lines, and ``as-set`` objects with ``members`` lines (used to discover
route-server participants).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class RPSLObject:
    """A generic RPSL object: an ordered list of (attribute, value) pairs."""

    object_class: str
    key: str
    attributes: List[Tuple[str, str]] = field(default_factory=list)
    source: str = "RIPE"

    def add(self, attribute: str, value: str) -> "RPSLObject":
        """Append an attribute line."""
        self.attributes.append((attribute.lower(), value.strip()))
        return self

    def values(self, attribute: str) -> List[str]:
        """All values of *attribute* (case-insensitive), in order."""
        wanted = attribute.lower()
        return [value for attr, value in self.attributes if attr == wanted]

    def first(self, attribute: str) -> Optional[str]:
        """The first value of *attribute*, or None."""
        values = self.values(attribute)
        return values[0] if values else None


def parse_rpsl(text: str) -> List[RPSLObject]:
    """Parse RPSL text into objects.

    Objects are separated by blank lines; the first attribute of each
    block names the object class and primary key.  Continuation lines
    (leading whitespace or ``+``) extend the previous value, per RPSL.
    """
    objects: List[RPSLObject] = []
    current: List[Tuple[str, str]] = []

    def flush() -> None:
        nonlocal current
        if not current:
            return
        object_class, key = current[0][0], current[0][1]
        obj = RPSLObject(object_class=object_class, key=key)
        for attr, value in current:
            obj.add(attr, value)
        source = obj.first("source")
        if source:
            obj.source = source
        objects.append(obj)
        current = []

    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if not line.strip():
            flush()
            continue
        if line.startswith("#") or line.startswith("%"):
            continue
        if line[0] in (" ", "\t", "+") and current:
            attr, value = current[-1]
            continuation = line.lstrip("+ \t")
            current[-1] = (attr, f"{value} {continuation}".strip())
            continue
        attr, sep, value = line.partition(":")
        if not sep:
            continue
        current.append((attr.strip().lower(), value.strip()))
    flush()
    return objects


def serialise_rpsl(objects: Iterable[RPSLObject]) -> str:
    """Serialise objects back to RPSL text (one blank line between them)."""
    blocks = []
    for obj in objects:
        lines = [f"{attr}: {value}" for attr, value in obj.attributes]
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


def parse_as_references(value: str) -> List[int]:
    """Extract AS numbers referenced in an RPSL policy or members value,
    e.g. ``from AS6695 accept ANY`` -> [6695]."""
    result: List[int] = []
    for token in value.replace(",", " ").split():
        token = token.strip().upper()
        if token.startswith("AS") and token[2:].isdigit():
            result.append(int(token[2:]))
    return result
