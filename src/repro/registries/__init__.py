"""Registry substrates: IRR/RPSL databases and a PeeringDB-like registry.

The paper uses registries for three purposes: discovering route-server
members through RPSL AS-SET objects, validating the reciprocity
assumption against IRR import/export filters of AMS-IX members
(section 4.4), and joining inferred links with self-reported peering
policies, geographic scope and looking-glass addresses from PeeringDB
(sections 5.1, 5.2 and 5.5).
"""

from repro.registries.rpsl import RPSLObject, parse_rpsl, serialise_rpsl
from repro.registries.irr import IRRDatabase, AutNumPolicy, ASSet
from repro.registries.peeringdb import PeeringDB, PeeringDBRecord, LookingGlassRecord

__all__ = [
    "RPSLObject",
    "parse_rpsl",
    "serialise_rpsl",
    "IRRDatabase",
    "AutNumPolicy",
    "ASSet",
    "PeeringDB",
    "PeeringDBRecord",
    "LookingGlassRecord",
]
