"""The artifact cache behind :class:`~repro.pipeline.run.ScenarioRun`.

Artifacts are stored under ``(stage name, fingerprint)``.  The memory
layer is a plain dict and is what makes warm re-runs within a process
instant; the optional disk layer (pickle files under ``cache_dir``)
carries artifacts across processes and sessions for the stages that opt
in via ``Stage.persist``.

A shared :class:`ArtifactCache` instance can back any number of
:class:`ScenarioRun` objects; fingerprints guarantee that runs only see
artifacts produced under an identical configuration.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Cache-lookup outcomes recorded in run events.
STATUS_MEMORY = "memory"
STATUS_DISK = "disk"
STATUS_COMPUTED = "computed"


class ArtifactCache:
    """Two-layer (memory + optional pickle-on-disk) artifact store."""

    def __init__(self, cache_dir: Optional[Path] = None) -> None:
        self._memory: Dict[Tuple[str, str], Any] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # -- lookup ---------------------------------------------------------------

    def get(self, stage_name: str, fingerprint: str,
            allow_disk: bool = True) -> Tuple[Optional[str], Any]:
        """Look up an artifact; returns ``(status, value)``.

        ``status`` is :data:`STATUS_MEMORY`, :data:`STATUS_DISK` or None
        (miss).  Disk hits are promoted into the memory layer.
        """
        key = (stage_name, fingerprint)
        if key in self._memory:
            return STATUS_MEMORY, self._memory[key]
        if allow_disk and self.cache_dir is not None:
            path = self._disk_path(stage_name, fingerprint)
            if path.is_file():
                try:
                    with path.open("rb") as handle:
                        payload = pickle.load(handle)
                except Exception:
                    # Truncated or corrupt (e.g. written by an
                    # incompatible code version, or a partial write that
                    # predates the atomic-rename protocol): delete the
                    # entry so the next writer replaces it, and report a
                    # miss so the caller recomputes.
                    self._discard(path)
                    return None, None
                if isinstance(payload, dict) and \
                        payload.get("fingerprint") == fingerprint:
                    value = payload["artifact"]
                    self._memory[key] = value
                    return STATUS_DISK, value
                # A well-formed pickle with a different fingerprint is a
                # 32-hex-char prefix collision with another config, not
                # corruption — leave the other config's entry alone.
        return None, None

    def put(self, stage_name: str, fingerprint: str, value: Any,
            persist: bool = False) -> None:
        """Store an artifact (and write it to disk when *persist*)."""
        self._memory[(stage_name, fingerprint)] = value
        if persist and self.cache_dir is not None:
            path = self._disk_path(stage_name, fingerprint)
            # Per-process sidecar name so concurrent writers sharing the
            # directory never interleave into one file; the final rename
            # (``os.replace`` semantics) is atomic, so a concurrent
            # reader sees either the old complete file or the new one —
            # never a truncated pickle.  Last-writer-wins with identical
            # content.  A failed dump (unpicklable artifact, full disk)
            # removes the sidecar instead of leaving a partial file
            # around for a future process id to collide with.
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            try:
                with tmp.open("wb") as handle:
                    pickle.dump(
                        {"fingerprint": fingerprint, "artifact": value},
                        handle, protocol=pickle.HIGHEST_PROTOCOL)
                    handle.flush()
                    os.fsync(handle.fileno())
            except BaseException:
                self._discard(tmp)
                raise
            os.replace(tmp, path)

    # -- maintenance ----------------------------------------------------------

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk files are kept)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, stage_name: str, fingerprint: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{stage_name}-{fingerprint[:32]}.pkl"

    @staticmethod
    def _discard(path: Path) -> None:
        """Best-effort unlink (a concurrent process may already have
        replaced or removed the file — both outcomes are fine)."""
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:
        where = f", dir={self.cache_dir}" if self.cache_dir else ""
        return f"ArtifactCache({len(self._memory)} artifacts{where})"
