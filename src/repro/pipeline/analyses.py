"""Per-figure analysis stage: a registry of independent summaries.

Each figure function maps ``(scenario, inference, matrix, options)`` to
a small, picklable summary dict — the numbers behind one table or
figure of the paper.  The shared
:class:`~repro.runtime.reachmatrix.ReachabilityMatrix` artifact carries
the memoised link views every figure consumes (global link set, per-IXP
links), so no figure re-walks the inference result object.  Figures are
independent of one another, so :func:`run_analyses` can fan them out
across a process pool: the scenario/inference/matrix triple is shipped
once per worker through the pool initializer, tasks are just figure
names, and the result dict is assembled in the requested figure order
regardless of completion order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.degrees import DegreeAnalysis
from repro.analysis.density import density_per_ixp
from repro.analysis.visibility import VisibilityAnalysis
from repro.runtime.reachmatrix import ReachabilityMatrix


@dataclass(frozen=True)
class AnalysisOptions:
    """Knobs of the analysis stage (and nothing upstream of it)."""

    #: Figures to compute, in output order.
    figures: Tuple[str, ...] = ("table2", "visibility", "degrees", "density")
    #: Customer-count threshold for the figure-7 "small degree" fraction.
    small_degree_threshold: int = 10
    #: Restrict figure-12 densities to members with at least one link.
    density_only_members_with_links: bool = False


def _analyse_table2(scenario, inference, matrix, options: AnalysisOptions) -> dict:
    graph = scenario.graph
    ixp_ases = {spec.name: len(graph.members_of_ixp(spec.name))
                for spec in scenario.internet.ixp_specs}
    ixp_has_lg = {spec.name: spec.name in scenario.rs_looking_glasses
                  for spec in scenario.internet.ixp_specs}
    return {"rows": inference.table2(ixp_ases=ixp_ases, ixp_has_lg=ixp_has_lg),
            "total_links": len(matrix.all_links()),
            "multi_ixp_links": len(matrix.multi_ixp_links())}


def _analyse_visibility(scenario, inference, matrix,
                        options: AnalysisOptions) -> dict:
    analysis = VisibilityAnalysis(
        mlp_links=matrix.all_links(),
        bgp_links=scenario.public_bgp_links(),
        traceroute_links=scenario.traceroute_links(),
    )
    return analysis.report.summary()


def _analyse_degrees(scenario, inference, matrix,
                     options: AnalysisOptions) -> dict:
    graph = scenario.graph
    analysis = DegreeAnalysis(
        customer_degree=lambda asn: len(graph.customers(asn)))
    stats = analysis.analyse(matrix.all_links())
    summary = stats.summary()
    summary["small_degree"] = stats.fraction_small_degree(
        options.small_degree_threshold)
    return summary


def _analyse_density(scenario, inference, matrix,
                     options: AnalysisOptions) -> dict:
    members_by_ixp = {spec.name: scenario.graph.rs_members_of_ixp(spec.name)
                      for spec in scenario.internet.ixp_specs}
    report = density_per_ixp(
        matrix.links_by_ixp(), members_by_ixp,
        only_members_with_links=options.density_only_members_with_links)
    return {"mean_densities": report.mean_densities()}


FIGURES: Dict[str, Callable] = {
    "table2": _analyse_table2,
    "visibility": _analyse_visibility,
    "degrees": _analyse_degrees,
    "density": _analyse_density,
}


# -- sharded execution ---------------------------------------------------------

_WORKER_STATE = None


def _init_analysis_worker(scenario, inference, matrix, options) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (scenario, inference, matrix, options)


def _run_figure(name: str) -> dict:
    assert _WORKER_STATE is not None, "analysis worker not initialised"
    scenario, inference, matrix, options = _WORKER_STATE
    return FIGURES[name](scenario, inference, matrix, options)


def run_analyses(
    scenario,
    inference,
    options: Optional[AnalysisOptions] = None,
    workers: Optional[int] = None,
    matrix: Optional[ReachabilityMatrix] = None,
) -> Dict[str, dict]:
    """Compute the requested figure summaries, optionally sharded.

    *matrix* is the shared reachability artifact; when omitted it is
    built once from the inference result, so every figure still reads
    the same memoised link views.
    """
    options = options or AnalysisOptions()
    names = list(options.figures)
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        raise ValueError(f"unknown analysis figures: {unknown!r} "
                         f"(available: {sorted(FIGURES)})")
    if matrix is None:
        matrix = ReachabilityMatrix.from_result(inference)

    from repro.pipeline.shard import resolve_workers
    worker_count = resolve_workers(workers)
    if worker_count > 1 and len(names) > 1:
        with ProcessPoolExecutor(
            max_workers=min(worker_count, len(names)),
            initializer=_init_analysis_worker,
            initargs=(scenario, inference, matrix, options),
        ) as pool:
            summaries = list(pool.map(_run_figure, names))
    else:
        summaries = [FIGURES[name](scenario, inference, matrix, options)
                     for name in names]
    return dict(zip(names, summaries))
