"""Staged scenario pipeline: artifact-cached stage graph + sharding.

The pipeline package turns the monolithic per-scenario pass into a
declarative stage graph:

* :class:`Stage` / :class:`StageGraph` (``stage.py``) — stages declare
  their inputs, the config keys they read, and derive deterministic
  fingerprints (config + upstream fingerprints);
* :class:`ArtifactCache` (``cache.py``) — memory + optional on-disk
  artifact store keyed by fingerprint, so re-running a scenario with one
  changed knob only recomputes the stages downstream of the change;
* :class:`ScenarioRun` (``run.py``) — binds any registered
  :class:`~repro.scenarios.spec.ScenarioSpec` (by name or object, with
  its :class:`~repro.scenarios.base.ScenarioConfig`) to the spec's
  declared stage graph and executes stages on demand;
* ``shard.py`` — multi-process execution of the per-origin propagation
  sweep with worker contexts rebuilt from compact
  :mod:`repro.runtime.snapshot` captures;
* ``analyses.py`` — the per-figure analysis registry (Table 2,
  figures 6/7/12) with optional per-figure sharding.
"""

from repro.pipeline.analyses import AnalysisOptions, run_analyses
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.run import (
    InferenceOptions,
    ScenarioRun,
    StageEvent,
    europe2013_stage_graph,
)
from repro.pipeline.shard import sharded_propagate
from repro.pipeline.stage import Stage, StageGraph

__all__ = [
    "AnalysisOptions",
    "ArtifactCache",
    "InferenceOptions",
    "ScenarioRun",
    "Stage",
    "StageEvent",
    "StageGraph",
    "europe2013_stage_graph",
    "run_analyses",
    "sharded_propagate",
]
