"""`ScenarioRun`: execute the europe2013 stage graph with artifact caching.

A :class:`ScenarioRun` binds a :class:`ScenarioConfig` (plus inference/
analysis option namespaces) to the declarative stage graph and executes
stages on demand::

    run = ScenarioRun(small_scenario_config())
    scenario = run.scenario()        # builds topology..scenario stages
    result = run.inference()         # + connectivity + inference
    figures = run.analyses()         # + per-figure summaries

Artifacts live in an :class:`~repro.pipeline.cache.ArtifactCache` keyed
by stage fingerprint.  Sharing one cache across runs makes warm re-runs
skip every stage whose fingerprint is unchanged — re-running with only
an analysis knob changed recomputes *only* the analyses stage::

    cache = ArtifactCache()
    ScenarioRun(cfg, cache=cache).analyses()
    tweaked = ScenarioRun(cfg, cache=cache,
                          analysis_options=AnalysisOptions(figures=("table2",)))
    tweaked.analyses()               # every upstream stage is a cache hit

``workers`` shards the embarrassingly parallel stages (per-origin
propagation, per-IXP inference, per-figure analyses) across process
pools; it is an execution detail and deliberately not part of any
fingerprint — sharded and single-process runs produce identical
artifacts (asserted by the pipeline test suite).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Union

from repro.pipeline.analyses import AnalysisOptions, run_analyses
from repro.pipeline.cache import STATUS_COMPUTED, ArtifactCache
from repro.pipeline.stage import Stage, StageGraph
from repro.scenarios import europe2013 as e13
from repro.scenarios.europe2013 import Scenario, ScenarioConfig

from dataclasses import dataclass


@dataclass(frozen=True)
class InferenceOptions:
    """Knobs of the inference stage (the paper's ablation switches)."""

    use_passive: bool = True
    use_active: bool = True
    require_reciprocity: bool = True


class StageEvent(NamedTuple):
    """One resolved stage: where its artifact came from and how long."""

    stage: str
    status: str          #: "memory" / "disk" / "computed"
    seconds: float
    fingerprint: str


# -- stage bodies --------------------------------------------------------------

def _run_inference(run: "ScenarioRun"):
    scenario: Scenario = run.artifact("scenario")
    connectivity = run.artifact("connectivity")
    options = run.inference_options
    engine = scenario.make_engine(connectivity=connectivity)
    passive_entries = scenario.archive.clean_stable_entries() \
        if options.use_passive else None
    rs_lgs = scenario.rs_looking_glasses if options.use_active else {}
    third_party = scenario.third_party_lgs if options.use_active else {}
    return engine.run(
        passive_entries=passive_entries,
        rs_looking_glasses=rs_lgs,
        third_party_lgs=third_party,
        require_reciprocity=options.require_reciprocity,
        workers=run.workers,
    )


def europe2013_stage_graph() -> StageGraph:
    """The declarative stage graph of the Europe-2013 scenario pipeline."""
    return StageGraph([
        Stage(
            "topology",
            fn=lambda run: e13.stage_topology(run.config),
            config_keys=("generator",),
            persist=True,
        ),
        Stage(
            "ixps",
            fn=lambda run: e13.stage_ixps(
                run.config, run.artifact("topology")),
            deps=("topology",),
            config_keys=("seed", "cone_prefix_fraction",
                         "inconsistent_member_fraction"),
        ),
        Stage(
            "propagation",
            fn=lambda run: e13.stage_propagation(
                run.config, run.artifact("topology"), run.artifact("ixps"),
                workers=run.workers),
            deps=("topology", "ixps"),
            config_keys=("vantage_point_fraction", "full_feed_fraction",
                         "third_party_lgs_per_ixp", "num_traceroute_monitors",
                         "num_validation_lgs"),
            persist=True,
        ),
        Stage(
            "collectors",
            fn=lambda run: e13.stage_collectors(
                run.config, run.artifact("propagation")),
            deps=("propagation",),
            config_keys=("seed", "window", "transient_fraction"),
        ),
        Stage(
            "viewpoints",
            fn=lambda run: e13.stage_viewpoints(
                run.config, run.artifact("topology"), run.artifact("ixps"),
                run.artifact("propagation")),
            deps=("topology", "ixps", "propagation"),
            config_keys=("all_paths_lg_fraction",),
        ),
        Stage(
            "registries",
            fn=lambda run: e13.stage_registries(
                run.config, run.artifact("topology"),
                run.artifact("viewpoints")),
            deps=("topology", "viewpoints"),
        ),
        Stage(
            "scenario",
            fn=lambda run: e13.stage_scenario(
                run.config, run.artifact("topology"), run.artifact("ixps"),
                run.artifact("propagation"), run.artifact("collectors"),
                run.artifact("viewpoints"), run.artifact("registries")),
            deps=("topology", "ixps", "propagation", "collectors",
                  "viewpoints", "registries"),
        ),
        Stage(
            "connectivity",
            fn=lambda run: run.artifact("scenario").discover_connectivity(),
            deps=("scenario",),
        ),
        Stage(
            "inference",
            fn=_run_inference,
            deps=("scenario", "connectivity"),
            options_key="inference",
            persist=True,
        ),
        Stage(
            "analyses",
            fn=lambda run: run_analyses(
                run.artifact("scenario"), run.artifact("inference"),
                options=run.analysis_options, workers=run.workers),
            deps=("scenario", "inference"),
            options_key="analysis",
        ),
    ])


class ScenarioRun:
    """Execute the scenario pipeline against an artifact cache."""

    def __init__(
        self,
        config: Optional[ScenarioConfig] = None,
        *,
        inference_options: Optional[InferenceOptions] = None,
        analysis_options: Optional[AnalysisOptions] = None,
        workers: Optional[int] = None,
        cache: Optional[ArtifactCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        graph: Optional[StageGraph] = None,
    ) -> None:
        self.config = config or ScenarioConfig()
        self.inference_options = inference_options or InferenceOptions()
        self.analysis_options = analysis_options or AnalysisOptions()
        self.workers = workers
        self.cache = cache if cache is not None else ArtifactCache(
            Path(cache_dir) if cache_dir is not None else None)
        self.graph = graph or europe2013_stage_graph()
        #: stage -> artifact resolved by *this* run (one entry per stage).
        self._resolved: Dict[str, Any] = {}
        #: one event per stage resolved by this run, in resolution order.
        self.events: List[StageEvent] = []
        self._fingerprints: Optional[Dict[str, str]] = None

    # -- fingerprints ---------------------------------------------------------

    def fingerprints(self) -> Dict[str, str]:
        """Fingerprint of every stage under this run's config/options."""
        if self._fingerprints is None:
            config_keys = {key for name in self.graph.names()
                           for key in self.graph.stage(name).config_keys}
            config_repr = {key: repr(getattr(self.config, key))
                           for key in sorted(config_keys)}
            options_repr = {
                "inference": repr(self.inference_options),
                "analysis": repr(self.analysis_options),
            }
            self._fingerprints = self.graph.fingerprints(
                config_repr, options_repr)
        return self._fingerprints

    def fingerprint(self, stage_name: str) -> str:
        """The fingerprint of one stage."""
        return self.fingerprints()[stage_name]

    # -- execution ------------------------------------------------------------

    def artifact(self, stage_name: str) -> Any:
        """The artifact of *stage_name*, computing it (and its ancestors)
        on cache miss."""
        if stage_name in self._resolved:
            return self._resolved[stage_name]
        stage = self.graph.stage(stage_name)
        fingerprint = self.fingerprint(stage_name)
        status, value = self.cache.get(stage_name, fingerprint,
                                       allow_disk=stage.persist)
        seconds = 0.0
        if status is None:
            for dep in stage.deps:
                self.artifact(dep)
            started = time.perf_counter()
            value = stage.fn(self)
            seconds = time.perf_counter() - started
            self.cache.put(stage_name, fingerprint, value,
                           persist=stage.persist)
            status = STATUS_COMPUTED
        self._resolved[stage_name] = value
        self.events.append(StageEvent(stage_name, status, seconds, fingerprint))
        return value

    # -- convenience accessors ------------------------------------------------

    def scenario(self) -> Scenario:
        """The assembled measurement environment."""
        return self.artifact("scenario")

    def connectivity(self):
        """Connectivity-discovery reports per IXP."""
        return self.artifact("connectivity")

    def inference(self):
        """The end-to-end MLP inference result."""
        return self.artifact("inference")

    def analyses(self) -> Dict[str, dict]:
        """The per-figure analysis summaries."""
        return self.artifact("analyses")

    def table2(self) -> List[Dict[str, object]]:
        """The paper's Table 2 rows (via the analyses stage)."""
        summaries = self.analyses()
        if "table2" in summaries:
            return summaries["table2"]["rows"]
        from repro.pipeline.analyses import _analyse_table2
        return _analyse_table2(self.scenario(), self.inference(),
                               self.analysis_options)["rows"]

    # -- introspection --------------------------------------------------------

    def stage_statuses(self) -> Dict[str, str]:
        """Stage -> cache status for every stage this run resolved."""
        return {event.stage: event.status for event in self.events}

    def cache_summary(self) -> Dict[str, int]:
        """Counts of resolved stages per cache status."""
        summary: Dict[str, int] = {}
        for event in self.events:
            summary[event.status] = summary.get(event.status, 0) + 1
        return summary

    def __repr__(self) -> str:
        resolved = ", ".join(f"{e.stage}:{e.status}" for e in self.events)
        return f"ScenarioRun({resolved or 'nothing resolved'})"
