"""`ScenarioRun`: execute a registered scenario's stage graph with caching.

A :class:`ScenarioRun` binds a scenario — any
:class:`~repro.scenarios.spec.ScenarioSpec` from the registry, by name
or by object — plus a :class:`~repro.scenarios.base.ScenarioConfig`
(and inference/analysis option namespaces) to the spec's declared stage
graph and executes stages on demand::

    run = ScenarioRun(scenario="europe2013",
                      config=small_scenario_config())
    scenario = run.scenario()        # builds topology..scenario stages
    result = run.inference()         # + connectivity + inference
    figures = run.analyses()         # + per-figure summaries

The scenario defaults to ``europe2013`` (the historical behaviour); the
config defaults to the spec's default size.  Passing a registered name
is the canonical way to run any family::

    ScenarioRun(scenario="hypergiant2016",
                config=get_scenario("hypergiant2016").config("small"))

Artifacts live in an :class:`~repro.pipeline.cache.ArtifactCache` keyed
by stage fingerprint (salted with the scenario name, so two families
with coincidentally equal configs never share artifacts).  Sharing one
cache across runs makes warm re-runs skip every stage whose fingerprint
is unchanged — re-running with only an analysis knob changed recomputes
*only* the analyses stage::

    cache = ArtifactCache()
    ScenarioRun(cfg, cache=cache).analyses()
    tweaked = ScenarioRun(cfg, cache=cache,
                          analysis_options=AnalysisOptions(figures=("table2",)))
    tweaked.analyses()               # every upstream stage is a cache hit

``workers`` shards the embarrassingly parallel stages (per-origin
propagation, per-IXP inference, per-figure analyses) across process
pools; it is an execution detail and deliberately not part of any
fingerprint — sharded and single-process runs produce identical
artifacts (asserted by the pipeline test suite).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, NamedTuple, Optional, Union

from repro.pipeline.analyses import AnalysisOptions
from repro.pipeline.cache import STATUS_COMPUTED, ArtifactCache
from repro.pipeline.stage import StageGraph

from dataclasses import dataclass

if TYPE_CHECKING:  # pragma: no cover - type-only imports (avoids a cycle)
    from repro.scenarios.base import Scenario, ScenarioConfig
    from repro.scenarios.spec import ScenarioSpec


@dataclass(frozen=True)
class InferenceOptions:
    """Knobs of the inference stage (the paper's ablation switches)."""

    use_passive: bool = True
    use_active: bool = True
    require_reciprocity: bool = True


class StageEvent(NamedTuple):
    """One resolved stage: where its artifact came from and how long."""

    stage: str
    status: str          #: "memory" / "disk" / "computed"
    seconds: float
    fingerprint: str


def europe2013_stage_graph() -> StageGraph:
    """The stage graph of the registered Europe-2013 scenario
    (back-compat alias for ``get_scenario("europe2013").stage_graph()``)."""
    from repro.scenarios.spec import get_scenario
    return get_scenario("europe2013").stage_graph()


def _resolve_spec(scenario: Union[str, "ScenarioSpec", None]) -> "ScenarioSpec":
    from repro.scenarios.spec import ScenarioSpec, get_scenario
    if scenario is None:
        return get_scenario("europe2013")
    if isinstance(scenario, str):
        return get_scenario(scenario)
    if isinstance(scenario, ScenarioSpec):
        return scenario
    raise TypeError(f"scenario must be a name or ScenarioSpec, "
                    f"got {type(scenario).__name__}")


class ScenarioRun:
    """Execute one scenario's pipeline against an artifact cache."""

    def __init__(
        self,
        config: Optional["ScenarioConfig"] = None,
        *,
        scenario: Union[str, "ScenarioSpec", None] = None,
        inference_options: Optional[InferenceOptions] = None,
        analysis_options: Optional[AnalysisOptions] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        inference_backend: Optional[str] = None,
        cache: Optional[ArtifactCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        graph: Optional[StageGraph] = None,
    ) -> None:
        from repro.bgp.propagation import BACKENDS, DEFAULT_BACKEND
        from repro.runtime.context import (
            DEFAULT_INFERENCE_BACKEND,
            INFERENCE_BACKENDS,
        )
        self.spec = _resolve_spec(scenario)
        self.config = config if config is not None else self.spec.config()
        self.inference_options = inference_options or InferenceOptions()
        self.analysis_options = analysis_options or AnalysisOptions(
            figures=self.spec.analyses)
        self.workers = workers
        #: Propagation backend: explicit argument > spec pin > frontier.
        #: Unlike ``workers`` this is part of the propagation stage's
        #: fingerprint (namespace ``backend``), so artifacts computed by
        #: different backends never alias in a shared cache even though
        #: they are equivalent.
        self.backend = backend if backend is not None else (
            self.spec.backend or DEFAULT_BACKEND)
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown propagation backend {self.backend!r} "
                f"(choose from {BACKENDS})")
        #: Inference backend: explicit argument > spec pin > object.
        #: Salted into the *inference* stage's fingerprint (namespace
        #: "inference"), so inference/reachability/analyses artifacts
        #: never alias across data planes while every upstream stage
        #: (topology .. connectivity) stays shared.
        self.inference_backend = inference_backend if inference_backend \
            is not None else (self.spec.inference_backend
                              or DEFAULT_INFERENCE_BACKEND)
        if self.inference_backend not in INFERENCE_BACKENDS:
            raise ValueError(
                f"unknown inference backend {self.inference_backend!r} "
                f"(choose from {INFERENCE_BACKENDS})")
        self.cache = cache if cache is not None else ArtifactCache(
            Path(cache_dir) if cache_dir is not None else None)
        self.graph = graph or self.spec.stage_graph()
        #: stage -> artifact resolved by *this* run (one entry per stage).
        self._resolved: Dict[str, Any] = {}
        #: one event per stage resolved by this run, in resolution order.
        self.events: List[StageEvent] = []
        self._fingerprints: Optional[Dict[str, str]] = None

    # -- fingerprints ---------------------------------------------------------

    def fingerprints(self) -> Dict[str, str]:
        """Fingerprint of every stage under this run's scenario/config."""
        if self._fingerprints is None:
            config_keys = {key for name in self.graph.names()
                           for key in self.graph.stage(name).config_keys}
            config_repr = {key: repr(getattr(self.config, key))
                           for key in sorted(config_keys)}
            options_repr = {
                "inference": (f"{self.inference_options!r}"
                              f"@backend={self.inference_backend}"),
                "analysis": repr(self.analysis_options),
                "backend": repr(self.backend),
                "timeline": repr(getattr(self.spec, "timeline", None)),
            }
            self._fingerprints = self.graph.fingerprints(
                config_repr, options_repr, salt=self.spec.name)
        return self._fingerprints

    def fingerprint(self, stage_name: str) -> str:
        """The fingerprint of one stage."""
        return self.fingerprints()[stage_name]

    # -- execution ------------------------------------------------------------

    def artifact(self, stage_name: str) -> Any:
        """The artifact of *stage_name*, computing it (and its ancestors)
        on cache miss."""
        if stage_name in self._resolved:
            return self._resolved[stage_name]
        stage = self.graph.stage(stage_name)
        fingerprint = self.fingerprint(stage_name)
        status, value = self.cache.get(stage_name, fingerprint,
                                       allow_disk=stage.persist)
        seconds = 0.0
        if status is None:
            for dep in stage.deps:
                self.artifact(dep)
            started = time.perf_counter()
            value = stage.fn(self)
            seconds = time.perf_counter() - started
            self.cache.put(stage_name, fingerprint, value,
                           persist=stage.persist)
            status = STATUS_COMPUTED
        self._resolved[stage_name] = value
        self.events.append(StageEvent(stage_name, status, seconds, fingerprint))
        return value

    # -- convenience accessors ------------------------------------------------

    def scenario(self) -> "Scenario":
        """The assembled measurement environment."""
        return self.artifact("scenario")

    def connectivity(self):
        """Connectivity-discovery reports per IXP."""
        return self.artifact("connectivity")

    def inference(self):
        """The end-to-end MLP inference result."""
        return self.artifact("inference")

    def reachability(self):
        """The shared :class:`~repro.runtime.reachmatrix.ReachabilityMatrix`
        artifact (per-IXP ALLOW planes + provenance) of the inference."""
        return self.artifact("reachability")

    def analyses(self) -> Dict[str, dict]:
        """The per-figure analysis summaries."""
        return self.artifact("analyses")

    def timeline(self):
        """The event-timeline replay report
        (:class:`~repro.scenarios.events.TimelineReport`; ``None`` for
        specs without a timeline)."""
        return self.artifact("timeline")

    def table2(self) -> List[Dict[str, object]]:
        """The paper's Table 2 rows (via the analyses stage)."""
        summaries = self.analyses()
        if "table2" in summaries:
            return summaries["table2"]["rows"]
        from repro.pipeline.analyses import _analyse_table2
        return _analyse_table2(self.scenario(), self.inference(),
                               self.reachability(),
                               self.analysis_options)["rows"]

    # -- export ---------------------------------------------------------------

    def export_reachability(self, directory: Union[str, Path],
                            size: Optional[str] = None) -> Path:
        """Write the reachability matrix (plus Table 2 provenance) as the
        mmap-able on-disk artifact of :mod:`repro.service.artifact`.

        Runs the pipeline through the reachability/analyses stages if
        needed, then persists packed member x member planes that any
        number of query workers can share via ``np.load(mmap_mode="r")``.
        Returns the artifact directory.
        """
        from repro.service.artifact import save_matrix
        return save_matrix(self.reachability(), directory,
                           scenario=self.spec.name, size=size,
                           table2=self.table2())

    # -- introspection --------------------------------------------------------

    def stage_statuses(self) -> Dict[str, str]:
        """Stage -> cache status for every stage this run resolved."""
        return {event.stage: event.status for event in self.events}

    def cache_summary(self) -> Dict[str, int]:
        """Counts of resolved stages per cache status."""
        summary: Dict[str, int] = {}
        for event in self.events:
            summary[event.status] = summary.get(event.status, 0) + 1
        return summary

    def runtime_stats(self) -> Dict[str, int]:
        """Size/accounting counters of the scenario's runtime context
        (interner sizes, route-cache entries/bytes/hits/misses, ...).

        Resolves the scenario stage if it has not run yet; the
        route-cache counters make memoisation behaviour observable from
        a run handle (e.g. repeated propagation hitting cached blocks).
        """
        return self.scenario().context.stats()

    def __repr__(self) -> str:
        resolved = ", ".join(f"{e.stage}:{e.status}" for e in self.events)
        return (f"ScenarioRun({self.spec.name}: "
                f"{resolved or 'nothing resolved'})")
