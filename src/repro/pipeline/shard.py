"""Multi-process sharding of the embarrassingly parallel stages.

The propagation stage is origin-parallel: every origin's propagation is
independent, and the recorded route fragments cross the worker boundary
columnar — :class:`~repro.runtime.fragments.RouteBlock`s pickle as a
handful of numpy arrays per origin instead of thousands of route
tuples, so IPC cost scales with array bytes, not route count.
:func:`sharded_propagate` ships a compact
:class:`~repro.runtime.snapshot.ContextSnapshot` to each worker once
(via the pool initializer), fans contiguous **origin batches** out with
``ProcessPoolExecutor.map`` (which preserves order), and merges the
fragments back **in the original origin order** — so the assembled
:class:`~repro.bgp.propagation.PropagationResult` is bit-identical to a
single-process run, including dict insertion orders.

Each shard is a batch, not a single origin: the worker resolves its
whole chunk through
:meth:`~repro.bgp.propagation.PropagationEngine.batch_fragments`, so
under the vectorized backends (batched, compiled) one chunk costs a few
vectorized sweeps instead of per-origin walks.  For those backends each
worker receives exactly one contiguous chunk — maximal batch width per
worker — and the parent's
:class:`~repro.runtime.batched.PropagationPlan` is compiled once and
shipped inside the snapshot, so P workers each replay the same schedule
and sharding multiplies with batching.  The snapshot carries the
backend selection, so workers always propagate with the parent's
engine.

Worker-side state is reconstructed, never inherited: the initializer
rebuilds a fresh :class:`PipelineContext` from the snapshot, which keeps
the protocol identical under fork and spawn start methods.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.propagation import (
    OriginSpec,
    PropagatedRoute,
    PropagationResult,
)
from repro.runtime.context import PipelineContext
from repro.runtime.snapshot import ContextSnapshot, restore_context, snapshot_context

#: Chunks handed out per worker under per-origin backends; >1 smooths
#: imbalance between origins.
CHUNKS_PER_WORKER = 4

#: Backends whose workers replay whole origin batches vectorized: each
#: worker gets ONE contiguous chunk (maximal batch width, one plan
#: replay) instead of several small ones — sharding and batching then
#: multiply rather than compete for batch width.
VECTORIZED_BACKENDS = frozenset({"batched", "compiled"})

#: One origin's recorded fragments: (best routes, offered routes) —
#: RouteBlocks under the columnar plane, route lists otherwise.
Fragments = Tuple[Sequence[PropagatedRoute], Sequence[PropagatedRoute]]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count knob: None/0/1 mean single-process."""
    if workers is None:
        return 1
    if workers < 0:
        return max(1, (os.cpu_count() or 1))
    return max(1, workers)


def chunked(items: Sequence, num_chunks: int) -> List[List]:
    """Split *items* into at most *num_chunks* contiguous, order-preserving
    chunks of near-equal size (no empty chunks, unless *items* is empty)."""
    items = list(items)
    num_chunks = max(1, min(num_chunks, len(items)))
    base, extra = divmod(len(items), num_chunks)
    chunks: List[List] = []
    start = 0
    for index in range(num_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


# -- worker side --------------------------------------------------------------

_WORKER_ENGINE = None


def _init_propagation_worker(
    snapshot: ContextSnapshot,
    record_at: Optional[FrozenSet[int]],
    record_alternatives_at: FrozenSet[int],
) -> None:
    """Pool initializer: rebuild the context and bind one engine."""
    global _WORKER_ENGINE
    context = restore_context(snapshot)
    _WORKER_ENGINE = context.engine(
        record_at=record_at,
        record_alternatives_at=record_alternatives_at,
    )


def _propagate_chunk(specs: List[OriginSpec]) -> List[Fragments]:
    """Compute the recorded fragments for one origin batch."""
    engine = _WORKER_ENGINE
    assert engine is not None, "propagation worker not initialised"
    return engine.batch_fragments(specs)


# -- parent side ---------------------------------------------------------------

def sharded_fragments(
    context: PipelineContext,
    origins: Sequence[OriginSpec],
    record_at: Optional[FrozenSet[int]],
    record_alternatives_at: FrozenSet[int],
    workers: Optional[int],
    backend: Optional[str] = None,
) -> List[Fragments]:
    """Recorded fragments for *origins*, in origin order, sharded
    across *workers* processes.

    The raw fragment plane under :func:`sharded_propagate`, also used by
    the delta plane (:mod:`repro.runtime.delta`) to recompute just the
    affected origins.  Falls back to the in-process engine for
    ``workers <= 1`` (or a single origin); the sharded path yields the
    exact fragment sequence of the fallback.
    """
    origins = list(origins)
    worker_count = resolve_workers(workers)
    if backend is not None:
        from repro.bgp.propagation import BACKENDS
        if backend not in BACKENDS:
            raise ValueError(f"unknown propagation backend {backend!r} "
                             f"(choose from {BACKENDS})")

    if worker_count <= 1 or len(origins) < 2:
        engine = context.engine(record_at=record_at,
                                record_alternatives_at=record_alternatives_at,
                                backend=backend)
        return engine.batch_fragments(origins)

    effective_backend = backend if backend is not None else context.backend
    vectorized = effective_backend in VECTORIZED_BACKENDS
    # Vectorized workers replay the parent's compiled plan: build it
    # once here and ship it in the snapshot instead of once per worker.
    snapshot = snapshot_context(context, include_plan=vectorized)
    if backend is not None and backend != snapshot.backend:
        snapshot = replace(snapshot, backend=backend)
    chunks_per_worker = 1 if vectorized else CHUNKS_PER_WORKER
    chunks = chunked(origins, worker_count * chunks_per_worker)
    fragments: List[Fragments] = []
    with ProcessPoolExecutor(
        max_workers=min(worker_count, len(chunks)),
        initializer=_init_propagation_worker,
        initargs=(snapshot, record_at, record_alternatives_at),
    ) as pool:
        for chunk_fragments in pool.map(_propagate_chunk, chunks):
            fragments.extend(chunk_fragments)
    return fragments


def sharded_propagate(
    context: PipelineContext,
    origins: Iterable[OriginSpec],
    record_at: Optional[Iterable[int]],
    record_alternatives_at: Iterable[int],
    workers: Optional[int],
    backend: Optional[str] = None,
) -> PropagationResult:
    """Propagate *origins*, sharded across *workers* processes.

    Falls back to the in-process engine for ``workers <= 1`` (or a
    single origin).  The sharded path produces a result bit-identical to
    the fallback: fragments are merged in origin order, replicating the
    single-process recording sequence exactly.  *backend* overrides the
    context's propagation backend for this call — parent engine and
    worker snapshots alike — without mutating the context.
    """
    origins = list(origins)
    worker_count = resolve_workers(workers)
    record = frozenset(record_at) if record_at is not None else None
    record_alt = frozenset(record_alternatives_at or ())

    if worker_count <= 1 or len(origins) < 2:
        # In-process fast path keeps PropagationEngine.propagate's
        # origin-spec bookkeeping (and its isolated-origin handling).
        engine = context.engine(record_at=record,
                                record_alternatives_at=record_alt,
                                backend=backend)
        return engine.propagate(origins)

    fragments = sharded_fragments(context, origins, record, record_alt,
                                  workers, backend=backend)
    result = PropagationResult()
    for spec, (best, offered) in zip(origins, fragments):
        result._record_origin(spec)
        # Blocks stay columnar through the merge; the result folds
        # them into its dicts lazily, in this exact recording order
        # (bit-identical to single-process).
        result._record_fragments(spec.asn, best, offered)
    return result
