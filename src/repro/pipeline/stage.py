"""Declarative stages and the stage graph.

A :class:`Stage` names one unit of the scenario pipeline (topology
generation, route announcement, propagation, collector archiving,
inference, analyses, ...), the stages it consumes (``deps``) and the
configuration it reads (``config_keys`` naming
:class:`~repro.scenarios.europe2013.ScenarioConfig` attributes, plus an
optional ``options_key`` naming a run-level options namespace).

From those declarations the :class:`StageGraph` derives a deterministic
**fingerprint** per stage:

    fingerprint(stage) = sha256(name, version,
                                {key: repr(config value)},
                                repr(options),
                                {dep: fingerprint(dep)})

Upstream fingerprints are part of the payload, so invalidation cascades
exactly along dependency edges: changing an analysis-only knob leaves
every build stage's fingerprint — and therefore its cached artifact —
untouched, while changing the generator config re-keys everything
downstream of the topology.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Stage:
    """One declared pipeline stage.

    ``fn`` receives the executing :class:`~repro.pipeline.run.ScenarioRun`
    and returns the stage artifact; it reads upstream artifacts through
    ``run.artifact(dep)``.  ``persist=True`` opts the artifact into the
    on-disk cache layer (when the run has one).  Bump ``version`` when
    the stage's computation changes in a way ``config_keys`` cannot see.
    """

    name: str
    fn: Callable[[Any], Any] = field(compare=False, repr=False)
    deps: Tuple[str, ...] = ()
    config_keys: Tuple[str, ...] = ()
    options_key: Optional[str] = None
    version: int = 1
    persist: bool = False


class StageGraph:
    """A validated, topologically ordered set of stages."""

    def __init__(self, stages: Iterable[Stage]) -> None:
        self._stages: Dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self._stages:
                raise ValueError(f"duplicate stage {stage.name!r}")
            self._stages[stage.name] = stage
        for stage in self._stages.values():
            for dep in stage.deps:
                if dep not in self._stages:
                    raise ValueError(
                        f"stage {stage.name!r} depends on unknown stage {dep!r}")
        self._order = self._topological_order()

    # -- structure -----------------------------------------------------------

    def stage(self, name: str) -> Stage:
        """The stage registered under *name* (KeyError if unknown)."""
        return self._stages[name]

    def names(self) -> List[str]:
        """All stage names in topological order."""
        return list(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._stages

    def __len__(self) -> int:
        return len(self._stages)

    def ancestors(self, name: str) -> List[str]:
        """Transitive dependencies of *name*, in topological order."""
        wanted = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for dep in self._stages[current].deps:
                if dep not in wanted:
                    wanted.add(dep)
                    frontier.append(dep)
        return [n for n in self._order if n in wanted]

    def _topological_order(self) -> Tuple[str, ...]:
        order: List[str] = []
        state: Dict[str, int] = {}   # 0 unvisited / 1 visiting / 2 done

        def visit(name: str, chain: Tuple[str, ...]) -> None:
            mark = state.get(name, 0)
            if mark == 2:
                return
            if mark == 1:
                raise ValueError(
                    f"stage cycle: {' -> '.join(chain + (name,))}")
            state[name] = 1
            for dep in self._stages[name].deps:
                visit(dep, chain + (name,))
            state[name] = 2
            order.append(name)

        for name in self._stages:
            visit(name, ())
        return tuple(order)

    # -- fingerprints ---------------------------------------------------------

    def fingerprints(
        self,
        config_repr: Mapping[str, str],
        options_repr: Mapping[str, str],
        salt: str = "",
    ) -> Dict[str, str]:
        """Fingerprint every stage.

        ``config_repr`` maps every config key referenced by any stage to
        a deterministic string form; ``options_repr`` does the same per
        options namespace; ``salt`` namespaces the whole graph (the
        scenario name, so families with coincidentally equal configs
        never collide in a shared artifact cache).  Execution details
        (worker counts, cache placement) are deliberately absent:
        sharded and single-process runs share fingerprints because they
        produce identical artifacts.
        """
        result: Dict[str, str] = {}
        for name in self._order:
            stage = self._stages[name]
            payload = {
                "stage": stage.name,
                "version": stage.version,
                "salt": salt,
                "config": {key: config_repr[key] for key in stage.config_keys},
                "options": options_repr.get(stage.options_key)
                if stage.options_key else None,
                "deps": {dep: result[dep] for dep in stage.deps},
            }
            blob = json.dumps(payload, sort_keys=True)
            result[name] = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        return result
