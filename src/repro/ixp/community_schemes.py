"""Per-IXP route-server community grammars (Table 1 of the paper).

Every IXP documents a small set of special-purpose BGP community values
its route servers interpret:

* ``ALL``      — announce to every RS member (the default behaviour);
* ``EXCLUDE``  — block the announcement towards a specific member;
* ``NONE``     — block the announcement towards everybody;
* ``INCLUDE``  — allow the announcement towards a specific member.

The encoding differs between IXPs (DE-CIX/MSK-IX encode the route-server
ASN, ECIX uses fixed offsets in the 64960/65000 range, some IXPs rely on
the ``0:peer-asn`` exclude form with the ALL community omitted), which is
exactly what makes IXP identification from passive data non-trivial
(section 4.2).  :class:`CommunityScheme` captures one grammar and knows
how to encode an export policy into communities and how to classify an
observed community back into an (action, peer ASN) pair.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.asn import Private16BitMapper, is_32bit_asn
from repro.bgp.communities import Community


class RSAction(enum.Enum):
    """Actions a route-server community can signal."""

    ALL = "all"
    EXCLUDE = "exclude"
    NONE = "none"
    INCLUDE = "include"


@dataclass(frozen=True)
class Classification:
    """Result of classifying one community under one scheme."""

    action: RSAction
    peer_asn: Optional[int] = None


@dataclass(frozen=True)
class CommunityScheme:
    """The community grammar of a single IXP route server.

    ``exclude_high`` / ``include_high`` are the upper 16 bits used for the
    per-peer EXCLUDE / INCLUDE forms; ``all_community`` and
    ``none_community`` are the fixed-valued forms.  ``omit_all_by_default``
    reproduces operators that leave out the redundant ALL community, which
    removes the route-server ASN from the community set and forces the
    excluded-member disambiguation path of section 4.2.
    """

    ixp_name: str
    rs_asn: int
    all_community: Community
    none_community: Community
    exclude_high: int
    include_high: int
    omit_all_by_default: bool = False

    # -- constructors for the Table 1 families ---------------------------------

    @classmethod
    def rs_asn_style(cls, ixp_name: str, rs_asn: int,
                     omit_all_by_default: bool = False) -> "CommunityScheme":
        """DE-CIX / MSK-IX style: ALL=rs:rs, EXCLUDE=0:peer, NONE=0:rs,
        INCLUDE=rs:peer."""
        if is_32bit_asn(rs_asn):
            raise ValueError("route-server ASN must fit in 16 bits for this style")
        return cls(
            ixp_name=ixp_name,
            rs_asn=rs_asn,
            all_community=Community(rs_asn, rs_asn),
            none_community=Community(0, rs_asn),
            exclude_high=0,
            include_high=rs_asn,
            omit_all_by_default=omit_all_by_default,
        )

    @classmethod
    def zero_exclude_style(cls, ixp_name: str, rs_asn: int) -> "CommunityScheme":
        """Same grammar as :meth:`rs_asn_style` but the ALL community is
        customarily omitted, leaving only ``0:peer-asn`` EXCLUDE values in
        announcements (the MSK-IX ambiguity discussed in section 4.2)."""
        return cls.rs_asn_style(ixp_name, rs_asn, omit_all_by_default=True)

    @classmethod
    def offset_style(cls, ixp_name: str, rs_asn: int,
                     exclude_high: int = 64960,
                     include_high: int = 65000) -> "CommunityScheme":
        """ECIX style: ALL=rs:rs, EXCLUDE=64960:peer, NONE=65000:0,
        INCLUDE=65000:peer."""
        if is_32bit_asn(rs_asn):
            raise ValueError("route-server ASN must fit in 16 bits for this style")
        return cls(
            ixp_name=ixp_name,
            rs_asn=rs_asn,
            all_community=Community(rs_asn, rs_asn),
            none_community=Community(include_high, 0),
            exclude_high=exclude_high,
            include_high=include_high,
        )

    @classmethod
    def from_style(cls, style: str, ixp_name: str, rs_asn: int) -> "CommunityScheme":
        """Build a scheme from a style name used by the generator specs."""
        if style == "rs-asn":
            return cls.rs_asn_style(ixp_name, rs_asn)
        if style == "zero-exclude":
            return cls.zero_exclude_style(ixp_name, rs_asn)
        if style == "offset":
            return cls.offset_style(ixp_name, rs_asn)
        raise ValueError(f"unknown community scheme style {style!r}")

    # -- encoding ---------------------------------------------------------------

    def all_(self) -> Community:
        """The ALL community."""
        return self.all_community

    def none(self) -> Community:
        """The NONE community."""
        return self.none_community

    def exclude(self, peer_asn: int, mapper: Optional[Private16BitMapper] = None) -> Community:
        """EXCLUDE community for *peer_asn* (mapped to 16 bits if needed)."""
        return Community(self.exclude_high, self._encode_peer(peer_asn, mapper))

    def include(self, peer_asn: int, mapper: Optional[Private16BitMapper] = None) -> Community:
        """INCLUDE community for *peer_asn* (mapped to 16 bits if needed)."""
        return Community(self.include_high, self._encode_peer(peer_asn, mapper))

    def _encode_peer(self, peer_asn: int, mapper: Optional[Private16BitMapper]) -> int:
        if is_32bit_asn(peer_asn):
            if mapper is None:
                raise ValueError(
                    f"32-bit ASN {peer_asn} requires a Private16BitMapper")
            return mapper.alias_for(peer_asn)
        return peer_asn

    def encode_policy(
        self,
        mode: str,
        listed: Iterable[int],
        mapper: Optional[Private16BitMapper] = None,
        include_all_marker: Optional[bool] = None,
    ) -> FrozenSet[Community]:
        """Encode an export policy into the community set a member attaches.

        ``mode`` is ``"all-except"`` or ``"none-except"``; ``listed`` holds
        the excluded / included peer ASNs respectively.
        """
        communities: Set[Community] = set()
        listed = list(listed)
        if mode == "all-except":
            if include_all_marker is None:
                include_all_marker = not self.omit_all_by_default
            if include_all_marker:
                communities.add(self.all_community)
            for peer in listed:
                communities.add(self.exclude(peer, mapper))
        elif mode == "none-except":
            communities.add(self.none_community)
            for peer in listed:
                communities.add(self.include(peer, mapper))
        else:
            raise ValueError(f"unknown export mode {mode!r}")
        return frozenset(communities)

    # -- classification -----------------------------------------------------------

    def classify(self, community: Community) -> Optional[Classification]:
        """Interpret *community* under this scheme, or None if it does not
        belong to the scheme's grammar."""
        if community == self.all_community:
            return Classification(RSAction.ALL)
        if community == self.none_community:
            return Classification(RSAction.NONE)
        if community.high == self.exclude_high:
            return Classification(RSAction.EXCLUDE, community.low)
        if community.high == self.include_high:
            return Classification(RSAction.INCLUDE, community.low)
        return None

    def classify_set(
        self, communities: Iterable[Community]
    ) -> List[Tuple[Community, Classification]]:
        """Classify every community that belongs to this scheme."""
        result = []
        for community in communities:
            classification = self.classify(community)
            if classification is not None:
                result.append((community, classification))
        return result

    def mentions_rs_asn(self, communities: Iterable[Community]) -> bool:
        """True if any community encodes the route-server ASN in either
        half — the primary IXP-identification signal of section 4.2."""
        for community in communities:
            if community.high == self.rs_asn or community.low == self.rs_asn:
                return True
        return False

    def is_rs_community(self, community: Community) -> bool:
        """True if *community* belongs to this scheme's grammar."""
        return self.classify(community) is not None

    def table1_row(self) -> Dict[str, str]:
        """The scheme rendered as a row of the paper's Table 1."""
        return {
            "IXP": self.ixp_name,
            "RS-ASN": str(self.rs_asn),
            "ALL": str(self.all_community),
            "EXCLUDE": f"{self.exclude_high}:peer-asn",
            "NONE": str(self.none_community),
            "INCLUDE": f"{self.include_high}:peer-asn",
        }


class SchemeRegistry:
    """All known IXP community schemes, indexed by IXP name."""

    def __init__(self, schemes: Iterable[CommunityScheme] = ()) -> None:
        self._schemes: Dict[str, CommunityScheme] = {}
        self._version = 0
        for scheme in schemes:
            self.add(scheme)

    def add(self, scheme: CommunityScheme) -> None:
        """Register *scheme* (replacing any previous scheme for the IXP)."""
        self._schemes[scheme.ixp_name] = scheme
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every registration; caches built
        on registry lookups validate against it."""
        return self._version

    def get(self, ixp_name: str) -> CommunityScheme:
        """Scheme for *ixp_name* (KeyError if unknown)."""
        return self._schemes[ixp_name]

    def __contains__(self, ixp_name: str) -> bool:
        return ixp_name in self._schemes

    def __iter__(self):
        return iter(self._schemes.values())

    def __len__(self) -> int:
        return len(self._schemes)

    def ixp_names(self) -> List[str]:
        """All registered IXP names."""
        return sorted(self._schemes)

    def schemes_for_rs_asn(self, rs_asn: int) -> List[CommunityScheme]:
        """Schemes whose route server uses *rs_asn*."""
        return [s for s in self._schemes.values() if s.rs_asn == rs_asn]

    def table1(self) -> List[Dict[str, str]]:
        """The registry rendered as the paper's Table 1."""
        return [self._schemes[name].table1_row() for name in sorted(self._schemes)]


def classify_against_schemes(
    communities: Iterable[Community],
    registry: SchemeRegistry,
) -> Dict[str, List[Tuple[Community, Classification]]]:
    """Classify a community set under every scheme in *registry*.

    Returns only the IXPs for which at least one community matched; the
    caller (the passive-inference IXP identifier) decides which candidate
    IXP actually applied the values.
    """
    matches: Dict[str, List[Tuple[Community, Classification]]] = {}
    community_list = list(communities)
    for scheme in registry:
        classified = scheme.classify_set(community_list)
        if classified:
            matches[scheme.ixp_name] = classified
    return matches
