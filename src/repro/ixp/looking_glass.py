"""Looking-glass servers.

Two kinds of looking glasses matter to the paper:

* :class:`RouteServerLookingGlass` — the LG an IXP provides in front of
  its route server.  It answers the three commands of section 4.1
  (``show ip bgp`` summary, ``show ip bgp neighbor <addr> routes``,
  ``show ip bgp <prefix>``) and is the source of both connectivity and
  reachability data for active inference.
* :class:`ASLookingGlass` — an LG operated by an AS (an RS member or one
  of its customers).  It is used both as a *third-party* source of RS
  communities when an IXP has no LG of its own, and as the validation
  oracle of section 5.1.  Crucially it either displays all known paths or
  only the best path, which caps how many links can be confirmed
  (figure 8).

Every query is counted so the querying-cost analysis of section 4.3 can
be reproduced exactly, and an optional rate limit models the 1 query /
10 s constraint the authors worked under.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.communities import Community
from repro.bgp.prefix import Prefix
from repro.ixp.route_server import RouteServer, RouteServerEntry


class RateLimitExceeded(RuntimeError):
    """Raised when a looking glass refuses a query due to rate limiting."""


@dataclass(frozen=True)
class LGRoute:
    """One route displayed by a looking glass."""

    prefix: Prefix
    as_path: Tuple[int, ...]
    communities: FrozenSet[Community] = frozenset()
    best: bool = False
    learned_from: Optional[int] = None

    @property
    def origin_asn(self) -> int:
        """Origin AS of the displayed route."""
        return self.as_path[-1] if self.as_path else -1


class LGQueryCounter:
    """Counts queries issued against a looking glass, by command."""

    def __init__(self, max_queries: Optional[int] = None) -> None:
        self.max_queries = max_queries
        self.counts: Dict[str, int] = {}

    def record(self, command: str) -> None:
        """Record one query; raises :class:`RateLimitExceeded` beyond the cap."""
        if self.max_queries is not None and self.total >= self.max_queries:
            raise RateLimitExceeded(
                f"query budget of {self.max_queries} exhausted")
        self.counts[command] = self.counts.get(command, 0) + 1

    @property
    def total(self) -> int:
        """Total number of queries issued."""
        return sum(self.counts.values())

    def reset(self) -> None:
        """Forget all recorded queries."""
        self.counts.clear()

    def estimated_duration(self, seconds_per_query: float = 10.0) -> float:
        """Wall-clock time at the given query rate limit (section 4.3 uses
        one query per 10 seconds)."""
        return self.total * seconds_per_query


class RouteServerLookingGlass:
    """LG interface in front of an IXP route server."""

    def __init__(self, route_server: RouteServer,
                 max_queries: Optional[int] = None) -> None:
        self.route_server = route_server
        self.counter = LGQueryCounter(max_queries)

    @property
    def ixp_name(self) -> str:
        """Name of the IXP whose route server this LG fronts."""
        return self.route_server.ixp_name

    # -- the three commands of section 4.1 -----------------------------------------

    def show_ip_bgp_summary(self) -> List[Tuple[str, int]]:
        """Step 1: the BGP summary — (neighbor address, ASN) of every
        member session on the route server."""
        self.counter.record("show ip bgp")
        return [(self.route_server.member_ip(asn), asn)
                for asn in self.route_server.members()]

    def show_ip_bgp_neighbor_routes(self, neighbor_address: str) -> List[Prefix]:
        """Step 2: prefixes advertised to the RS by the given neighbor."""
        self.counter.record("show ip bgp neighbor routes")
        member = self.route_server.member_by_ip(neighbor_address)
        return self.route_server.announced_prefixes(member)

    def show_ip_bgp_prefix(self, prefix: Prefix) -> List[LGRoute]:
        """Step 3: all paths the route server holds for *prefix*, with the
        communities each announcing member attached."""
        self.counter.record("show ip bgp prefix")
        entries = self.route_server.routes_for_prefix(prefix)
        return [
            LGRoute(prefix=entry.prefix, as_path=entry.as_path,
                    communities=entry.communities, best=(index == 0),
                    learned_from=entry.member_asn)
            for index, entry in enumerate(entries)
        ]


class ASLookingGlass:
    """LG operated by an AS, showing that AS's own BGP view.

    ``display_all_paths`` distinguishes the two LG flavours of figure 8.
    The view is loaded by the scenario layer from the route-server exports
    towards the AS and/or from the propagation engine's result for the AS.
    """

    def __init__(
        self,
        asn: int,
        display_all_paths: bool = True,
        max_queries: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        self.asn = asn
        self.display_all_paths = display_all_paths
        self.name = name or f"AS{asn}-lg"
        self.counter = LGQueryCounter(max_queries)
        self._routes: Dict[Prefix, List[LGRoute]] = {}
        #: bulk loads awaiting materialisation: (prefixes, block, rows)
        #: groups in load order.  Routes for a prefix materialise on the
        #: first query for that prefix, so building a large validation
        #: LG costs one list append per origin, not one LGRoute per
        #: (route, prefix) pair.
        self._groups: List[Tuple[Tuple[Prefix, ...], object, List[int]]] = []
        self._group_index: Optional[Dict[Prefix, List[int]]] = None
        self._view_cache: Dict[Prefix, List[LGRoute]] = {}
        #: monotonic mutation counter, bumped whenever the view changes;
        #: caches keyed on this LG's view validate against it.
        self.version = 0

    # -- view loading ----------------------------------------------------------------

    def load_route(self, route: LGRoute) -> None:
        """Add one route to the LG's view."""
        if self._groups:
            self._flush_groups()
        self._routes.setdefault(route.prefix, []).append(route)
        self.version += 1

    def load_route_blocks(self, prefixes: Sequence[Prefix], block,
                          rows: Sequence[int]) -> None:
        """Bulk-load one origin's candidate routes for *prefixes*.

        *rows* index a :class:`~repro.runtime.fragments.RouteBlock` in
        ``all_paths`` order — the first row is displayed as the best
        path.  Equivalent to ``load_route(LGRoute(...))`` per (row,
        prefix) pair, but the LGRoutes only materialise when a prefix
        is actually queried.
        """
        if not prefixes or not rows:
            return
        self._groups.append((tuple(prefixes), block, list(rows)))
        self._group_index = None
        self._view_cache.clear()
        self.version += 1

    def _expand_group(self, prefix: Prefix, block,
                      rows: Sequence[int]) -> List[LGRoute]:
        """One group's LGRoutes for *prefix* (first row is best)."""
        return [LGRoute(prefix=prefix,
                        as_path=block.path(row),
                        communities=block.communities_at(row),
                        best=(index == 0),
                        learned_from=block.learned_from_at(row))
                for index, row in enumerate(rows)]

    def _flush_groups(self) -> None:
        """Materialise every pending bulk load into the eager view.

        Called when eager-view operations (``load_route``,
        ``mark_best_paths``) interleave with bulk loads; per-prefix
        route order is exactly the order route-by-route loading would
        have produced.
        """
        groups, self._groups = self._groups, []
        self._group_index = None
        self._view_cache.clear()
        for prefixes, block, rows in groups:
            for prefix in prefixes:
                bucket = self._routes.setdefault(prefix, [])
                bucket.extend(self._expand_group(prefix, block, rows))

    def _view_for(self, prefix: Prefix) -> List[LGRoute]:
        """The full (eager + pending-group) route list for *prefix*."""
        if not self._groups:
            return self._routes.get(prefix, [])
        cached = self._view_cache.get(prefix)
        if cached is None:
            index = self._group_index
            if index is None:
                index = self._group_index = {}
                for group_id, (prefixes, _block, _rows) in \
                        enumerate(self._groups):
                    for name in prefixes:
                        index.setdefault(name, []).append(group_id)
            routes = list(self._routes.get(prefix, ()))
            for group_id in index.get(prefix, ()):
                _prefixes, block, rows = self._groups[group_id]
                routes.extend(self._expand_group(prefix, block, rows))
            cached = self._view_cache[prefix] = routes
        return cached

    def load_routes(self, routes: Iterable[LGRoute]) -> None:
        """Add many routes to the LG's view."""
        for route in routes:
            self.load_route(route)

    def load_route_server_exports(self, route_server: RouteServer,
                                  best: bool = False) -> int:
        """Load everything *route_server* exports to this AS.

        Returns the number of routes loaded.  The communities attached by
        the announcing members are preserved, which is what makes member
        LGs a usable third-party source of RS communities (section 4.1).
        """
        if not route_server.is_member(self.asn):
            return 0
        count = 0
        for entry in route_server.exports_to(self.asn):
            self.load_route(LGRoute(
                prefix=entry.prefix,
                as_path=entry.as_path,
                communities=entry.communities,
                best=best,
                learned_from=entry.member_asn,
            ))
            count += 1
        return count

    def mark_best_paths(self) -> None:
        """Recompute the best flag: the shortest path (then lowest first
        hop) per prefix is marked best, everything else non-best."""
        if self._groups:
            self._flush_groups()
        for prefix, routes in self._routes.items():
            if not routes:
                continue
            ordered = sorted(
                routes,
                key=lambda r: (0 if r.best else 1, len(r.as_path),
                               r.as_path[0] if r.as_path else -1))
            chosen = ordered[0]
            self._routes[prefix] = [
                LGRoute(prefix=r.prefix, as_path=r.as_path,
                        communities=r.communities, best=(r is chosen),
                        learned_from=r.learned_from)
                for r in routes
            ]
        self.version += 1

    # -- queries ----------------------------------------------------------------------

    def prefixes(self) -> List[Prefix]:
        """Prefixes present in the LG's view (not a counted query)."""
        if not self._groups:
            return sorted(self._routes)
        names = set(self._routes)
        for prefixes, _block, _rows in self._groups:
            names.update(prefixes)
        return sorted(names)

    def show_ip_bgp_prefix(self, prefix: Prefix) -> List[LGRoute]:
        """``show ip bgp <prefix>``: the paths this AS holds for *prefix*.

        Best-path-only LGs return at most one route, which is why links on
        less-preferred paths cannot be confirmed through them.
        """
        self.counter.record("show ip bgp prefix")
        routes = self._view_for(prefix)
        if not routes:
            return []
        ordered = sorted(routes, key=lambda r: (not r.best, len(r.as_path)))
        if self.display_all_paths:
            return list(ordered)
        return [ordered[0]]

    def visible_links(self, prefix: Prefix) -> List[Tuple[int, int]]:
        """AS links visible in the paths returned for *prefix*."""
        links = []
        for route in self.show_ip_bgp_prefix(prefix):
            path = route.as_path
            for left, right in zip(path, path[1:]):
                if left != right:
                    links.append((min(left, right), max(left, right)))
        return links
