"""IXP substrate: route servers, community schemes, looking glasses.

Models the control-plane machinery of an Internet eXchange Point as the
paper relies on it: members announce routes to one or more route servers,
tag them with the IXP's documented BGP community values (ALL / EXCLUDE /
NONE / INCLUDE, Table 1) to control which other members receive them, and
expose looking-glass interfaces that allow non-privileged BGP queries.
"""

from repro.ixp.community_schemes import (
    RSAction,
    CommunityScheme,
    SchemeRegistry,
    classify_against_schemes,
)
from repro.ixp.member import MemberExportPolicy
from repro.ixp.route_server import RouteServer, RouteServerEntry
from repro.ixp.ixp import IXP
from repro.ixp.looking_glass import (
    LGRoute,
    LGQueryCounter,
    RouteServerLookingGlass,
    ASLookingGlass,
    RateLimitExceeded,
)

__all__ = [
    "RSAction",
    "CommunityScheme",
    "SchemeRegistry",
    "classify_against_schemes",
    "MemberExportPolicy",
    "RouteServer",
    "RouteServerEntry",
    "IXP",
    "LGRoute",
    "LGQueryCounter",
    "RouteServerLookingGlass",
    "ASLookingGlass",
    "RateLimitExceeded",
]
