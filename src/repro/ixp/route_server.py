"""IXP route server.

The route server accepts announcements from members, interprets the RS
communities attached to each announcement under the IXP's community
scheme, and re-advertises routes to exactly the members the announcing
member allowed.  Filtering is driven by the *communities actually
attached* (not by the member's ground-truth intent), which is what makes
the substrate faithful: anything the inference algorithm later recovers
was genuinely encoded on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.bgp.asn import Private16BitMapper, is_32bit_asn
from repro.bgp.communities import Community
from repro.bgp.prefix import Prefix
from repro.ixp.community_schemes import CommunityScheme, RSAction
from repro.ixp.member import MemberExportPolicy
from repro.runtime.bitset import BitsetIndex, reciprocal_pairs


@dataclass(frozen=True)
class RouteServerEntry:
    """One route held by the route server."""

    member_asn: int
    prefix: Prefix
    as_path: Tuple[int, ...]
    communities: FrozenSet[Community]

    @property
    def origin_asn(self) -> int:
        """Origin AS of the announced route."""
        return self.as_path[-1] if self.as_path else self.member_asn


class RouteServer:
    """A single IXP route server (one BGP speaker).

    Members are registered with their IXP-LAN IP address and an export
    policy; :meth:`announce` stores a route tagged with the communities
    derived from that policy (or explicitly provided communities, to model
    misconfigurations and per-prefix inconsistencies).
    """

    def __init__(
        self,
        ixp_name: str,
        rs_asn: int,
        scheme: CommunityScheme,
        transparent: bool = True,
    ) -> None:
        self.ixp_name = ixp_name
        self.rs_asn = rs_asn
        self.scheme = scheme
        #: Whether the RS strips its own ASN from re-advertised paths.
        self.transparent = transparent
        self.mapper = Private16BitMapper()
        self._members: Dict[int, MemberExportPolicy] = {}
        self._member_ips: Dict[int, str] = {}
        self._ip_to_member: Dict[str, int] = {}
        #: prefix -> member ASN -> entry
        self._rib: Dict[Prefix, Dict[int, RouteServerEntry]] = {}
        #: communities -> (has NONE, resolved includes, resolved excludes);
        #: invalidated whenever membership (and thus the mapper) changes.
        self._classify_cache: Dict[FrozenSet[Community],
                                   Tuple[bool, FrozenSet[int], FrozenSet[int]]] = {}
        #: monotonic mutation counter, bumped by every membership/RIB
        #: change; caches keyed on looking-glass views (e.g. the bitset
        #: inference backend's observation planes) validate against it.
        self.version = 0

    # -- membership ---------------------------------------------------------------

    def add_member(
        self,
        member_asn: int,
        policy: Optional[MemberExportPolicy] = None,
        ip_address: Optional[str] = None,
    ) -> MemberExportPolicy:
        """Register a member session on the route server."""
        if policy is None:
            policy = MemberExportPolicy.announce_to_all(member_asn, self.ixp_name)
        if policy.member_asn != member_asn:
            raise ValueError("policy member ASN does not match the session ASN")
        self._members[member_asn] = policy
        self.version += 1
        if is_32bit_asn(member_asn):
            self.mapper.register(member_asn)
        if ip_address is None:
            ip_address = f"10.{(member_asn >> 8) & 0xFF}.{member_asn & 0xFF}.1"
        self._member_ips[member_asn] = ip_address
        self._ip_to_member[ip_address] = member_asn
        self._classify_cache.clear()
        return policy

    def remove_member(self, member_asn: int) -> None:
        """Tear down a member session and drop its routes."""
        self._members.pop(member_asn, None)
        self.version += 1
        ip = self._member_ips.pop(member_asn, None)
        if ip is not None:
            self._ip_to_member.pop(ip, None)
        for per_prefix in list(self._rib.values()):
            per_prefix.pop(member_asn, None)
        self._rib = {p: routes for p, routes in self._rib.items() if routes}
        self._classify_cache.clear()

    def members(self) -> List[int]:
        """ASNs of all connected members."""
        return sorted(self._members)

    def num_members(self) -> int:
        """Number of connected members (no sorting, O(1))."""
        return len(self._members)

    def member_set(self) -> Set[int]:
        """ASNs of all connected members as a set view copy."""
        return set(self._members)

    def is_member(self, asn: int) -> bool:
        """True if *asn* has a session with the route server."""
        return asn in self._members

    def member_policy(self, asn: int) -> MemberExportPolicy:
        """Ground-truth export policy of *asn* (KeyError if not a member)."""
        return self._members[asn]

    def member_ip(self, asn: int) -> str:
        """IXP-LAN IP address of *asn*."""
        return self._member_ips[asn]

    def member_by_ip(self, ip_address: str) -> int:
        """Member ASN for an IXP-LAN IP address."""
        return self._ip_to_member[ip_address]

    # -- announcements --------------------------------------------------------------

    def announce(
        self,
        member_asn: int,
        prefix: Prefix,
        as_path: Optional[Iterable[int]] = None,
        communities: Optional[Iterable[Community]] = None,
    ) -> RouteServerEntry:
        """Store an announcement from *member_asn*.

        If *communities* is None they are derived from the member's export
        policy under the IXP scheme; an explicit value models announcements
        whose communities deviate from the member's usual policy.
        """
        if member_asn not in self._members:
            raise KeyError(f"AS{member_asn} is not a member of {self.ixp_name} RS")
        if as_path is None:
            as_path = (member_asn,)
        path = tuple(as_path)
        if not path or path[0] != member_asn:
            path = (member_asn,) + path
        if communities is None:
            policy = self._members[member_asn]
            communities = policy.communities_for(self.scheme, prefix, self.mapper)
        entry = RouteServerEntry(
            member_asn=member_asn,
            prefix=prefix,
            as_path=path,
            communities=frozenset(communities),
        )
        self._rib.setdefault(prefix, {})[member_asn] = entry
        self.version += 1
        return entry

    def announce_policy_prefixes(self, member_asn: int,
                                 prefixes: Iterable[Prefix]) -> List[RouteServerEntry]:
        """Announce every prefix in *prefixes* under the member's policy."""
        return [self.announce(member_asn, prefix) for prefix in prefixes]

    def withdraw(self, member_asn: int, prefix: Prefix) -> bool:
        """Withdraw *prefix* previously announced by *member_asn*."""
        per_prefix = self._rib.get(prefix)
        if not per_prefix or member_asn not in per_prefix:
            return False
        del per_prefix[member_asn]
        if not per_prefix:
            del self._rib[prefix]
        self.version += 1
        return True

    # -- RIB queries -------------------------------------------------------------------

    def prefixes(self) -> List[Prefix]:
        """All prefixes present in the route-server RIB."""
        return sorted(self._rib)

    def routes_for_prefix(self, prefix: Prefix) -> List[RouteServerEntry]:
        """All member announcements for *prefix*."""
        return sorted(self._rib.get(prefix, {}).values(),
                      key=lambda e: e.member_asn)

    def routes_from_member(self, member_asn: int) -> List[RouteServerEntry]:
        """All announcements made by *member_asn*."""
        result = [per_prefix[member_asn] for per_prefix in self._rib.values()
                  if member_asn in per_prefix]
        return sorted(result, key=lambda e: e.prefix)

    def announced_prefixes(self, member_asn: int) -> List[Prefix]:
        """Prefixes announced by *member_asn*."""
        return [entry.prefix for entry in self.routes_from_member(member_asn)]

    def members_announcing(self, prefix: Prefix) -> List[int]:
        """Members that announced *prefix* (figure 5's multiplicity)."""
        return sorted(self._rib.get(prefix, {}))

    def __len__(self) -> int:
        return sum(len(per_prefix) for per_prefix in self._rib.values())

    # -- export filtering -----------------------------------------------------------------

    def allowed_targets(self, entry: RouteServerEntry) -> Set[int]:
        """Members that receive *entry*, derived from its communities.

        The decision follows the scheme semantics: NONE + INCLUDE only
        reaches the included members; otherwise every member except those
        named by EXCLUDE communities receives the route.  Peer ASNs found
        in communities are resolved through the private-ASN mapper so
        32-bit members are filterable.
        """
        has_none, includes, excludes = self._classify(entry.communities)
        others = set(self._members)
        others.discard(entry.member_asn)
        if has_none:
            return others & includes
        return others - excludes

    def _member_allowed(self, member_asn: int, entry: RouteServerEntry) -> bool:
        """O(1) form of ``member_asn in allowed_targets(entry)``."""
        if member_asn == entry.member_asn:
            return False
        has_none, includes, excludes = self._classify(entry.communities)
        if has_none:
            return member_asn in includes
        return member_asn not in excludes

    def _export_mask(self, index: BitsetIndex, entry: RouteServerEntry) -> int:
        """``allowed_targets(entry)`` as a bitmask over *index*.

        Set, predicate and mask forms of the export rule all project the
        same :meth:`_classify` triple, so a semantics change (e.g. a new
        RSAction) lands in one place.
        """
        has_none, includes, excludes = self._classify(entry.communities)
        if has_none:
            mask = index.mask_of(includes)
        else:
            mask = index.full_mask & ~index.mask_of(excludes)
        return mask & ~(1 << index.bit_of[entry.member_asn])

    def _classify(
        self, communities: FrozenSet[Community]
    ) -> Tuple[bool, FrozenSet[int], FrozenSet[int]]:
        """Scheme classification of a community bag, memoised.

        Announcements overwhelmingly share a small number of distinct
        community bags (one per member policy, plus per-prefix
        deviations), so export filtering hits this cache almost always.
        """
        cached = self._classify_cache.get(communities)
        if cached is None:
            classified = self.scheme.classify_set(communities)
            has_none = any(c.action is RSAction.NONE for _, c in classified)
            includes = frozenset(
                self.mapper.resolve(c.peer_asn)
                for _, c in classified
                if c.action is RSAction.INCLUDE and c.peer_asn is not None)
            excludes = frozenset(
                self.mapper.resolve(c.peer_asn)
                for _, c in classified
                if c.action is RSAction.EXCLUDE and c.peer_asn is not None)
            cached = (has_none, includes, excludes)
            self._classify_cache[communities] = cached
        return cached

    def exports_to(self, member_asn: int) -> List[RouteServerEntry]:
        """Routes the route server advertises to *member_asn*.

        The exported path keeps the announcing member as the first hop;
        non-transparent route servers additionally leave their own ASN in
        the path (the artefact observed in 3 of the paper's validation
        cases).
        """
        if member_asn not in self._members:
            raise KeyError(f"AS{member_asn} is not a member of {self.ixp_name} RS")
        exported: List[RouteServerEntry] = []
        for per_prefix in self._rib.values():
            for entry in per_prefix.values():
                if entry.member_asn == member_asn:
                    continue
                if self._member_allowed(member_asn, entry):
                    path = entry.as_path
                    if not self.transparent:
                        path = (self.rs_asn,) + path
                    exported.append(RouteServerEntry(
                        member_asn=entry.member_asn,
                        prefix=entry.prefix,
                        as_path=path,
                        communities=entry.communities,
                    ))
        return sorted(exported, key=lambda e: (e.prefix, e.member_asn))

    # -- ground truth ---------------------------------------------------------------------

    def served_pairs(self) -> Set[Tuple[int, int]]:
        """Ground-truth multilateral peering pairs: (a, b) such that both
        directions are served by the route server for at least one prefix.

        Computed on member bitmasks: each member's union of allowed
        targets over its announcements becomes one integer mask, and the
        reciprocity check is a bitwise AND over the transposed masks.
        """
        index = BitsetIndex(self._members)
        allowed: Dict[int, int] = {}
        for per_prefix in self._rib.values():
            for entry in per_prefix.values():
                bit = index.bit_of[entry.member_asn]
                allowed[bit] = allowed.get(bit, 0) | \
                    self._export_mask(index, entry)
        return reciprocal_pairs(allowed, index.universe)

    def peering_density(self) -> Dict[int, float]:
        """Per-member peering density: established RS peers over possible
        RS peers (figure 12)."""
        members = self.members()
        possible = len(members) - 1
        if possible <= 0:
            return {asn: 0.0 for asn in members}
        degree: Dict[int, int] = {asn: 0 for asn in members}
        for a, b in self.served_pairs():
            degree[a] += 1
            degree[b] += 1
        return {asn: degree[asn] / possible for asn in members}
