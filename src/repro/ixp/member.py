"""Route-server member configuration.

A :class:`MemberExportPolicy` is the member-side ground truth: which other
members should receive the member's routes via the route server, and how
that intent is encoded into RS communities.  The paper observed that the
community values applied by a member are remarkably consistent across its
prefixes (fewer than 0.5% of members differed, and only on <2% of their
prefixes); per-prefix overrides model that residual inconsistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set

from repro.bgp.asn import Private16BitMapper
from repro.bgp.communities import Community
from repro.bgp.prefix import Prefix
from repro.ixp.community_schemes import CommunityScheme

MODE_ALL_EXCEPT = "all-except"
MODE_NONE_EXCEPT = "none-except"


@dataclass
class MemberExportPolicy:
    """Export policy of one member towards one route server.

    ``mode`` is ``"all-except"`` (announce to all members except
    ``listed``) or ``"none-except"`` (announce only to ``listed``).
    ``listed`` holds real member ASNs; 32-bit ASNs are translated to their
    private 16-bit aliases at community-encoding time.
    """

    member_asn: int
    ixp_name: str
    mode: str = MODE_ALL_EXCEPT
    listed: FrozenSet[int] = frozenset()
    #: Optional per-prefix deviations: prefix -> (mode, listed).
    prefix_overrides: Dict[Prefix, "MemberExportPolicy"] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in (MODE_ALL_EXCEPT, MODE_NONE_EXCEPT):
            raise ValueError(f"unknown export mode {self.mode!r}")
        self.listed = frozenset(self.listed)

    # -- semantics ---------------------------------------------------------------

    def allows(self, peer_asn: int, prefix: Optional[Prefix] = None) -> bool:
        """True if routes (for *prefix*, if given) should reach *peer_asn*."""
        policy = self._effective(prefix)
        if policy.mode == MODE_ALL_EXCEPT:
            return peer_asn not in policy.listed
        return peer_asn in policy.listed

    def allowed_members(self, members: Iterable[int],
                        prefix: Optional[Prefix] = None) -> Set[int]:
        """Members (other than the announcer) allowed to receive routes."""
        return {m for m in members
                if m != self.member_asn and self.allows(m, prefix)}

    def blocked_members(self, members: Iterable[int],
                        prefix: Optional[Prefix] = None) -> Set[int]:
        """Members explicitly prevented from receiving routes."""
        return {m for m in members
                if m != self.member_asn and not self.allows(m, prefix)}

    def _effective(self, prefix: Optional[Prefix]) -> "MemberExportPolicy":
        if prefix is not None and prefix in self.prefix_overrides:
            return self.prefix_overrides[prefix]
        return self

    # -- encoding ----------------------------------------------------------------

    def communities_for(
        self,
        scheme: CommunityScheme,
        prefix: Optional[Prefix] = None,
        mapper: Optional[Private16BitMapper] = None,
    ) -> FrozenSet[Community]:
        """The RS communities the member attaches when announcing *prefix*."""
        policy = self._effective(prefix)
        return scheme.encode_policy(policy.mode, sorted(policy.listed), mapper)

    def with_override(self, prefix: Prefix, mode: str,
                      listed: Iterable[int]) -> "MemberExportPolicy":
        """Return a copy with a per-prefix deviation added."""
        override = MemberExportPolicy(
            member_asn=self.member_asn, ixp_name=self.ixp_name,
            mode=mode, listed=frozenset(listed))
        overrides = dict(self.prefix_overrides)
        overrides[prefix] = override
        return MemberExportPolicy(
            member_asn=self.member_asn, ixp_name=self.ixp_name,
            mode=self.mode, listed=self.listed, prefix_overrides=overrides)

    # -- constructors -------------------------------------------------------------

    @classmethod
    def announce_to_all(cls, member_asn: int, ixp_name: str) -> "MemberExportPolicy":
        """The default behaviour: every member receives the routes."""
        return cls(member_asn=member_asn, ixp_name=ixp_name,
                   mode=MODE_ALL_EXCEPT, listed=frozenset())

    @classmethod
    def all_except(cls, member_asn: int, ixp_name: str,
                   excluded: Iterable[int]) -> "MemberExportPolicy":
        """ALL + EXCLUDE policy."""
        return cls(member_asn=member_asn, ixp_name=ixp_name,
                   mode=MODE_ALL_EXCEPT, listed=frozenset(excluded))

    @classmethod
    def none_except(cls, member_asn: int, ixp_name: str,
                    included: Iterable[int]) -> "MemberExportPolicy":
        """NONE + INCLUDE policy."""
        return cls(member_asn=member_asn, ixp_name=ixp_name,
                   mode=MODE_NONE_EXCEPT, listed=frozenset(included))
