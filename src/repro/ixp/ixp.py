"""The IXP object: members, route servers, peering LAN and pricing.

An :class:`IXP` bundles everything the measurement and analysis layers
need to know about one exchange: the full member list (route-server
members are a subset), the route server(s), the peering-LAN addressing
used by looking-glass commands, the pricing model used by the global
estimation of section 5.7, and whether the IXP publishes its member list
(LINX famously does not, forcing the IRR search fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bgp.prefix import Prefix
from repro.bgp.session import bilateral_session_count, multilateral_session_count
from repro.ixp.community_schemes import CommunityScheme
from repro.ixp.member import MemberExportPolicy
from repro.ixp.route_server import RouteServer


@dataclass
class IXP:
    """A single Internet eXchange Point."""

    name: str
    region: str = "eu-west"
    pricing: str = "flat"                      #: "flat" or "usage"
    peering_lan: Prefix = field(default_factory=lambda: Prefix.parse("185.1.0.0/22"))
    publishes_member_list: bool = True
    route_servers: List[RouteServer] = field(default_factory=list)
    #: All ASes present at the exchange (route-server members are a subset).
    members: Set[int] = field(default_factory=set)
    _member_ips: Dict[int, str] = field(default_factory=dict)

    # -- membership -----------------------------------------------------------------

    def add_member(self, asn: int) -> str:
        """Register an AS at the exchange and assign it a peering-LAN IP."""
        self.members.add(asn)
        if asn not in self._member_ips:
            index = len(self._member_ips) + 2
            base = self.peering_lan.network
            self._member_ips[asn] = _format_ip(base + index)
        return self._member_ips[asn]

    def member_ip(self, asn: int) -> str:
        """Peering-LAN IP of *asn* (KeyError if not a member)."""
        return self._member_ips[asn]

    def member_list(self) -> List[int]:
        """The member list as published on the IXP website (empty when the
        IXP does not publish one, as with LINX)."""
        if not self.publishes_member_list:
            return []
        return sorted(self.members)

    def all_members(self) -> List[int]:
        """The true member list, regardless of publication."""
        return sorted(self.members)

    # -- route servers -------------------------------------------------------------------

    def add_route_server(self, route_server: RouteServer) -> RouteServer:
        """Attach a route server to this IXP."""
        self.route_servers.append(route_server)
        return route_server

    @property
    def route_server(self) -> RouteServer:
        """The primary route server (ValueError if none configured)."""
        if not self.route_servers:
            raise ValueError(f"{self.name} has no route server")
        return self.route_servers[0]

    def has_route_server(self) -> bool:
        """True if at least one route server is configured."""
        return bool(self.route_servers)

    def rs_members(self) -> List[int]:
        """Members connected to any of the IXP's route servers."""
        asns: Set[int] = set()
        for rs in self.route_servers:
            asns.update(rs.member_set())
        return sorted(asns)

    def num_rs_members(self) -> int:
        """Number of distinct route-server members, without sorting."""
        if len(self.route_servers) == 1:
            return self.route_servers[0].num_members()
        asns: Set[int] = set()
        for rs in self.route_servers:
            asns.update(rs.member_set())
        return len(asns)

    def connect_to_route_server(
        self,
        asn: int,
        policy: Optional[MemberExportPolicy] = None,
    ) -> MemberExportPolicy:
        """Connect a member to every route server of the IXP with *policy*."""
        if asn not in self.members:
            self.add_member(asn)
        if not self.route_servers:
            raise ValueError(f"{self.name} has no route server to connect to")
        result: Optional[MemberExportPolicy] = None
        for rs in self.route_servers:
            result = rs.add_member(asn, policy, ip_address=self.member_ip(asn))
        assert result is not None
        return result

    # -- derived metrics --------------------------------------------------------------------

    def session_counts(self) -> Dict[str, int]:
        """Sessions needed for a full mesh bilaterally vs multilaterally
        (figure 1), computed over the route-server member population."""
        members = self.num_rs_members()
        servers = max(1, len(self.route_servers))
        return {
            "members": members,
            "bilateral_sessions": bilateral_session_count(members),
            "multilateral_sessions": multilateral_session_count(members, servers),
        }

    def rs_participation_rate(self) -> float:
        """Fraction of the IXP's members connected to a route server."""
        if not self.members:
            return 0.0
        return self.num_rs_members() / len(self.members)

    def summary(self) -> Dict[str, object]:
        """Compact description used by reports and benchmarks."""
        return {
            "name": self.name,
            "region": self.region,
            "pricing": self.pricing,
            "members": len(self.members),
            "rs_members": self.num_rs_members(),
            "route_servers": len(self.route_servers),
            "has_lg": self.has_route_server(),
        }


def _format_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))
