"""The MLP inference engine: combine passive and active data, infer links.

:class:`MLPInferenceEngine` orchestrates the full pipeline of section 4
across any number of IXPs:

1. take the connectivity reports (route-server members per IXP);
2. extract RS communities passively from collector archives;
3. query route-server looking glasses (or third-party member looking
   glasses) for the members not covered passively;
4. merge all observations into per-member reachability sets N_a;
5. infer a p2p link for every pair of members with reciprocal ALLOW.

The result object keeps per-IXP detail (Table 2's columns) plus the
de-duplicated global link set, and records the provenance of every
member's reachability so the cost and visibility analyses can be
reproduced.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

#: An inferred MLP link: an ordered (lower ASN, higher ASN) pair.
Link = Tuple[int, int]

from repro.bgp.messages import RibEntry
from repro.bgp.policy import Relationship
from repro.core.active import (
    ActiveCollection,
    ActiveInference,
    ThirdPartyCollection,
    collect_from_third_party_lg,
)
from repro.core.communities import RSCommunityInterpreter
from repro.core.passive import PassiveInference, PassiveObservation
from repro.core.reachability import (
    MemberReachability,
    PolicyObservation,
    infer_links,
    merge_observations,
)
from repro.ixp.community_schemes import SchemeRegistry
from repro.ixp.looking_glass import ASLookingGlass, RouteServerLookingGlass
from repro.runtime.bitset import BitsetIndex
from repro.runtime.context import INFERENCE_BACKENDS, PipelineContext
from repro.runtime.interning import Interner
from repro.runtime.reachmatrix import (
    ReachabilityMatrix,
    link_provenance,
    links_union,
    multi_ixp_overlap,
    peer_counts_of,
)


@dataclass
class IXPInference:
    """Per-IXP inference outcome (one row of Table 2).

    ``links`` is a tuple of sorted ``(a, b)`` pairs in ascending order —
    a stable, hashable sequence — so downstream consumers never depend
    on set iteration order.
    """

    ixp_name: str
    members: Set[int] = field(default_factory=set)
    passive_members: Set[int] = field(default_factory=set)
    active_members: Set[int] = field(default_factory=set)
    reachabilities: Dict[int, MemberReachability] = field(default_factory=dict)
    links: Tuple[Link, ...] = ()
    active_queries: int = 0
    #: memoised frozenset of ``links`` (treat the inference as immutable
    #: once the engine returns it).
    _link_set: Optional[FrozenSet[Link]] = field(
        default=None, repr=False, compare=False)

    @property
    def num_links(self) -> int:
        """Number of MLP links inferred at this IXP."""
        return len(self.links)

    def link_set(self) -> FrozenSet[Link]:
        """The links as a (memoised) frozenset, for O(1) membership."""
        if self._link_set is None:
            self._link_set = frozenset(self.links)
        return self._link_set

    def has_link(self, a: int, b: int) -> bool:
        """Whether the (unordered) pair was inferred at this IXP."""
        return (min(a, b), max(a, b)) in self.link_set()

    def provenance_of(self, member_asn: int) -> FrozenSet[str]:
        """Observation sources behind a member's reachability
        ("passive" / "active" / "third-party"; empty if uncovered)."""
        reach = self.reachabilities.get(member_asn)
        return frozenset(reach.sources) if reach is not None else frozenset()

    def covered_members(self) -> Tuple[int, ...]:
        """Members with a reconstructed reachability, in ascending ASN
        order (a stable tuple, never a set — consumers must not depend
        on set iteration order)."""
        return tuple(sorted(self.reachabilities))

    def table2_row(self, num_ixp_ases: Optional[int] = None,
                   has_lg: Optional[bool] = None) -> Dict[str, object]:
        """This IXP rendered as a row of the paper's Table 2."""
        return {
            "IXP": self.ixp_name,
            "LG": ("Y" if has_lg else "N") if has_lg is not None else "?",
            "ASes": num_ixp_ases if num_ixp_ases is not None else len(self.members),
            "RS": len(self.members),
            "Pasv": len(self.passive_members),
            "Active": len(self.active_members - self.passive_members),
            "Links": self.num_links,
        }


@dataclass
class MLPInferenceResult:
    """The combined result across all IXPs.

    Results are immutable once the engine returns them; the derived
    views below (``all_links``, ``multi_ixp_links``, ``link_ixps``,
    ``peer_counts``, ``all_member_asns``) are computed once and
    memoised, so repeated consumers (every figure analysis reads the
    global link set) never re-sort.
    """

    per_ixp: Dict[str, IXPInference] = field(default_factory=dict)
    #: inference backend that produced the result (provenance only —
    #: backends are bit-identical, so it is excluded from equality).
    inference_backend: str = field(default="object", compare=False)
    _derived: Dict[str, object] = field(
        default_factory=dict, repr=False, compare=False)

    def ixp(self, ixp_name: str) -> IXPInference:
        """The per-IXP inference for *ixp_name*."""
        return self.per_ixp[ixp_name]

    def ixp_names(self) -> List[str]:
        """All IXPs with an inference, sorted by link count (descending,
        ties broken by name so the ordering is deterministic)."""
        return sorted(self.per_ixp,
                      key=lambda name: (-self.per_ixp[name].num_links, name))

    def all_links(self) -> Tuple[Link, ...]:
        """De-duplicated union of the per-IXP links, ascending (memoised)."""
        cached = self._derived.get("all_links")
        if cached is None:
            cached = links_union(self.links_by_ixp())
            self._derived["all_links"] = cached
        return cached

    def links_by_ixp(self) -> Dict[str, Tuple[Link, ...]]:
        """Per-IXP sorted link tuples."""
        return {name: inference.links
                for name, inference in self.per_ixp.items()}

    def link_ixps(self) -> Dict[Link, Tuple[str, ...]]:
        """Link -> sorted names of the IXPs it was inferred at (memoised)
        — cheap link provenance for the hybrid/overlap analyses.  Treat
        the returned mapping as read-only."""
        cached = self._derived.get("link_ixps")
        if cached is None:
            cached = link_provenance(self.links_by_ixp())
            self._derived["link_ixps"] = cached
        return cached

    def ixps_of_link(self, a: int, b: int) -> Tuple[str, ...]:
        """The IXPs that inferred the (unordered) pair, sorted by name."""
        return self.link_ixps().get((min(a, b), max(a, b)), ())

    def multi_ixp_links(self) -> Tuple[Link, ...]:
        """Links inferred at more than one IXP (the overlap the paper
        quantifies: 11,821 links appear at multiple IXPs), ascending
        (memoised)."""
        cached = self._derived.get("multi_ixp_links")
        if cached is None:
            cached = multi_ixp_overlap(self.link_ixps())
            self._derived["multi_ixp_links"] = cached
        return cached

    def all_member_asns(self) -> Tuple[int, ...]:
        """Every ASN involved in at least one inferred link, ascending
        (memoised)."""
        cached = self._derived.get("all_member_asns")
        if cached is None:
            asns: Set[int] = set()
            for link in self.all_links():
                asns.update(link)
            cached = tuple(sorted(asns))
            self._derived["all_member_asns"] = cached
        return cached

    def total_links(self) -> int:
        """Sum of per-IXP link counts (larger than the de-duplicated count)."""
        return sum(inference.num_links for inference in self.per_ixp.values())

    def identical_to(self, other: "MLPInferenceResult") -> bool:
        """Full bit-identity with *other*: links, per-IXP link sets,
        Table 2 rows, member/provenance sets, reachability objects and
        query spend.  This is the one authoritative predicate the
        differential tests, benches and ``run_all.py``'s
        ``inference_matrix`` gate all share — extend it here, not in a
        caller, when results grow new fields."""
        if set(self.per_ixp) != set(other.per_ixp):
            return False
        if self.links_by_ixp() != other.links_by_ixp():
            return False
        if self.table2() != other.table2():
            return False
        for name in self.per_ixp:
            left, right = self.per_ixp[name], other.per_ixp[name]
            if (left.members != right.members
                    or left.passive_members != right.passive_members
                    or left.active_members != right.active_members
                    or left.active_queries != right.active_queries
                    or left.covered_members() != right.covered_members()
                    or left.reachabilities != right.reachabilities):
                return False
        return True

    def peer_counts(self) -> Dict[int, int]:
        """Per-AS number of distinct inferred MLP peers (figure 6's x-axis).
        Keys are in ascending ASN order, so iteration is deterministic
        (memoised; treat the returned mapping as read-only)."""
        cached = self._derived.get("peer_counts")
        if cached is None:
            cached = peer_counts_of(self.all_links())
            self._derived["peer_counts"] = cached
        return cached

    def table2(self, ixp_ases: Optional[Mapping[str, int]] = None,
               ixp_has_lg: Optional[Mapping[str, bool]] = None) -> List[Dict[str, object]]:
        """The full Table 2, ordered by total IXP size."""
        ixp_ases = ixp_ases or {}
        ixp_has_lg = ixp_has_lg or {}
        rows = [
            inference.table2_row(ixp_ases.get(name), ixp_has_lg.get(name))
            for name, inference in self.per_ixp.items()
        ]
        rows.sort(key=lambda row: (-int(row["ASes"]), row["IXP"]))
        return rows


class MLPInferenceEngine:
    """Run the full inference across a set of IXPs."""

    def __init__(
        self,
        registry: SchemeRegistry,
        rs_members: Mapping[str, Iterable[int]],
        mappers: Optional[Mapping[str, object]] = None,
        relationships: Optional[Mapping[Tuple[int, int], Relationship]] = None,
        sample_fraction: float = 0.10,
        max_prefixes_per_member: int = 100,
        context: Optional[PipelineContext] = None,
        backend: Optional[str] = None,
        inference_backend: Optional[str] = None,
    ) -> None:
        self.registry = registry
        self.rs_members: Dict[str, Set[int]] = {
            name: set(members) for name, members in rs_members.items()}
        self.interpreter = RSCommunityInterpreter(
            registry, self.rs_members, mappers=mappers)
        self.relationships = dict(relationships or {})
        self.sample_fraction = sample_fraction
        self.max_prefixes_per_member = max_prefixes_per_member
        #: Optional shared runtime context; when present its cached
        #: member bitset indices (and, for the bitset backend, its
        #: observation-plane cache) are reused across run() invocations.
        self.context = context
        #: Propagation backend of the measurement substrate this engine
        #: consumes (provenance for reports/benchmarks; ``None`` falls
        #: back to the context's backend, or "frontier").
        self.backend = backend if backend is not None else getattr(
            context, "backend", "frontier")
        #: Inference data plane: "object" (per-IXP dict/set reference
        #: engine) or "bitset" (interned observation planes + reciprocal
        #: M & M.T matrix kernel); ``None`` falls back to the context's
        #: default.  Both produce bit-identical results.
        self.inference_backend = inference_backend if inference_backend \
            is not None else getattr(context, "inference_backend", "object")
        if self.inference_backend not in INFERENCE_BACKENDS:
            raise ValueError(
                f"unknown inference backend {self.inference_backend!r} "
                f"(choose from {INFERENCE_BACKENDS})")

    # -- pipeline ---------------------------------------------------------------------

    def run(
        self,
        passive_entries: Optional[Iterable[RibEntry]] = None,
        rs_looking_glasses: Optional[Mapping[str, RouteServerLookingGlass]] = None,
        third_party_lgs: Optional[Mapping[str, Sequence[ASLookingGlass]]] = None,
        require_reciprocity: bool = True,
        workers: Optional[int] = None,
    ) -> MLPInferenceResult:
        """Run passive extraction, active collection and link inference.

        ``require_reciprocity`` exposes the paper's reciprocity assumption
        as an ablation switch: when False, a single direction of ALLOW is
        enough to infer a link.

        ``workers > 1`` shards the per-IXP inference across a process
        pool: the engine (minus its runtime context) is shipped to each
        worker once, every IXP becomes one task, and results are merged
        in sorted-IXP order — identical output to the in-process loop.
        (The bitset backend runs its vectorized plane in-process — the
        post-collection arithmetic is too cheap to shard — but accepts
        ``workers`` for interface parity.)
        """
        rs_looking_glasses = dict(rs_looking_glasses or {})
        third_party_lgs = {name: list(lgs)
                           for name, lgs in (third_party_lgs or {}).items()}

        if self.inference_backend == "bitset":
            return self._run_bitset(passive_entries, rs_looking_glasses,
                                    third_party_lgs, require_reciprocity)

        passive_by_ixp = self._run_passive(passive_entries)
        result = MLPInferenceResult()

        # IXPs are processed in name order so run output (and any caches
        # populated along the way) is independent of mapping order.
        items = sorted(self.rs_members.items())
        # Lazy import: repro.pipeline sits above core in the layering and
        # importing it at module scope would cycle through scenarios.
        from repro.pipeline.shard import resolve_workers
        worker_count = resolve_workers(workers)
        if worker_count > 1 and len(items) > 1:
            payloads = [
                (ixp_name, members, passive_by_ixp.get(ixp_name, []),
                 rs_looking_glasses.get(ixp_name),
                 third_party_lgs.get(ixp_name, []), require_reciprocity)
                for ixp_name, members in items]
            with ProcessPoolExecutor(
                max_workers=min(worker_count, len(items)),
                initializer=_init_inference_worker,
                initargs=(self,),
            ) as pool:
                for inference in pool.map(_infer_ixp_task, payloads):
                    result.per_ixp[inference.ixp_name] = inference
        else:
            for ixp_name, members in items:
                result.per_ixp[ixp_name] = self._infer_ixp(
                    ixp_name, members, passive_by_ixp.get(ixp_name, []),
                    rs_looking_glasses.get(ixp_name),
                    third_party_lgs.get(ixp_name, []), require_reciprocity)
        return result

    def _infer_ixp(
        self,
        ixp_name: str,
        members: Set[int],
        passive_observations: Sequence[PassiveObservation],
        rs_lg: Optional[RouteServerLookingGlass],
        third_party: Sequence[ASLookingGlass],
        require_reciprocity: bool,
    ) -> IXPInference:
        """One IXP's passive/active merge and link inference — the unit
        of work the sharded path distributes."""
        inference = IXPInference(ixp_name=ixp_name, members=set(members))
        observations: List[PolicyObservation] = []

        if passive_observations:
            passive = PassiveInference(self.interpreter, self.relationships)
            observations.extend(passive.policy_observations(passive_observations))
            inference.passive_members = {
                o.setter_asn for o in passive_observations}

        covered_prefixes = {
            o.setter_asn: set() for o in passive_observations}
        for observation in passive_observations:
            covered_prefixes.setdefault(observation.setter_asn, set()).add(
                observation.prefix)

        if rs_lg is not None:
            active = ActiveInference(
                rs_lg,
                sample_fraction=self.sample_fraction,
                max_prefixes_per_member=self.max_prefixes_per_member)
            collection = active.collect(
                skip_members=inference.passive_members,
                covered_prefixes=covered_prefixes)
            observations.extend(
                collection.policy_observations(self.interpreter))
            inference.active_members = collection.members_with_communities()
            inference.active_queries = collection.total_queries
            # The LG summary is authoritative connectivity data.
            inference.members |= collection.members
        else:
            for lg in third_party:
                collection = collect_from_third_party_lg(
                    ixp_name, lg, members, self.interpreter)
                observations.extend(
                    collection.policy_observations(self.interpreter))
                inference.active_members |= collection.members_with_communities()
                inference.active_queries += collection.total_queries

        inference.reachabilities = self._merge(ixp_name, observations,
                                               inference.members)
        inference.links = self._infer_links(
            ixp_name, inference.reachabilities, inference.members,
            require_reciprocity)
        return inference

    # -- bitset data plane ---------------------------------------------------

    def _run_bitset(
        self,
        passive_entries: Optional[Iterable[RibEntry]],
        rs_looking_glasses: Dict[str, RouteServerLookingGlass],
        third_party_lgs: Dict[str, List[ASLookingGlass]],
        require_reciprocity: bool,
    ) -> MLPInferenceResult:
        """The vectorized inference path: interned observation planes,
        merged once per scenario (cached on the context), links from the
        reciprocal ``M & M.T`` kernel.  Output is bit-identical to the
        object path; ``require_reciprocity`` is applied downstream of
        the plane cache, so the ablation shares the collected planes.
        """
        from repro.core.planes import PlaneCacheKey
        entries = None
        if passive_entries is not None:
            entries = passive_entries if isinstance(passive_entries, list) \
                else list(passive_entries)
        key = PlaneCacheKey(
            passive_entries=entries,
            rs_looking_glasses=rs_looking_glasses,
            third_party_lgs=third_party_lgs,
            sample_fraction=self.sample_fraction,
            max_prefixes_per_member=self.max_prefixes_per_member,
            rs_members=self.rs_members,
            relationships=self.relationships,
            registry=self.registry,
            registry_version=self.registry.version,
            mappers=self.interpreter.mappers,
        )
        merged = None
        if self.context is not None:
            merged = self.context.cached_inference_planes(key)
        if merged is None:
            merged = self._build_merged_planes(
                entries, rs_looking_glasses, third_party_lgs)
            if self.context is not None:
                self.context.store_inference_planes(key, merged)

        result = MLPInferenceResult(inference_backend="bitset")
        matrix_planes = {}
        links_by_ixp = {}
        for ixp_name in sorted(self.rs_members):
            data = merged[ixp_name]
            links = data.plane.links(require_reciprocity)
            result.per_ixp[ixp_name] = IXPInference(
                ixp_name=ixp_name,
                members=set(data.members),
                passive_members=set(data.passive_members),
                active_members=set(data.active_members),
                reachabilities=dict(data.reachabilities),
                links=links,
                active_queries=data.active_queries,
            )
            matrix_planes[ixp_name] = data.plane
            links_by_ixp[ixp_name] = links
        if self.context is not None:
            self.context.store_reachability_matrix(
                result, ReachabilityMatrix(
                    matrix_planes, links_by_ixp=links_by_ixp,
                    built_by="bitset"))
        return result

    def _build_merged_planes(
        self,
        passive_entries: Optional[List[RibEntry]],
        rs_looking_glasses: Dict[str, RouteServerLookingGlass],
        third_party_lgs: Dict[str, List[ASLookingGlass]],
    ):
        """Collect and merge the per-IXP observation planes (the cached
        unit of the bitset backend)."""
        from repro.core.planes import (
            ACTIVE,
            THIRD_PARTY,
            MergedPlane,
            ObservationPlane,
            PolicyTable,
            build_reachability_plane,
            extract_passive_planes,
            merge_rows,
            rows_from_raw_observations,
        )
        prefixes = self.context.prefixes if self.context is not None \
            else Interner()
        policies = PolicyTable()
        observation_planes: Dict[str, ObservationPlane] = {}
        extract_passive_planes(passive_entries, self.interpreter,
                               self.relationships, prefixes, policies,
                               observation_planes)

        merged: Dict[str, MergedPlane] = {}
        for ixp_name, members in sorted(self.rs_members.items()):
            plane = observation_planes.get(ixp_name)
            if plane is None:
                plane = ObservationPlane(ixp_name=ixp_name)
            plane.members = set(members)
            rs_lg = rs_looking_glasses.get(ixp_name)
            if rs_lg is not None:
                active = ActiveInference(
                    rs_lg,
                    sample_fraction=self.sample_fraction,
                    max_prefixes_per_member=self.max_prefixes_per_member)
                collection = active.collect(
                    skip_members=plane.passive_members,
                    covered_prefixes=plane.covered_prefixes)
                plane.rows.extend(rows_from_raw_observations(
                    ixp_name, collection.observations, self.interpreter,
                    prefixes, policies, ACTIVE))
                plane.active_members = collection.members_with_communities()
                plane.active_queries = collection.total_queries
                plane.members |= collection.members
            else:
                for lg in third_party_lgs.get(ixp_name, []):
                    collection = collect_from_third_party_lg(
                        ixp_name, lg, members, self.interpreter)
                    plane.rows.extend(rows_from_raw_observations(
                        ixp_name, collection.observations, self.interpreter,
                        prefixes, policies, THIRD_PARTY))
                    plane.active_members |= \
                        collection.members_with_communities()
                    plane.active_queries += collection.total_queries
            reachabilities = merge_rows(
                ixp_name, plane.rows, plane.members, policies, prefixes)
            merged[ixp_name] = MergedPlane(
                ixp_name=ixp_name,
                members=plane.members,
                passive_members=set(plane.passive_members),
                active_members=set(plane.active_members),
                active_queries=plane.active_queries,
                reachabilities=reachabilities,
                plane=build_reachability_plane(
                    plane, reachabilities,
                    self._member_index(ixp_name, plane.members)),
            )
        return merged

    def __getstate__(self):
        # The runtime context holds process-local caches (and is shared
        # with other engines); workers rebuild member indices on demand.
        state = self.__dict__.copy()
        state["context"] = None
        return state

    # -- helpers -----------------------------------------------------------------------

    def _run_passive(
        self, passive_entries: Optional[Iterable[RibEntry]]
    ) -> Dict[str, List[PassiveObservation]]:
        if passive_entries is None:
            return {}
        passive = PassiveInference(self.interpreter, self.relationships)
        observations = passive.extract(passive_entries)
        by_ixp: Dict[str, List[PassiveObservation]] = {}
        for observation in observations:
            by_ixp.setdefault(observation.ixp_name, []).append(observation)
        return by_ixp

    def _merge(
        self,
        ixp_name: str,
        observations: Sequence[PolicyObservation],
        members: Set[int],
    ) -> Dict[int, MemberReachability]:
        by_member: Dict[int, List[PolicyObservation]] = {}
        for observation in observations:
            if observation.ixp_name != ixp_name:
                continue
            if members and observation.member_asn not in members:
                continue
            by_member.setdefault(observation.member_asn, []).append(observation)
        reachabilities: Dict[int, MemberReachability] = {}
        for member_asn, member_observations in by_member.items():
            merged = merge_observations(member_observations, members)
            if merged is not None:
                reachabilities[member_asn] = merged
        return reachabilities

    def _member_index(self, ixp_name: str, members: Set[int]) -> BitsetIndex:
        if self.context is not None:
            return self.context.member_index(ixp_name, members)
        return BitsetIndex(members)

    def _infer_links(
        self,
        ixp_name: str,
        reachabilities: Dict[int, MemberReachability],
        members: Set[int],
        require_reciprocity: bool,
    ) -> Tuple[Link, ...]:
        return tuple(sorted(infer_links(
            reachabilities, members,
            index=self._member_index(ixp_name, members),
            require_reciprocity=require_reciprocity)))


# -- sharded-run worker plumbing ----------------------------------------------

_WORKER_ENGINE: Optional[MLPInferenceEngine] = None


def _init_inference_worker(engine: MLPInferenceEngine) -> None:
    """Pool initializer: one pickled engine copy per worker process."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = engine


def _infer_ixp_task(payload) -> IXPInference:
    """Run one IXP's inference inside a worker."""
    assert _WORKER_ENGINE is not None, "inference worker not initialised"
    (ixp_name, members, passive_observations, rs_lg, third_party,
     require_reciprocity) = payload
    return _WORKER_ENGINE._infer_ixp(
        ixp_name, members, passive_observations, rs_lg, third_party,
        require_reciprocity)
