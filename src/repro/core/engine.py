"""The MLP inference engine: combine passive and active data, infer links.

:class:`MLPInferenceEngine` orchestrates the full pipeline of section 4
across any number of IXPs:

1. take the connectivity reports (route-server members per IXP);
2. extract RS communities passively from collector archives;
3. query route-server looking glasses (or third-party member looking
   glasses) for the members not covered passively;
4. merge all observations into per-member reachability sets N_a;
5. infer a p2p link for every pair of members with reciprocal ALLOW.

The result object keeps per-IXP detail (Table 2's columns) plus the
de-duplicated global link set, and records the provenance of every
member's reachability so the cost and visibility analyses can be
reproduced.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

#: An inferred MLP link: an ordered (lower ASN, higher ASN) pair.
Link = Tuple[int, int]

from repro.bgp.messages import RibEntry
from repro.bgp.policy import Relationship
from repro.core.active import (
    ActiveCollection,
    ActiveInference,
    ThirdPartyCollection,
    collect_from_third_party_lg,
)
from repro.core.communities import RSCommunityInterpreter
from repro.core.passive import PassiveInference, PassiveObservation
from repro.core.reachability import (
    MemberReachability,
    PolicyObservation,
    infer_links,
    merge_observations,
)
from repro.ixp.community_schemes import SchemeRegistry
from repro.ixp.looking_glass import ASLookingGlass, RouteServerLookingGlass
from repro.runtime.bitset import BitsetIndex
from repro.runtime.context import PipelineContext


@dataclass
class IXPInference:
    """Per-IXP inference outcome (one row of Table 2).

    ``links`` is a tuple of sorted ``(a, b)`` pairs in ascending order —
    a stable, hashable sequence — so downstream consumers never depend
    on set iteration order.
    """

    ixp_name: str
    members: Set[int] = field(default_factory=set)
    passive_members: Set[int] = field(default_factory=set)
    active_members: Set[int] = field(default_factory=set)
    reachabilities: Dict[int, MemberReachability] = field(default_factory=dict)
    links: Tuple[Link, ...] = ()
    active_queries: int = 0

    @property
    def num_links(self) -> int:
        """Number of MLP links inferred at this IXP."""
        return len(self.links)

    def covered_members(self) -> Tuple[int, ...]:
        """Members with a reconstructed reachability, in ascending ASN
        order (a stable tuple, never a set — consumers must not depend
        on set iteration order)."""
        return tuple(sorted(self.reachabilities))

    def table2_row(self, num_ixp_ases: Optional[int] = None,
                   has_lg: Optional[bool] = None) -> Dict[str, object]:
        """This IXP rendered as a row of the paper's Table 2."""
        return {
            "IXP": self.ixp_name,
            "LG": ("Y" if has_lg else "N") if has_lg is not None else "?",
            "ASes": num_ixp_ases if num_ixp_ases is not None else len(self.members),
            "RS": len(self.members),
            "Pasv": len(self.passive_members),
            "Active": len(self.active_members - self.passive_members),
            "Links": self.num_links,
        }


@dataclass
class MLPInferenceResult:
    """The combined result across all IXPs."""

    per_ixp: Dict[str, IXPInference] = field(default_factory=dict)

    def ixp(self, ixp_name: str) -> IXPInference:
        """The per-IXP inference for *ixp_name*."""
        return self.per_ixp[ixp_name]

    def ixp_names(self) -> List[str]:
        """All IXPs with an inference, sorted by link count (descending,
        ties broken by name so the ordering is deterministic)."""
        return sorted(self.per_ixp,
                      key=lambda name: (-self.per_ixp[name].num_links, name))

    def all_links(self) -> Tuple[Link, ...]:
        """De-duplicated union of the per-IXP links, in ascending order."""
        links: Set[Link] = set()
        for inference in self.per_ixp.values():
            links.update(inference.links)
        return tuple(sorted(links))

    def links_by_ixp(self) -> Dict[str, Tuple[Link, ...]]:
        """Per-IXP sorted link tuples."""
        return {name: inference.links
                for name, inference in self.per_ixp.items()}

    def multi_ixp_links(self) -> Tuple[Link, ...]:
        """Links inferred at more than one IXP (the overlap the paper
        quantifies: 11,821 links appear at multiple IXPs), ascending."""
        seen: Dict[Link, int] = {}
        for inference in self.per_ixp.values():
            for link in inference.links:
                seen[link] = seen.get(link, 0) + 1
        return tuple(sorted(link for link, count in seen.items() if count > 1))

    def all_member_asns(self) -> Tuple[int, ...]:
        """Every ASN involved in at least one inferred link, ascending."""
        asns: Set[int] = set()
        for link in self.all_links():
            asns.update(link)
        return tuple(sorted(asns))

    def total_links(self) -> int:
        """Sum of per-IXP link counts (larger than the de-duplicated count)."""
        return sum(inference.num_links for inference in self.per_ixp.values())

    def peer_counts(self) -> Dict[int, int]:
        """Per-AS number of distinct inferred MLP peers (figure 6's x-axis).
        Keys are in ascending ASN order, so iteration is deterministic."""
        counts: Dict[int, int] = {}
        for a, b in self.all_links():
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        return {asn: counts[asn] for asn in sorted(counts)}

    def table2(self, ixp_ases: Optional[Mapping[str, int]] = None,
               ixp_has_lg: Optional[Mapping[str, bool]] = None) -> List[Dict[str, object]]:
        """The full Table 2, ordered by total IXP size."""
        ixp_ases = ixp_ases or {}
        ixp_has_lg = ixp_has_lg or {}
        rows = [
            inference.table2_row(ixp_ases.get(name), ixp_has_lg.get(name))
            for name, inference in self.per_ixp.items()
        ]
        rows.sort(key=lambda row: (-int(row["ASes"]), row["IXP"]))
        return rows


class MLPInferenceEngine:
    """Run the full inference across a set of IXPs."""

    def __init__(
        self,
        registry: SchemeRegistry,
        rs_members: Mapping[str, Iterable[int]],
        mappers: Optional[Mapping[str, object]] = None,
        relationships: Optional[Mapping[Tuple[int, int], Relationship]] = None,
        sample_fraction: float = 0.10,
        max_prefixes_per_member: int = 100,
        context: Optional[PipelineContext] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.registry = registry
        self.rs_members: Dict[str, Set[int]] = {
            name: set(members) for name, members in rs_members.items()}
        self.interpreter = RSCommunityInterpreter(
            registry, self.rs_members, mappers=mappers)
        self.relationships = dict(relationships or {})
        self.sample_fraction = sample_fraction
        self.max_prefixes_per_member = max_prefixes_per_member
        #: Optional shared runtime context; when present its cached
        #: member bitset indices are reused across run() invocations.
        self.context = context
        #: Propagation backend of the measurement substrate this engine
        #: consumes (provenance for reports/benchmarks; ``None`` falls
        #: back to the context's backend, or "frontier").
        self.backend = backend if backend is not None else getattr(
            context, "backend", "frontier")

    # -- pipeline ---------------------------------------------------------------------

    def run(
        self,
        passive_entries: Optional[Iterable[RibEntry]] = None,
        rs_looking_glasses: Optional[Mapping[str, RouteServerLookingGlass]] = None,
        third_party_lgs: Optional[Mapping[str, Sequence[ASLookingGlass]]] = None,
        require_reciprocity: bool = True,
        workers: Optional[int] = None,
    ) -> MLPInferenceResult:
        """Run passive extraction, active collection and link inference.

        ``require_reciprocity`` exposes the paper's reciprocity assumption
        as an ablation switch: when False, a single direction of ALLOW is
        enough to infer a link.

        ``workers > 1`` shards the per-IXP inference across a process
        pool: the engine (minus its runtime context) is shipped to each
        worker once, every IXP becomes one task, and results are merged
        in sorted-IXP order — identical output to the in-process loop.
        """
        rs_looking_glasses = dict(rs_looking_glasses or {})
        third_party_lgs = {name: list(lgs)
                           for name, lgs in (third_party_lgs or {}).items()}

        passive_by_ixp = self._run_passive(passive_entries)
        result = MLPInferenceResult()

        # IXPs are processed in name order so run output (and any caches
        # populated along the way) is independent of mapping order.
        items = sorted(self.rs_members.items())
        # Lazy import: repro.pipeline sits above core in the layering and
        # importing it at module scope would cycle through scenarios.
        from repro.pipeline.shard import resolve_workers
        worker_count = resolve_workers(workers)
        if worker_count > 1 and len(items) > 1:
            payloads = [
                (ixp_name, members, passive_by_ixp.get(ixp_name, []),
                 rs_looking_glasses.get(ixp_name),
                 third_party_lgs.get(ixp_name, []), require_reciprocity)
                for ixp_name, members in items]
            with ProcessPoolExecutor(
                max_workers=min(worker_count, len(items)),
                initializer=_init_inference_worker,
                initargs=(self,),
            ) as pool:
                for inference in pool.map(_infer_ixp_task, payloads):
                    result.per_ixp[inference.ixp_name] = inference
        else:
            for ixp_name, members in items:
                result.per_ixp[ixp_name] = self._infer_ixp(
                    ixp_name, members, passive_by_ixp.get(ixp_name, []),
                    rs_looking_glasses.get(ixp_name),
                    third_party_lgs.get(ixp_name, []), require_reciprocity)
        return result

    def _infer_ixp(
        self,
        ixp_name: str,
        members: Set[int],
        passive_observations: Sequence[PassiveObservation],
        rs_lg: Optional[RouteServerLookingGlass],
        third_party: Sequence[ASLookingGlass],
        require_reciprocity: bool,
    ) -> IXPInference:
        """One IXP's passive/active merge and link inference — the unit
        of work the sharded path distributes."""
        inference = IXPInference(ixp_name=ixp_name, members=set(members))
        observations: List[PolicyObservation] = []

        if passive_observations:
            passive = PassiveInference(self.interpreter, self.relationships)
            observations.extend(passive.policy_observations(passive_observations))
            inference.passive_members = {
                o.setter_asn for o in passive_observations}

        covered_prefixes = {
            o.setter_asn: set() for o in passive_observations}
        for observation in passive_observations:
            covered_prefixes.setdefault(observation.setter_asn, set()).add(
                observation.prefix)

        if rs_lg is not None:
            active = ActiveInference(
                rs_lg,
                sample_fraction=self.sample_fraction,
                max_prefixes_per_member=self.max_prefixes_per_member)
            collection = active.collect(
                skip_members=inference.passive_members,
                covered_prefixes=covered_prefixes)
            observations.extend(
                collection.policy_observations(self.interpreter))
            inference.active_members = collection.members_with_communities()
            inference.active_queries = collection.total_queries
            # The LG summary is authoritative connectivity data.
            inference.members |= collection.members
        else:
            for lg in third_party:
                collection = collect_from_third_party_lg(
                    ixp_name, lg, members, self.interpreter)
                observations.extend(
                    collection.policy_observations(self.interpreter))
                inference.active_members |= collection.members_with_communities()
                inference.active_queries += collection.total_queries

        inference.reachabilities = self._merge(ixp_name, observations,
                                               inference.members)
        inference.links = self._infer_links(
            ixp_name, inference.reachabilities, inference.members,
            require_reciprocity)
        return inference

    def __getstate__(self):
        # The runtime context holds process-local caches (and is shared
        # with other engines); workers rebuild member indices on demand.
        state = self.__dict__.copy()
        state["context"] = None
        return state

    # -- helpers -----------------------------------------------------------------------

    def _run_passive(
        self, passive_entries: Optional[Iterable[RibEntry]]
    ) -> Dict[str, List[PassiveObservation]]:
        if passive_entries is None:
            return {}
        passive = PassiveInference(self.interpreter, self.relationships)
        observations = passive.extract(passive_entries)
        by_ixp: Dict[str, List[PassiveObservation]] = {}
        for observation in observations:
            by_ixp.setdefault(observation.ixp_name, []).append(observation)
        return by_ixp

    def _merge(
        self,
        ixp_name: str,
        observations: Sequence[PolicyObservation],
        members: Set[int],
    ) -> Dict[int, MemberReachability]:
        by_member: Dict[int, List[PolicyObservation]] = {}
        for observation in observations:
            if observation.ixp_name != ixp_name:
                continue
            if members and observation.member_asn not in members:
                continue
            by_member.setdefault(observation.member_asn, []).append(observation)
        reachabilities: Dict[int, MemberReachability] = {}
        for member_asn, member_observations in by_member.items():
            merged = merge_observations(member_observations, members)
            if merged is not None:
                reachabilities[member_asn] = merged
        return reachabilities

    def _member_index(self, ixp_name: str, members: Set[int]) -> BitsetIndex:
        if self.context is not None:
            return self.context.member_index(ixp_name, members)
        return BitsetIndex(members)

    def _infer_links(
        self,
        ixp_name: str,
        reachabilities: Dict[int, MemberReachability],
        members: Set[int],
        require_reciprocity: bool,
    ) -> Tuple[Link, ...]:
        return tuple(sorted(infer_links(
            reachabilities, members,
            index=self._member_index(ixp_name, members),
            require_reciprocity=require_reciprocity)))


# -- sharded-run worker plumbing ----------------------------------------------

_WORKER_ENGINE: Optional[MLPInferenceEngine] = None


def _init_inference_worker(engine: MLPInferenceEngine) -> None:
    """Pool initializer: one pickled engine copy per worker process."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = engine


def _infer_ixp_task(payload) -> IXPInference:
    """Run one IXP's inference inside a worker."""
    assert _WORKER_ENGINE is not None, "inference worker not initialised"
    (ixp_name, members, passive_observations, rs_lg, third_party,
     require_reciprocity) = payload
    return _WORKER_ENGINE._infer_ixp(
        ixp_name, members, passive_observations, rs_lg, third_party,
        require_reciprocity)
