"""Passive inference from archived collector data (section 4.2).

Collector feeds expose RS communities because BGP communities are
optional *transitive* attributes: when an RS member (the *RS feeder*)
re-exports routes learned via a route server to its customers or to a
collector, the communities attached by the announcing members survive.
The passive pipeline is:

1. filter the archived AS paths (reserved/private ASNs, cycles,
   transients);
2. classify the communities on each surviving entry and attribute them to
   an IXP route server (RS-ASN match or excluded-member combination);
3. pin-point the *RS setter* — the member that attached the communities —
   from the IXP participants on the AS path, using inferred business
   relationships when more than two participants appear;
4. emit per-(IXP, setter, prefix) policy observations that feed the same
   step-4/step-5 machinery as the active data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.communities import Community
from repro.bgp.messages import RibEntry
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.core.communities import RSCommunityInterpreter
from repro.core.reachability import PolicyObservation


@dataclass(frozen=True)
class PassiveObservation:
    """One passively observed application of RS communities."""

    ixp_name: str
    setter_asn: int
    prefix: Prefix
    communities: FrozenSet[Community]
    feeder_asn: int
    rs_asn_match: bool = True


@dataclass
class PassiveStats:
    """Book-keeping of the passive extraction for reporting."""

    entries_seen: int = 0
    entries_dirty: int = 0
    entries_without_rs_communities: int = 0
    entries_ambiguous_ixp: int = 0
    entries_without_setter: int = 0
    observations: int = 0


class PassiveInference:
    """Extract RS-community observations from collector archives."""

    def __init__(
        self,
        interpreter: RSCommunityInterpreter,
        relationships: Optional[Mapping[Tuple[int, int], Relationship]] = None,
    ) -> None:
        self.interpreter = interpreter
        #: Ordered-pair relationship map used for the >2-participant case;
        #: typically produced by :class:`RelationshipInference`.
        self.relationships = dict(relationships or {})
        self.stats = PassiveStats()
        # The same AS path recurs once per prefix the feeder exports, so
        # setter pin-pointing is memoised per (IXP, path).  The cache is
        # strictly per-instance: cached setters depend on this instance's
        # relationship snapshot, so sharing across instances (or across
        # engine runs, whose relationship maps may differ) would serve
        # stale attributions.  Entries carry the interpreter's
        # cache_epoch, so a membership change followed by
        # interpreter.clear_caches() (or update_members()) invalidates
        # them here too.
        self._setter_cache: Dict[Tuple[str, Tuple[int, ...]],
                                 Tuple[int, Optional[int]]] = {}

    # -- extraction ------------------------------------------------------------------

    def extract(self, entries: Iterable[RibEntry]) -> List[PassiveObservation]:
        """Run the passive pipeline over archived RIB entries."""
        observations: List[PassiveObservation] = []
        for entry in entries:
            self.stats.entries_seen += 1
            if not entry.is_clean():
                self.stats.entries_dirty += 1
                continue
            if not entry.communities:
                self.stats.entries_without_rs_communities += 1
                continue
            identification = self.interpreter.identify_unique_ixp(entry.communities)
            if identification is None:
                if self.interpreter.identify_ixps(entry.communities):
                    self.stats.entries_ambiguous_ixp += 1
                else:
                    self.stats.entries_without_rs_communities += 1
                continue
            ixp_name = identification.ixp_name
            setter = self.identify_setter(ixp_name, entry)
            if setter is None:
                self.stats.entries_without_setter += 1
                continue
            rs_communities = self.interpreter.rs_communities_only(
                ixp_name, entry.communities)
            observations.append(PassiveObservation(
                ixp_name=ixp_name,
                setter_asn=setter,
                prefix=entry.prefix,
                communities=rs_communities,
                feeder_asn=entry.peer_asn,
                rs_asn_match=identification.rs_asn_match,
            ))
            self.stats.observations += 1
        return observations

    # -- setter identification ----------------------------------------------------------

    def identify_setter(self, ixp_name: str, entry: RibEntry) -> Optional[int]:
        """Pin-point the RS setter on the entry's AS path (section 4.2).

        The path is ordered observer-side first, origin last.  The three
        cases: fewer than two IXP participants -> unknown; exactly two ->
        the participant closer to the origin; more than two -> the
        participant closer to the origin among the (single) pair of
        adjacent participants with a p2p relationship.
        """
        epoch = self.interpreter.cache_epoch
        cache_key = (ixp_name, entry.as_path.asns)
        cached = self._setter_cache.get(cache_key)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        members = self.interpreter.rs_members.get(ixp_name, set())
        path = entry.as_path.deduplicated().asns
        participant_positions = [index for index, asn in enumerate(path)
                                 if asn in members]
        if len(participant_positions) < 2:
            setter = None
        elif len(participant_positions) == 2:
            setter = path[participant_positions[-1]]
        else:
            setter = self._setter_from_relationships(path, participant_positions)
        self._setter_cache[cache_key] = (epoch, setter)
        return setter

    def _setter_from_relationships(
        self, path: Tuple[int, ...], participant_positions: List[int]
    ) -> Optional[int]:
        # Look for an adjacent pair of participants whose link is p2p; the
        # setter is the endpoint closer to the prefix (larger index).
        p2p_pairs: List[Tuple[int, int]] = []
        for left_pos, right_pos in zip(participant_positions,
                                       participant_positions[1:]):
            if right_pos != left_pos + 1:
                continue
            left, right = path[left_pos], path[right_pos]
            relationship = self._relationship(left, right)
            if relationship is None:
                continue
            if relationship in (Relationship.PEER, Relationship.RS_PEER):
                p2p_pairs.append((left_pos, right_pos))
        if len(p2p_pairs) == 1:
            return path[p2p_pairs[0][1]]
        if not p2p_pairs:
            # No p2p link identified among participants: fall back to the
            # participant closest to the origin (conservative choice).
            return path[participant_positions[-1]]
        # More than one p2p pair should not happen on a valley-free path;
        # refuse to guess.
        return None

    def _relationship(self, left: int, right: int) -> Optional[Relationship]:
        relationship = self.relationships.get((left, right))
        if relationship is not None:
            return relationship
        inverse = self.relationships.get((right, left))
        if inverse is not None:
            return inverse.inverse()
        return None

    # -- conversion -------------------------------------------------------------------------

    def policy_observations(
        self, observations: Iterable[PassiveObservation]
    ) -> List[PolicyObservation]:
        """Convert passive observations into per-prefix policy observations."""
        result: List[PolicyObservation] = []
        for observation in observations:
            interpreted = self.interpreter.interpret_for_ixp(
                observation.ixp_name, observation.communities)
            if interpreted is None:
                result.append(PolicyObservation(
                    member_asn=observation.setter_asn,
                    ixp_name=observation.ixp_name,
                    prefix=observation.prefix,
                    mode="all-except", listed=frozenset(),
                    source="passive"))
                continue
            result.append(PolicyObservation(
                member_asn=observation.setter_asn,
                ixp_name=observation.ixp_name,
                prefix=observation.prefix,
                mode=interpreted.mode,
                listed=interpreted.listed,
                source="passive"))
        return result

    def covered_members(
        self, observations: Iterable[PassiveObservation]
    ) -> Dict[str, Set[int]]:
        """Per-IXP set of members whose communities were obtained passively
        (ARS_passive of equation 2)."""
        result: Dict[str, Set[int]] = {}
        for observation in observations:
            result.setdefault(observation.ixp_name, set()).add(observation.setter_asn)
        return result

    def covered_prefixes(
        self, observations: Iterable[PassiveObservation]
    ) -> Dict[str, Dict[int, Set[Prefix]]]:
        """Per-IXP, per-member prefixes covered passively (P_passive_a)."""
        result: Dict[str, Dict[int, Set[Prefix]]] = {}
        for observation in observations:
            per_ixp = result.setdefault(observation.ixp_name, {})
            per_ixp.setdefault(observation.setter_asn, set()).add(observation.prefix)
        return result
