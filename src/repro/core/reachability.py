"""Reachability reconstruction: from observed communities to export policies.

For each RS member *a* the algorithm builds the set N_a of members
towards which *all* of *a*'s routes are advertised (section 4.1, step 4):

* ALL + EXCLUDE observations contribute ``ARS - E_p``;
* NONE + INCLUDE observations contribute ``I_p``;
* N_a is the intersection over the observed prefixes.

Observations come from active looking-glass queries and/or passive
collector data; :func:`merge_observations` handles both and reports how
consistent the member's announcements were (the paper found fewer than
0.5% of members inconsistent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.prefix import Prefix
from repro.runtime.bitset import BitsetIndex, reciprocal_pairs

MODE_ALL_EXCEPT = "all-except"
MODE_NONE_EXCEPT = "none-except"


@dataclass(frozen=True)
class PolicyObservation:
    """The policy encoded on one observed announcement of one member."""

    member_asn: int
    ixp_name: str
    prefix: Optional[Prefix]
    mode: str
    listed: FrozenSet[int]
    source: str = "active"        #: "active", "passive" or "third-party"

    def allowed(self, members: Iterable[int]) -> Set[int]:
        """N_{a,p}: members allowed to receive this announcement."""
        others = {m for m in members if m != self.member_asn}
        if self.mode == MODE_ALL_EXCEPT:
            return others - set(self.listed)
        return others & set(self.listed)


@dataclass
class MemberReachability:
    """The reconstructed export policy N_a of one member at one IXP."""

    member_asn: int
    ixp_name: str
    mode: str
    listed: FrozenSet[int]
    sources: FrozenSet[str] = frozenset()
    prefixes_observed: int = 0
    inconsistent_prefixes: int = 0

    def allows(self, peer_asn: int) -> bool:
        """True if *peer_asn* is in N_a."""
        if peer_asn == self.member_asn:
            return False
        if self.mode == MODE_ALL_EXCEPT:
            return peer_asn not in self.listed
        return peer_asn in self.listed

    def allowed_members(self, members: Iterable[int]) -> Set[int]:
        """N_a restricted to the given member population."""
        return {m for m in members if m != self.member_asn and self.allows(m)}

    def allowed_mask(self, index: BitsetIndex) -> int:
        """N_a as a bitmask over *index*'s member universe.

        Bit *i* is set iff ``self.allows(index.universe[i])``; the data
        plane of :func:`infer_links` works entirely on these masks and
        only converts back to ASNs when emitting links.
        """
        listed_mask = index.mask_of(self.listed)
        if self.mode == MODE_ALL_EXCEPT:
            mask = index.full_mask & ~listed_mask
        else:
            mask = listed_mask
        own_bit = index.bit_of.get(self.member_asn)
        if own_bit is not None:
            mask &= ~(1 << own_bit)
        return mask

    def blocked_members(self, members: Iterable[int]) -> Set[int]:
        """Members explicitly not reachable through the route server."""
        return {m for m in members if m != self.member_asn and not self.allows(m)}

    def openness(self, members: Sequence[int]) -> float:
        """Fraction of other members allowed to receive routes (figure 11)."""
        others = [m for m in members if m != self.member_asn]
        if not others:
            return 0.0
        return len(self.allowed_members(others)) / len(others)

    @property
    def is_consistent(self) -> bool:
        """True if every observed prefix carried the same policy."""
        return self.inconsistent_prefixes == 0


def merge_observations(
    observations: Sequence[PolicyObservation],
    members: Iterable[int],
) -> Optional[MemberReachability]:
    """Merge all observations of one member at one IXP into N_a.

    Returns None for an empty observation list.  When observations
    disagree, N_a is the intersection of the per-prefix allowed sets
    (conservative, per step 4), expressed in ``none-except`` form.
    """
    observations = list(observations)
    if not observations:
        return None
    member_asn = observations[0].member_asn
    ixp_name = observations[0].ixp_name
    for observation in observations:
        if observation.member_asn != member_asn or observation.ixp_name != ixp_name:
            raise ValueError("observations must belong to one (member, IXP) pair")

    member_set = set(members)
    sources = frozenset(o.source for o in observations)
    distinct_policies = {(o.mode, o.listed) for o in observations}
    prefixes = {o.prefix for o in observations if o.prefix is not None}
    prefixes_observed = len(prefixes) if prefixes else len(observations)

    if len(distinct_policies) == 1:
        mode, listed = next(iter(distinct_policies))
        return MemberReachability(
            member_asn=member_asn, ixp_name=ixp_name, mode=mode,
            listed=listed, sources=sources,
            prefixes_observed=prefixes_observed, inconsistent_prefixes=0)

    # Inconsistent announcements: fall back to the explicit intersection.
    modes = {o.mode for o in observations}
    inconsistent = _count_inconsistent(observations)
    if modes == {MODE_ALL_EXCEPT}:
        # Intersection of (ARS - E_p) == ARS - union(E_p).
        union_excludes: Set[int] = set()
        for observation in observations:
            union_excludes |= set(observation.listed)
        return MemberReachability(
            member_asn=member_asn, ixp_name=ixp_name, mode=MODE_ALL_EXCEPT,
            listed=frozenset(union_excludes), sources=sources,
            prefixes_observed=prefixes_observed,
            inconsistent_prefixes=inconsistent)
    if modes == {MODE_NONE_EXCEPT}:
        # Intersection of I_p.
        includes: Optional[Set[int]] = None
        for observation in observations:
            listed = set(observation.listed)
            includes = listed if includes is None else includes & listed
        return MemberReachability(
            member_asn=member_asn, ixp_name=ixp_name, mode=MODE_NONE_EXCEPT,
            listed=frozenset(includes or set()), sources=sources,
            prefixes_observed=prefixes_observed,
            inconsistent_prefixes=inconsistent)

    # Mixed modes: compute N_a against the known member population.
    allowed: Optional[Set[int]] = None
    for observation in observations:
        per_prefix = observation.allowed(member_set)
        allowed = per_prefix if allowed is None else allowed & per_prefix
    return MemberReachability(
        member_asn=member_asn, ixp_name=ixp_name, mode=MODE_NONE_EXCEPT,
        listed=frozenset(allowed or set()), sources=sources,
        prefixes_observed=prefixes_observed,
        inconsistent_prefixes=inconsistent)


def _count_inconsistent(observations: Sequence[PolicyObservation]) -> int:
    """Number of observed prefixes whose policy differs from the majority."""
    by_policy: Dict[Tuple[str, FrozenSet[int]], int] = {}
    for observation in observations:
        key = (observation.mode, observation.listed)
        by_policy[key] = by_policy.get(key, 0) + 1
    if not by_policy:
        return 0
    majority = max(by_policy.values())
    return sum(count for count in by_policy.values()) - majority


def infer_links(
    reachabilities: Dict[int, MemberReachability],
    members: Iterable[int],
    index: Optional[BitsetIndex] = None,
    require_reciprocity: bool = True,
) -> Set[Tuple[int, int]]:
    """Step 5: infer a p2p link for every pair with reciprocal ALLOW.

    Only members with a reconstructed reachability can contribute links;
    a pair (a, b) is inferred iff ``b in N_a`` and ``a in N_b`` (with
    ``require_reciprocity=False`` — the paper's ablation — a single
    direction of ALLOW suffices).

    The computation runs on member bitmasks: each N_a becomes an integer
    mask over the sorted member universe (pass a pre-built *index* to
    reuse one, e.g. from ``PipelineContext.member_index``), the masks
    are transposed once, and reciprocity is a bitwise AND.  Links are
    emitted in sorted-pair form.
    """
    if index is None:
        index = BitsetIndex(members)

    masks: Dict[int, int] = {}
    for bit, asn in enumerate(index.universe):
        reach = reachabilities.get(asn)
        if reach is not None:
            masks[bit] = reach.allowed_mask(index)
    return reciprocal_pairs(masks, index.universe, require_reciprocity)
