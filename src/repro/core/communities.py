"""Interpretation of route-server communities found on routes.

Given the community set attached to an observed route, this module
answers the two questions of section 4.2:

* *which IXP route server* were these communities aimed at?  Usually one
  half of the community encodes the route-server ASN; when it does not
  (e.g. a bare list of ``0:peer-asn`` EXCLUDEs), the combination of
  excluded ASes is matched against the membership of each candidate IXP;
* *what do they say*: the per-IXP classification into ALL / EXCLUDE /
  NONE / INCLUDE actions with the referenced peer ASNs resolved back to
  real member ASNs (through the IXP's private-ASN mapping when needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.bgp.asn import Private16BitMapper
from repro.bgp.communities import Community
from repro.ixp.community_schemes import (
    Classification,
    CommunityScheme,
    RSAction,
    SchemeRegistry,
)


@dataclass(frozen=True)
class IXPIdentification:
    """Outcome of attributing a community set to one IXP route server."""

    ixp_name: str
    #: True when the RS ASN appeared in the community values (strong signal).
    rs_asn_match: bool
    #: Fraction of referenced peer ASNs that are members of the IXP's RS.
    member_overlap: float
    #: The classified communities under the IXP's scheme.
    classifications: Tuple[Tuple[Community, Classification], ...] = ()

    @property
    def confidence(self) -> float:
        """Simple confidence score combining both signals."""
        return (1.0 if self.rs_asn_match else 0.0) + self.member_overlap


@dataclass
class InterpretedPolicy:
    """The export policy encoded by one community set at one IXP."""

    ixp_name: str
    mode: str                      #: "all-except" or "none-except"
    listed: FrozenSet[int]         #: resolved real member ASNs
    unresolved: FrozenSet[int] = frozenset()  #: 16-bit values we could not resolve

    def allows(self, peer_asn: int) -> bool:
        """Whether the policy lets *peer_asn* receive the routes."""
        if self.mode == "all-except":
            return peer_asn not in self.listed
        return peer_asn in self.listed


class RSCommunityInterpreter:
    """Classify and attribute RS communities against known IXP schemes."""

    def __init__(
        self,
        registry: SchemeRegistry,
        rs_members: Mapping[str, Iterable[int]],
        mappers: Optional[Mapping[str, Private16BitMapper]] = None,
        min_member_overlap: float = 0.99,
    ) -> None:
        self.registry = registry
        self.rs_members: Dict[str, Set[int]] = {
            name: set(members) for name, members in rs_members.items()}
        self.mappers: Dict[str, Private16BitMapper] = dict(mappers or {})
        #: Overlap required to attribute an ambiguous community set to an IXP.
        self.min_member_overlap = min_member_overlap
        # Distinct community bags are few (one per member policy plus
        # per-prefix deviations) while observed routes are many, so the
        # three interpretation entry points are memoised per bag.
        # Mutating rs_members or a mapper invalidates the memos: use
        # update_members(), or call clear_caches() after a direct
        # mutation.  Scheme replacement in the registry is detected
        # automatically via registry.version.  Downstream caches (e.g.
        # the passive setter memo) validate against cache_epoch, so
        # clearing here reaches them.
        self._interpret_cache: Dict[Tuple[str, FrozenSet[Community]],
                                    Optional[InterpretedPolicy]] = {}
        #: keyed on (min_member_overlap, bag): the threshold is a public
        #: tunable and changing it must not serve stale identifications.
        self._identify_cache: Dict[Tuple[float, FrozenSet[Community]],
                                   Optional[IXPIdentification]] = {}
        self._rs_only_cache: Dict[Tuple[str, FrozenSet[Community]],
                                  FrozenSet[Community]] = {}
        self._cache_epoch = 0
        self._registry_version_seen = registry.version
        self._members_counts_seen = self._members_fingerprint()

    @property
    def cache_epoch(self) -> int:
        """Monotonic counter bumped by :meth:`clear_caches`; caches built
        on this interpreter's answers store it and revalidate against it.
        Reading the epoch first runs the staleness detection, so a
        detectable registry/membership change bumps it immediately."""
        self._validate_caches()
        return self._cache_epoch

    def clear_caches(self) -> None:
        """Drop memoised interpretations (after member/mapper changes)."""
        self._interpret_cache.clear()
        self._identify_cache.clear()
        self._rs_only_cache.clear()
        self._cache_epoch += 1
        self._registry_version_seen = self.registry.version
        self._members_counts_seen = self._members_fingerprint()

    def _members_fingerprint(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted((name, len(members))
                            for name, members in self.rs_members.items()))

    def _validate_caches(self) -> None:
        """Drop the memos if the scheme registry or (detectably) the
        member populations changed under us.

        Membership is compared by per-IXP counts, which catches the
        common in-place ``rs_members[ixp].add/discard`` mutations live;
        an equal-size member *swap* still needs an explicit
        :meth:`clear_caches` / :meth:`update_members`.
        """
        if self._registry_version_seen != self.registry.version or \
                self._members_counts_seen != self._members_fingerprint():
            self.clear_caches()

    def update_members(self, ixp_name: str, members: Iterable[int]) -> None:
        """Replace the RS member population of *ixp_name* and invalidate
        every memo that may embed the old population."""
        self.rs_members[ixp_name] = set(members)
        self.clear_caches()

    # -- per-IXP helpers ----------------------------------------------------------

    def resolve_peer(self, ixp_name: str, encoded_asn: int) -> int:
        """Resolve a community-encoded peer ASN to the real member ASN."""
        mapper = self.mappers.get(ixp_name)
        if mapper is None:
            return encoded_asn
        return mapper.resolve(encoded_asn)

    def classify_for_ixp(
        self, ixp_name: str, communities: Iterable[Community]
    ) -> List[Tuple[Community, Classification]]:
        """Classify *communities* under the scheme of *ixp_name*."""
        scheme = self.registry.get(ixp_name)
        return scheme.classify_set(communities)

    def interpret_for_ixp(
        self, ixp_name: str, communities: Iterable[Community]
    ) -> Optional[InterpretedPolicy]:
        """Turn a community set into an :class:`InterpretedPolicy` for
        *ixp_name* (None if no community belongs to the scheme).

        NONE + INCLUDE wins over ALL + EXCLUDE when both appear, matching
        route-server semantics (section 4.1, step 4).
        """
        cache_key: Optional[Tuple[str, FrozenSet[Community]]] = None
        if isinstance(communities, frozenset):
            self._validate_caches()
            cache_key = (ixp_name, communities)
            cached = self._interpret_cache.get(cache_key, _MISS)
            if cached is not _MISS:
                return cached
        result = self._interpret_for_ixp_uncached(ixp_name, communities)
        if cache_key is not None:
            self._interpret_cache[cache_key] = result
        return result

    def _interpret_for_ixp_uncached(
        self, ixp_name: str, communities: Iterable[Community]
    ) -> Optional[InterpretedPolicy]:
        classified = self.classify_for_ixp(ixp_name, communities)
        if not classified:
            return None
        members = self.rs_members.get(ixp_name, set())
        has_none = any(c.action is RSAction.NONE for _, c in classified)
        includes: Set[int] = set()
        excludes: Set[int] = set()
        unresolved: Set[int] = set()
        for _, classification in classified:
            if classification.peer_asn is None:
                continue
            resolved = self.resolve_peer(ixp_name, classification.peer_asn)
            target = includes if classification.action is RSAction.INCLUDE else (
                excludes if classification.action is RSAction.EXCLUDE else None)
            if target is None:
                continue
            if members and resolved not in members:
                unresolved.add(classification.peer_asn)
            target.add(resolved)
        if has_none:
            return InterpretedPolicy(
                ixp_name=ixp_name, mode="none-except",
                listed=frozenset(includes), unresolved=frozenset(unresolved))
        return InterpretedPolicy(
            ixp_name=ixp_name, mode="all-except",
            listed=frozenset(excludes), unresolved=frozenset(unresolved))

    # -- IXP identification ---------------------------------------------------------

    def identify_ixps(
        self, communities: Iterable[Community]
    ) -> List[IXPIdentification]:
        """Candidate IXPs whose route server these communities target.

        Candidates are ranked by confidence: schemes whose RS ASN appears
        in the values come first; otherwise the combination of referenced
        peer ASNs must (almost) all be members of the candidate IXP
        (section 4.2's disambiguation for bare EXCLUDE lists).
        """
        community_list = list(communities)
        results: List[IXPIdentification] = []
        for scheme in self.registry:
            classified = scheme.classify_set(community_list)
            if not classified:
                continue
            rs_asn_match = scheme.mentions_rs_asn(
                community for community, _ in classified)
            overlap = self._member_overlap(scheme, classified)
            if not rs_asn_match and overlap < self.min_member_overlap:
                continue
            results.append(IXPIdentification(
                ixp_name=scheme.ixp_name,
                rs_asn_match=rs_asn_match,
                member_overlap=overlap,
                classifications=tuple(classified),
            ))
        results.sort(key=lambda r: (-r.confidence, r.ixp_name))
        return results

    def identify_unique_ixp(
        self, communities: Iterable[Community]
    ) -> Optional[IXPIdentification]:
        """The single IXP the communities can be attributed to, or None if
        the attribution is ambiguous or impossible (conservative)."""
        cache_key: Optional[Tuple[float, FrozenSet[Community]]] = None
        if isinstance(communities, frozenset):
            self._validate_caches()
            cache_key = (self.min_member_overlap, communities)
            cached = self._identify_cache.get(cache_key, _MISS)
            if cached is not _MISS:
                return cached
        result = self._identify_unique_ixp_uncached(communities)
        if cache_key is not None:
            self._identify_cache[cache_key] = result
        return result

    def _identify_unique_ixp_uncached(
        self, communities: Iterable[Community]
    ) -> Optional[IXPIdentification]:
        candidates = self.identify_ixps(communities)
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        strong = [c for c in candidates if c.rs_asn_match]
        if len(strong) == 1:
            return strong[0]
        # Several candidates: accept the best only if it clearly dominates.
        best, runner_up = candidates[0], candidates[1]
        if best.confidence > runner_up.confidence + 0.5:
            return best
        return None

    def _member_overlap(
        self,
        scheme: CommunityScheme,
        classified: Iterable[Tuple[Community, Classification]],
    ) -> float:
        members = self.rs_members.get(scheme.ixp_name, set())
        referenced: Set[int] = set()
        for _, classification in classified:
            if classification.peer_asn is None:
                continue
            if classification.action in (RSAction.EXCLUDE, RSAction.INCLUDE):
                referenced.add(self.resolve_peer(scheme.ixp_name,
                                                 classification.peer_asn))
        if not referenced:
            return 0.0
        if not members:
            return 0.0
        inside = sum(1 for asn in referenced if asn in members)
        return inside / len(referenced)

    # -- convenience ------------------------------------------------------------------

    def rs_communities_only(
        self, ixp_name: str, communities: Iterable[Community]
    ) -> FrozenSet[Community]:
        """The subset of *communities* that belongs to the IXP's grammar."""
        cache_key: Optional[Tuple[str, FrozenSet[Community]]] = None
        if isinstance(communities, frozenset):
            self._validate_caches()
            cache_key = (ixp_name, communities)
            cached = self._rs_only_cache.get(cache_key)
            if cached is not None:
                return cached
        scheme = self.registry.get(ixp_name)
        result = frozenset(c for c in communities if scheme.is_rs_community(c))
        if cache_key is not None:
            self._rs_only_cache[cache_key] = result
        return result


#: Cache-miss sentinel (None is a valid cached value).
_MISS = object()
