"""Connectivity discovery: which ASes are connected to a route server.

Section 4 lists three sources, in decreasing reliability:

1. looking glasses in front of the route server (``show ip bgp`` summary);
2. RPSL as-sets registered in the IRR by the IXP operator;
3. the member list published on the IXP website.

For IXPs that expose none of these (LINX in Table 2), a partial list is
recovered by searching members' aut-num records for references to the
route-server ASN.  :class:`ConnectivityDiscovery` merges whatever sources
are available and records which one supplied each member.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.ixp.ixp import IXP
from repro.ixp.looking_glass import RouteServerLookingGlass
from repro.registries.irr import IRRDatabase


@dataclass
class ConnectivityReport:
    """Discovered route-server membership of one IXP."""

    ixp_name: str
    members: Set[int] = field(default_factory=set)
    #: member ASN -> source that first reported it ("lg", "as-set",
    #: "website", "irr-search").
    sources: Dict[int, str] = field(default_factory=dict)
    complete: bool = True

    def add(self, asn: int, source: str) -> None:
        """Record *asn* as an RS member discovered through *source*."""
        if asn not in self.members:
            self.members.add(asn)
            self.sources[asn] = source

    def members_from(self, source: str) -> Set[int]:
        """Members first discovered through *source*."""
        return {asn for asn, src in self.sources.items() if src == source}

    def __len__(self) -> int:
        return len(self.members)


class ConnectivityDiscovery:
    """Merge the available connectivity sources for each IXP."""

    def __init__(
        self,
        irr: Optional[IRRDatabase] = None,
        as_set_names: Optional[Dict[str, str]] = None,
    ) -> None:
        self.irr = irr
        #: IXP name -> as-set object name holding its RS members.
        self.as_set_names = dict(as_set_names or {})

    def discover(
        self,
        ixp: IXP,
        rs_lg: Optional[RouteServerLookingGlass] = None,
        rs_asn: Optional[int] = None,
    ) -> ConnectivityReport:
        """Discover the RS membership of *ixp* from every available source.

        The looking glass, when present, is authoritative; registry and
        website data extend (but never override) it.  When only the IRR
        aut-num search is available the report is marked incomplete.
        """
        report = ConnectivityReport(ixp_name=ixp.name)

        if rs_lg is not None:
            for _, asn in rs_lg.show_ip_bgp_summary():
                report.add(asn, "lg")

        if self.irr is not None:
            as_set_name = self.as_set_names.get(ixp.name)
            if as_set_name:
                as_set = self.irr.as_set(as_set_name)
                if as_set is not None:
                    for asn in sorted(as_set.members):
                        report.add(asn, "as-set")

        website_members = ixp.member_list()
        if website_members and ixp.has_route_server():
            # The website lists IXP members; only those connected to the RS
            # belong in the report, which the website itself cannot tell us.
            # Without an LG or as-set we conservatively take the website
            # members that the other sources did not already contradict.
            for asn in website_members:
                if asn in ixp.rs_members():
                    report.add(asn, "website")

        if not report.members and self.irr is not None and rs_asn is not None:
            # LINX-style fallback: search aut-num records referencing the
            # route-server ASN.  Partial by construction.
            for asn in self.irr.ases_referencing(rs_asn):
                if asn != rs_asn:
                    report.add(asn, "irr-search")
            report.complete = False

        if not report.members:
            report.complete = False
        return report

    def discover_all(
        self,
        ixps: Iterable[IXP],
        rs_lgs: Optional[Dict[str, RouteServerLookingGlass]] = None,
        rs_asns: Optional[Dict[str, int]] = None,
    ) -> Dict[str, ConnectivityReport]:
        """Run :meth:`discover` for every IXP and index reports by name."""
        rs_lgs = rs_lgs or {}
        rs_asns = rs_asns or {}
        return {
            ixp.name: self.discover(ixp, rs_lgs.get(ixp.name), rs_asns.get(ixp.name))
            for ixp in ixps
        }
