"""Looking-glass validation of inferred links (section 5.1).

For every inferred link relevant to a validation looking glass (an LG
operated by one of the link's endpoints or by one of their customers),
the validator queries ``show ip bgp <prefix>`` for up to six
geographically distant prefixes originated behind the far endpoint and
checks whether any returned AS path contains the link.  Observing the
link confirms it; not observing it is inconclusive — especially through
LGs that display only the best path (figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.prefix import Prefix
from repro.ixp.looking_glass import ASLookingGlass
from repro.measurement.geolocation import GeolocationDB


@dataclass
class LinkValidationOutcome:
    """Validation outcome for one (link, looking glass) pair."""

    link: Tuple[int, int]
    lg_asn: int
    confirmed: bool
    prefixes_tried: int
    display_all_paths: bool
    ixp_name: Optional[str] = None


@dataclass
class ValidationReport:
    """Aggregate validation results."""

    outcomes: List[LinkValidationOutcome] = field(default_factory=list)

    def tested_links(self) -> Set[Tuple[int, int]]:
        """Links for which at least one LG was queried."""
        return {outcome.link for outcome in self.outcomes}

    def confirmed_links(self) -> Set[Tuple[int, int]]:
        """Links confirmed by at least one LG."""
        return {o.link for o in self.outcomes if o.confirmed}

    @property
    def num_tested(self) -> int:
        """Number of distinct links tested."""
        return len(self.tested_links())

    @property
    def num_confirmed(self) -> int:
        """Number of distinct links confirmed."""
        return len(self.confirmed_links())

    @property
    def confirmation_rate(self) -> float:
        """Fraction of tested links confirmed to exist."""
        if not self.num_tested:
            return 0.0
        return self.num_confirmed / self.num_tested

    def per_ixp(self) -> Dict[str, Dict[str, object]]:
        """Table 3: per-IXP tested / confirmed counts and rates."""
        tested: Dict[str, Set[Tuple[int, int]]] = {}
        confirmed: Dict[str, Set[Tuple[int, int]]] = {}
        for outcome in self.outcomes:
            name = outcome.ixp_name or "unknown"
            tested.setdefault(name, set()).add(outcome.link)
            if outcome.confirmed:
                confirmed.setdefault(name, set()).add(outcome.link)
        result: Dict[str, Dict[str, object]] = {}
        for name, links in tested.items():
            ok = confirmed.get(name, set())
            result[name] = {
                "validated": len(links),
                "confirmed": len(ok),
                "rate": len(ok) / len(links) if links else 0.0,
            }
        return result

    def per_looking_glass(self) -> Dict[int, Dict[str, object]]:
        """Figure 8: per-LG confirmation rate, with the display mode."""
        grouped: Dict[int, List[LinkValidationOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.lg_asn, []).append(outcome)
        result: Dict[int, Dict[str, object]] = {}
        for lg_asn, outcomes in grouped.items():
            links = {o.link for o in outcomes}
            confirmed = {o.link for o in outcomes if o.confirmed}
            result[lg_asn] = {
                "tested": len(links),
                "confirmed": len(confirmed),
                "rate": len(confirmed) / len(links) if links else 0.0,
                "display_all_paths": outcomes[0].display_all_paths,
            }
        return result

    def rate_by_display_mode(self) -> Dict[str, float]:
        """Average per-LG confirmation rate split by display mode."""
        per_lg = self.per_looking_glass()
        buckets: Dict[str, List[float]] = {"all-paths": [], "best-path": []}
        for stats in per_lg.values():
            key = "all-paths" if stats["display_all_paths"] else "best-path"
            buckets[key].append(float(stats["rate"]))
        return {key: (sum(values) / len(values) if values else 0.0)
                for key, values in buckets.items()}


class LinkValidator:
    """Validate inferred links against AS looking glasses."""

    def __init__(
        self,
        looking_glasses: Sequence[ASLookingGlass],
        origin_prefixes: Mapping[int, Sequence[Prefix]],
        geolocation: Optional[GeolocationDB] = None,
        max_prefixes_per_link: int = 6,
        relevance: Optional[Callable[[int, Tuple[int, int]], bool]] = None,
    ) -> None:
        self.looking_glasses = list(looking_glasses)
        self.origin_prefixes = {asn: list(prefixes)
                                for asn, prefixes in origin_prefixes.items()}
        self.geolocation = geolocation
        self.max_prefixes_per_link = max_prefixes_per_link
        #: relevance(lg_asn, link) -> bool; default: the LG belongs to one
        #: of the link endpoints.
        self.relevance = relevance or (lambda lg_asn, link: lg_asn in link)

    # -- validation -------------------------------------------------------------------

    def validate(
        self,
        links: Iterable[Tuple[int, int]],
        link_ixp: Optional[Mapping[Tuple[int, int], str]] = None,
    ) -> ValidationReport:
        """Validate every link against every relevant looking glass."""
        link_ixp = dict(link_ixp or {})
        report = ValidationReport()
        for link in sorted(set(links)):
            for lg in self.looking_glasses:
                if not self.relevance(lg.asn, link):
                    continue
                outcome = self._validate_one(link, lg)
                outcome.ixp_name = link_ixp.get(link)
                report.outcomes.append(outcome)
        return report

    def _validate_one(self, link: Tuple[int, int],
                      lg: ASLookingGlass) -> LinkValidationOutcome:
        a, b = link
        # Query prefixes originated behind the far endpoint; an LG hosted
        # by a third party (e.g. a customer) tries both endpoints.
        if lg.asn == a:
            candidates = self._candidate_prefixes(b)
        elif lg.asn == b:
            candidates = self._candidate_prefixes(a)
        else:
            candidates = self._candidate_prefixes(b) + self._candidate_prefixes(a)
            candidates = candidates[: self.max_prefixes_per_link]
        confirmed = False
        tried = 0
        for prefix in candidates:
            tried += 1
            if self._link_in_lg_paths(lg, prefix, link):
                confirmed = True
                break
        return LinkValidationOutcome(
            link=link, lg_asn=lg.asn, confirmed=confirmed,
            prefixes_tried=tried, display_all_paths=lg.display_all_paths)

    def _candidate_prefixes(self, origin_asn: int) -> List[Prefix]:
        prefixes = self.origin_prefixes.get(origin_asn, [])
        if not prefixes:
            return []
        if self.geolocation is not None:
            return self.geolocation.select_distant(
                prefixes, self.max_prefixes_per_link)
        return list(prefixes[: self.max_prefixes_per_link])

    @staticmethod
    def _link_in_lg_paths(lg: ASLookingGlass, prefix: Prefix,
                          link: Tuple[int, int]) -> bool:
        wanted = (min(link), max(link))
        for route in lg.show_ip_bgp_prefix(prefix):
            path = route.as_path
            for left, right in zip(path, path[1:]):
                if (min(left, right), max(left, right)) == wanted:
                    return True
        return False
