"""Active inference from looking-glass queries (section 4.1).

The five steps against a route-server looking glass:

1. ``show ip bgp`` — obtain the members ARS and their IXP addresses;
2. ``show ip bgp neighbor <addr> routes`` — the prefixes P_a each member
   advertises;
3. ``show ip bgp <prefix>`` for a sampled, sharing-optimised subset of
   prefixes — the RS communities C_{a,p};
4. build N_a per member;
5. infer links from reciprocal ALLOW (done by the engine).

When an IXP has no route-server LG, the same communities can be read from
*third-party* looking glasses operated by RS members: the member's LG
shows the routes the route server exported to it, with the announcing
members' communities intact (:class:`ThirdPartyCollection`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.communities import Community
from repro.bgp.prefix import Prefix
from repro.core.communities import RSCommunityInterpreter
from repro.core.query_cost import QueryCostModel, QueryPlan
from repro.core.reachability import PolicyObservation
from repro.ixp.looking_glass import ASLookingGlass, RouteServerLookingGlass


@dataclass
class ActiveCollection:
    """Everything gathered from one route-server looking glass."""

    ixp_name: str
    members: Set[int] = field(default_factory=set)
    member_ips: Dict[int, str] = field(default_factory=dict)
    announced_prefixes: Dict[int, List[Prefix]] = field(default_factory=dict)
    #: member -> list of (prefix, communities) observations
    observations: Dict[int, List[Tuple[Prefix, FrozenSet[Community]]]] = field(
        default_factory=dict)
    plan: Optional[QueryPlan] = None
    total_queries: int = 0

    def members_with_communities(self) -> Set[int]:
        """Members for which at least one community observation exists."""
        return {asn for asn, obs in self.observations.items() if obs}

    def policy_observations(
        self, interpreter: RSCommunityInterpreter, source: str = "active"
    ) -> List[PolicyObservation]:
        """Interpret the raw community observations into policy observations."""
        return interpret_raw_observations(
            interpreter, self.ixp_name, self.observations, source)


def interpret_raw_observations(
    interpreter: RSCommunityInterpreter,
    ixp_name: str,
    observations: Mapping[int, Sequence[Tuple[Prefix, FrozenSet[Community]]]],
    source: str,
) -> List[PolicyObservation]:
    """Turn raw per-member (prefix, communities) pairs into policy
    observations.

    Distinct community bags are few, so the per-bag interpretation is
    served from the interpreter's memoised cache; an announcement without
    any RS community means the default ALL behaviour.
    """
    result: List[PolicyObservation] = []
    for member_asn, entries in observations.items():
        for prefix, communities in entries:
            interpreted = interpreter.interpret_for_ixp(ixp_name, communities)
            if interpreted is None:
                result.append(PolicyObservation(
                    member_asn=member_asn, ixp_name=ixp_name,
                    prefix=prefix, mode="all-except", listed=frozenset(),
                    source=source))
                continue
            result.append(PolicyObservation(
                member_asn=member_asn, ixp_name=ixp_name,
                prefix=prefix, mode=interpreted.mode,
                listed=interpreted.listed, source=source))
    return result


class ActiveInference:
    """Drive a route-server looking glass through steps 1-3."""

    def __init__(
        self,
        lg: RouteServerLookingGlass,
        sample_fraction: float = 0.10,
        max_prefixes_per_member: int = 100,
    ) -> None:
        self.lg = lg
        self.sample_fraction = sample_fraction
        self.max_prefixes_per_member = max_prefixes_per_member

    def collect(
        self,
        skip_members: Optional[Iterable[int]] = None,
        covered_prefixes: Optional[Mapping[int, Iterable[Prefix]]] = None,
    ) -> ActiveCollection:
        """Run steps 1-3 and return the raw collection.

        ``skip_members`` / ``covered_prefixes`` implement the passive-first
        optimisation of equation 2: members (or member prefixes) already
        covered passively are not queried again.
        """
        ixp_name = self.lg.ixp_name
        collection = ActiveCollection(ixp_name=ixp_name)
        skip = set(skip_members or ())
        # Queries are accounted as the delta over this collection, so
        # repeated runs against one (shared) looking glass report the
        # same per-run cost instead of the LG's cumulative lifetime total.
        queries_before = self.lg.counter.total

        # Step 1: membership.
        for ip_address, asn in self.lg.show_ip_bgp_summary():
            collection.members.add(asn)
            collection.member_ips[asn] = ip_address

        # Step 2: per-member advertised prefixes.
        for asn in sorted(collection.members):
            if asn in skip:
                continue
            prefixes = self.lg.show_ip_bgp_neighbor_routes(collection.member_ips[asn])
            collection.announced_prefixes[asn] = list(prefixes)

        # Step 3: sampled, sharing-optimised prefix queries.
        cost_model = QueryCostModel(
            ixp_name=ixp_name,
            announced_prefixes=collection.announced_prefixes,
            sample_fraction=self.sample_fraction,
            max_prefixes_per_member=self.max_prefixes_per_member,
        )
        plan = cost_model.build_plan(skip_members=skip,
                                     covered_prefixes=covered_prefixes)
        collection.plan = plan

        for prefix in plan.prefix_queries:
            for route in self.lg.show_ip_bgp_prefix(prefix):
                member = route.learned_from if route.learned_from is not None \
                    else (route.as_path[0] if route.as_path else None)
                if member is None or member in skip:
                    continue
                collection.observations.setdefault(member, []).append(
                    (prefix, frozenset(route.communities)))

        collection.total_queries = self.lg.counter.total - queries_before
        return collection


@dataclass
class ThirdPartyCollection:
    """Communities collected from the looking glass of an RS member.

    Only the members that allow the LG's operator to receive their routes
    are visible, so the collection is inherently partial (section 4.1).
    """

    ixp_name: str
    lg_asn: int
    observations: Dict[int, List[Tuple[Prefix, FrozenSet[Community]]]] = field(
        default_factory=dict)
    total_queries: int = 0

    def members_with_communities(self) -> Set[int]:
        """Members whose communities the third-party LG exposed."""
        return {asn for asn, obs in self.observations.items() if obs}

    def policy_observations(
        self, interpreter: RSCommunityInterpreter
    ) -> List[PolicyObservation]:
        """Interpret the raw observations into policy observations."""
        return interpret_raw_observations(
            interpreter, self.ixp_name, self.observations, "third-party")


def collect_from_third_party_lg(
    ixp_name: str,
    lg: ASLookingGlass,
    rs_members: Iterable[int],
    interpreter: RSCommunityInterpreter,
    max_prefixes_per_member: int = 20,
) -> ThirdPartyCollection:
    """Query a member-operated LG for RS communities (section 4.1, last
    paragraph; Table 2's 'active via member LG' rows).

    The LG's view is scanned for routes whose first hop is a known RS
    member and which carry communities belonging to the IXP's grammar.
    """
    collection = ThirdPartyCollection(ixp_name=ixp_name, lg_asn=lg.asn)
    member_set = set(rs_members)
    per_member_count: Dict[int, int] = {}
    queries_before = lg.counter.total
    for prefix in lg.prefixes():
        for route in lg.show_ip_bgp_prefix(prefix):
            first_hop = route.learned_from if route.learned_from is not None \
                else (route.as_path[0] if route.as_path else None)
            if first_hop is None or first_hop not in member_set:
                continue
            if first_hop == lg.asn:
                continue
            if per_member_count.get(first_hop, 0) >= max_prefixes_per_member:
                continue
            rs_communities = interpreter.rs_communities_only(
                ixp_name, route.communities)
            collection.observations.setdefault(first_hop, []).append(
                (prefix, rs_communities))
            per_member_count[first_hop] = per_member_count.get(first_hop, 0) + 1
    collection.total_queries = lg.counter.total - queries_before
    return collection
