"""The bitset inference data plane: interned observation planes.

The object engine (:class:`~repro.core.engine.MLPInferenceEngine` with
``inference_backend="object"``) materialises one
:class:`~repro.core.reachability.PolicyObservation` per observed
(member, prefix) pair and merges them with per-member set arithmetic.
This module is the vectorized counterpart: observations become
``(member, prefix id, policy id, source code)`` tuples over shared
interners, passive extraction is fused (clean-filter, IXP attribution,
setter pin-pointing and community interpretation collapse into one memo
keyed on the distinct ``(AS path, community bag)`` pairs — collector
archives repeat each pair once per exported prefix), and the merged
per-member policies scatter into a
:class:`~repro.runtime.reachmatrix.ReachabilityPlane` whose reciprocal
``M & M.T`` kernel emits the links.

Bit-identity with the object path is non-negotiable: the fast merge
only takes the direct route for members whose observations all carry
one distinct policy (the overwhelming majority); members with mixed
policies fall back to the *same*
:func:`~repro.core.reachability.merge_observations` code the object
engine runs, so inconsistent-announcement handling can never drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.messages import RibEntry
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.core.communities import RSCommunityInterpreter
from repro.core.passive import PassiveInference
from repro.core.reachability import (
    MODE_ALL_EXCEPT,
    MemberReachability,
    PolicyObservation,
    merge_observations,
)
from repro.runtime.bitset import BitsetIndex
from repro.runtime.interning import Interner
from repro.runtime.reachmatrix import ReachabilityPlane, allow_mask_for

#: Source codes of observation rows (indexes into SOURCE_NAMES).
SOURCE_NAMES = ("passive", "active", "third-party")
PASSIVE, ACTIVE, THIRD_PARTY = range(3)

#: One interned observation: (member ASN, prefix id, policy id, source).
Row = Tuple[int, int, int, int]

#: The default policy of an announcement without interpretable RS
#: communities: export to everyone.
DEFAULT_POLICY = (MODE_ALL_EXCEPT, frozenset())


class PolicyTable:
    """Interner of distinct ``(mode, listed)`` export policies."""

    __slots__ = ("_interner",)

    def __init__(self) -> None:
        self._interner = Interner()

    def intern(self, mode: str, listed: FrozenSet[int]) -> int:
        return self._interner.intern((mode, listed))

    def policy(self, policy_id: int) -> Tuple[str, FrozenSet[int]]:
        return self._interner.value_of(policy_id)

    def __len__(self) -> int:
        return len(self._interner)


@dataclass
class ObservationPlane:
    """One IXP's raw observation rows plus collection metadata."""

    ixp_name: str
    rows: List[Row] = field(default_factory=list)
    #: setters of passive observations (unfiltered, as the object path).
    passive_members: Set[int] = field(default_factory=set)
    #: members whose communities active collection exposed.
    active_members: Set[int] = field(default_factory=set)
    #: per-setter prefixes covered passively (actual Prefix objects:
    #: the active query planner consumes them).
    covered_prefixes: Dict[int, Set[Prefix]] = field(default_factory=dict)
    #: member population after the LG summary was consulted.
    members: Set[int] = field(default_factory=set)
    active_queries: int = 0


@dataclass
class MergedPlane:
    """One IXP's post-merge state, ready for per-call result assembly."""

    ixp_name: str
    members: Set[int]
    passive_members: Set[int]
    active_members: Set[int]
    active_queries: int
    reachabilities: Dict[int, MemberReachability]
    plane: ReachabilityPlane


@dataclass
class PlaneCacheKey:
    """Identity of one bitset-plane computation on a shared context.

    Two engine runs may reuse cached planes only when every collection
    input is the same: the passive entry list (by object identity — the
    archive memoises it), the looking glasses (by identity per LG *and*
    by a view signature capturing their membership/route-table sizes,
    so re-announcements between runs force recollection), the sampling
    knobs, and the interpretation inputs (members, relationships,
    registry, mappers, by value).  ``matches`` errs on the side of
    recomputation.
    """

    passive_entries: Optional[Sequence[RibEntry]]
    rs_looking_glasses: Mapping[str, object]
    third_party_lgs: Mapping[str, Sequence[object]]
    sample_fraction: float
    max_prefixes_per_member: int
    rs_members: Mapping[str, Set[int]]
    relationships: Mapping[Tuple[int, int], Relationship]
    registry: object
    registry_version: int
    mappers: Mapping[str, object]
    lg_signature: Tuple = ()

    def __post_init__(self) -> None:
        if not self.lg_signature:
            self.lg_signature = lg_view_signature(
                self.rs_looking_glasses, self.third_party_lgs)

    def matches(self, other: "PlaneCacheKey") -> bool:
        if self.passive_entries is None or other.passive_entries is None:
            if (self.passive_entries is None) != (other.passive_entries is None):
                return False
        elif self.passive_entries is not other.passive_entries:
            return False
        return (self.rs_looking_glasses == other.rs_looking_glasses
                and self.third_party_lgs == other.third_party_lgs
                and self.lg_signature == other.lg_signature
                and self.sample_fraction == other.sample_fraction
                and self.max_prefixes_per_member == other.max_prefixes_per_member
                and self.rs_members == other.rs_members
                and self.registry is other.registry
                and self.registry_version == other.registry_version
                and self.mappers == other.mappers
                and self.relationships == other.relationships)


def lg_view_signature(
    rs_looking_glasses: Mapping[str, object],
    third_party_lgs: Mapping[str, Sequence[object]],
) -> Tuple:
    """A cheap signature of the looking glasses' current views.

    Captures each route server's and member LG's mutation counter
    (``RouteServer.version`` / ``ASLookingGlass.version``), so *any*
    membership/RIB/view change between runs on one scenario — including
    in-place re-announcements that leave route counts unchanged —
    invalidates the cached planes (LG objects compare by identity,
    which alone cannot see such mutations).
    """
    rs_parts = tuple(
        (name, rs_looking_glasses[name].route_server.version)
        for name in sorted(rs_looking_glasses))
    third_parts = tuple(
        (name, tuple(lg.version for lg in third_party_lgs[name]))
        for name in sorted(third_party_lgs))
    return (rs_parts, third_parts)


# -- passive extraction --------------------------------------------------------


def extract_passive_planes(
    entries: Optional[Sequence[RibEntry]],
    interpreter: RSCommunityInterpreter,
    relationships: Mapping[Tuple[int, int], Relationship],
    prefixes: Interner,
    policies: PolicyTable,
    planes: Dict[str, ObservationPlane],
) -> None:
    """Scatter archived RIB entries into per-IXP observation planes.

    Fuses ``PassiveInference.extract`` + ``policy_observations`` into
    one pass: per distinct (AS path, community bag) the clean filter,
    IXP attribution, setter pin-pointing and policy interpretation run
    once; every further entry carrying the pair only appends an
    interned row.  Row content and order are identical to the object
    path's per-IXP observation lists.
    """
    if entries is None:
        return
    passive = PassiveInference(interpreter, relationships)
    # (path asns, community bag) -> None (filtered) or
    # (ixp name, setter ASN, policy id).
    skeletons: Dict[Tuple[Tuple[int, ...], FrozenSet], Optional[Tuple]] = {}
    # Identity layer over the value memo: columnar propagation shares
    # one ASPath/bag object per (origin, observer) across prefixes, and
    # the archive's RibEntryTable value-interns paths/bags so *every*
    # entry with the same path shares one object — the common repeat
    # resolves on two id() lookups without hashing the path tuple.
    # Safe because *entries* holds every keyed object alive for the
    # whole pass (ids cannot be reused).
    id_skeletons: Dict[Tuple[int, int], Optional[Tuple]] = {}
    for entry in entries:
        ident = (id(entry.as_path), id(entry.communities))
        skeleton = id_skeletons.get(ident, _MISS)
        if skeleton is _MISS:
            key = (entry.as_path.asns, entry.communities)
            skeleton = skeletons.get(key, _MISS)
            if skeleton is _MISS:
                skeleton = _passive_skeleton(
                    entry, interpreter, passive, policies)
                skeletons[key] = skeleton
            id_skeletons[ident] = skeleton
        if skeleton is None:
            continue
        ixp_name, setter, policy_id = skeleton
        plane = planes.get(ixp_name)
        if plane is None:
            plane = planes[ixp_name] = ObservationPlane(ixp_name=ixp_name)
        plane.rows.append((setter, prefixes.intern(entry.prefix),
                           policy_id, PASSIVE))
        plane.passive_members.add(setter)
        plane.covered_prefixes.setdefault(setter, set()).add(entry.prefix)


_MISS = object()


def _passive_skeleton(
    entry: RibEntry,
    interpreter: RSCommunityInterpreter,
    passive: PassiveInference,
    policies: PolicyTable,
) -> Optional[Tuple[str, int, int]]:
    """The prefix-independent outcome of the passive pipeline for one
    distinct (AS path, community bag) pair."""
    if not entry.is_clean():
        return None
    if not entry.communities:
        return None
    identification = interpreter.identify_unique_ixp(entry.communities)
    if identification is None:
        return None
    ixp_name = identification.ixp_name
    setter = passive.identify_setter(ixp_name, entry)
    if setter is None:
        return None
    rs_communities = interpreter.rs_communities_only(
        ixp_name, entry.communities)
    interpreted = interpreter.interpret_for_ixp(ixp_name, rs_communities)
    if interpreted is None:
        policy_id = policies.intern(*DEFAULT_POLICY)
    else:
        policy_id = policies.intern(interpreted.mode, interpreted.listed)
    return ixp_name, setter, policy_id


def rows_from_raw_observations(
    ixp_name: str,
    observations: Mapping[int, Sequence[Tuple[Prefix, FrozenSet]]],
    interpreter: RSCommunityInterpreter,
    prefixes: Interner,
    policies: PolicyTable,
    source: int,
) -> List[Row]:
    """Interned rows for an active/third-party raw collection, in the
    same member/prefix order as ``interpret_raw_observations``."""
    rows: List[Row] = []
    for member_asn, entries in observations.items():
        for prefix, communities in entries:
            interpreted = interpreter.interpret_for_ixp(ixp_name, communities)
            if interpreted is None:
                policy_id = policies.intern(*DEFAULT_POLICY)
            else:
                policy_id = policies.intern(
                    interpreted.mode, interpreted.listed)
            rows.append((member_asn, prefixes.intern(prefix),
                         policy_id, source))
    return rows


# -- merge ---------------------------------------------------------------------


def merge_rows(
    ixp_name: str,
    rows: Sequence[Row],
    members: Set[int],
    policies: PolicyTable,
    prefixes: Interner,
) -> Dict[int, MemberReachability]:
    """Merge interned observation rows into per-member reachabilities.

    Equivalent to grouping ``PolicyObservation`` objects by member and
    calling :func:`merge_observations` per member — and literally *is*
    that for members with more than one distinct policy; the single
    policy fast path skips object materialisation entirely.
    """
    grouped: Dict[int, List[Row]] = {}
    for row in rows:
        member_asn = row[0]
        if members and member_asn not in members:
            continue
        grouped.setdefault(member_asn, []).append(row)

    reachabilities: Dict[int, MemberReachability] = {}
    for member_asn, member_rows in grouped.items():
        policy_ids = {row[2] for row in member_rows}
        if len(policy_ids) == 1:
            mode, listed = policies.policy(next(iter(policy_ids)))
            prefix_ids = {row[1] for row in member_rows if row[1] is not None}
            reachabilities[member_asn] = MemberReachability(
                member_asn=member_asn,
                ixp_name=ixp_name,
                mode=mode,
                listed=listed,
                sources=frozenset(SOURCE_NAMES[row[3]] for row in member_rows),
                prefixes_observed=(len(prefix_ids) if prefix_ids
                                   else len(member_rows)),
                inconsistent_prefixes=0,
            )
            continue
        # Mixed policies (the <0.5% inconsistency tail): rebuild the
        # observation objects and run the reference merge.
        observations = []
        for asn, prefix_id, policy_id, source in member_rows:
            mode, listed = policies.policy(policy_id)
            observations.append(PolicyObservation(
                member_asn=asn, ixp_name=ixp_name,
                prefix=(prefixes.value_of(prefix_id)
                        if prefix_id is not None else None),
                mode=mode, listed=listed,
                source=SOURCE_NAMES[source]))
        merged = merge_observations(observations, members)
        if merged is not None:
            reachabilities[member_asn] = merged
    return reachabilities


# -- plane assembly ------------------------------------------------------------


def build_reachability_plane(
    observation_plane: ObservationPlane,
    reachabilities: Dict[int, MemberReachability],
    index: BitsetIndex,
) -> ReachabilityPlane:
    """Scatter merged reachabilities into the bitmask ALLOW plane."""
    plane = ReachabilityPlane(
        ixp_name=observation_plane.ixp_name,
        index=index,
        passive_members=frozenset(observation_plane.passive_members),
        active_members=frozenset(observation_plane.active_members),
        passive_mask=index.mask_of(observation_plane.passive_members),
        active_mask=index.mask_of(observation_plane.active_members),
        active_queries=observation_plane.active_queries,
    )
    mask_memo: Dict[Tuple[str, FrozenSet[int]], int] = {}
    for asn, reach in reachabilities.items():
        bit = index.bit_of.get(asn)
        if bit is None:
            continue
        policy = (reach.mode, reach.listed)
        base = mask_memo.get(policy)
        if base is None:
            base = allow_mask_for(reach.mode, reach.listed, index)
            mask_memo[policy] = base
        plane.allow_rows[bit] = base & ~(1 << bit)
        plane.policies[bit] = policy
        plane.sources[bit] = frozenset(reach.sources)
        plane.prefixes_observed[bit] = reach.prefixes_observed
        plane.inconsistent[bit] = reach.inconsistent_prefixes
        plane.covered_mask |= 1 << bit
        if "third-party" in reach.sources:
            plane.third_party_mask |= 1 << bit
    for row in observation_plane.rows:
        bit = index.bit_of.get(row[0])
        if bit is not None:
            plane.observation_counts[bit] = \
                plane.observation_counts.get(bit, 0) + 1
    return plane


def reachabilities_from_plane(plane: ReachabilityPlane
                              ) -> Dict[int, MemberReachability]:
    """The object-level view of a plane (bit-identical reconstruction)."""
    universe = plane.index.universe
    result: Dict[int, MemberReachability] = {}
    for bit in sorted(plane.policies):
        mode, listed = plane.policies[bit]
        result[universe[bit]] = MemberReachability(
            member_asn=universe[bit],
            ixp_name=plane.ixp_name,
            mode=mode,
            listed=listed,
            sources=plane.sources.get(bit, frozenset()),
            prefixes_observed=plane.prefixes_observed.get(bit, 0),
            inconsistent_prefixes=plane.inconsistent.get(bit, 0),
        )
    return result
