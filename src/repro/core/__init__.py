"""The paper's contribution: multilateral-peering (MLP) link inference.

The pipeline mirrors section 4 of the paper:

1. **connectivity** — discover which ASes are connected to each IXP route
   server (:mod:`repro.core.connectivity`);
2. **reachability** — recover each member's export policy from the RS
   communities it attaches, observed passively at route collectors
   (:mod:`repro.core.passive`) and actively through looking glasses
   (:mod:`repro.core.active`), interpreted against the per-IXP community
   grammars (:mod:`repro.core.communities`,
   :mod:`repro.core.reachability`);
3. **inference** — combine both, apply the reciprocity assumption and emit
   p2p links (:mod:`repro.core.engine`);
4. **cost accounting** (:mod:`repro.core.query_cost`), **reciprocity
   validation** (:mod:`repro.core.reciprocity`) and **looking-glass
   validation** (:mod:`repro.core.validation`).
"""

from repro.core.communities import RSCommunityInterpreter, IXPIdentification
from repro.core.connectivity import ConnectivityDiscovery, ConnectivityReport
from repro.core.reachability import PolicyObservation, MemberReachability, merge_observations
from repro.core.active import ActiveInference, ActiveCollection, ThirdPartyCollection
from repro.core.passive import PassiveInference, PassiveObservation
from repro.core.query_cost import QueryCostModel, QueryPlan
from repro.core.reciprocity import ReciprocityValidator, ReciprocityReport
from repro.core.engine import MLPInferenceEngine, MLPInferenceResult, IXPInference
from repro.core.validation import LinkValidator, ValidationReport

__all__ = [
    "RSCommunityInterpreter",
    "IXPIdentification",
    "ConnectivityDiscovery",
    "ConnectivityReport",
    "PolicyObservation",
    "MemberReachability",
    "merge_observations",
    "ActiveInference",
    "ActiveCollection",
    "ThirdPartyCollection",
    "PassiveInference",
    "PassiveObservation",
    "QueryCostModel",
    "QueryPlan",
    "ReciprocityValidator",
    "ReciprocityReport",
    "MLPInferenceEngine",
    "MLPInferenceResult",
    "IXPInference",
    "LinkValidator",
    "ValidationReport",
]
