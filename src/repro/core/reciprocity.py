"""Validation of the reciprocity assumption (section 4.4).

The inference assumes that if a member does not block another member on
*export*, it will not block it on *import* either.  AMS-IX generates its
route-server configuration from IRR objects, so both import and export
filters of its members are public; the paper checked 230 of them and
found the import filters at most as restrictive as the export filters.
:class:`ReciprocityValidator` reproduces that check against any IRR
database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.registries.irr import AutNumPolicy, IRRDatabase


@dataclass
class MemberFilterComparison:
    """Import/export filter comparison for one member."""

    asn: int
    blocked_export: Set[int] = field(default_factory=set)
    blocked_import: Set[int] = field(default_factory=set)

    @property
    def import_blocks_not_in_export(self) -> Set[int]:
        """ASes blocked on import but not on export — a violation of the
        reciprocity assumption."""
        return self.blocked_import - self.blocked_export

    @property
    def violates_reciprocity(self) -> bool:
        """True if the import filter is more restrictive than the export."""
        return bool(self.import_blocks_not_in_export)

    @property
    def import_more_permissive(self) -> bool:
        """True if the import filter blocks strictly fewer ASes."""
        return self.blocked_import < self.blocked_export


@dataclass
class ReciprocityReport:
    """Aggregate outcome of the reciprocity validation."""

    ixp_name: str
    comparisons: List[MemberFilterComparison] = field(default_factory=list)

    @property
    def members_checked(self) -> int:
        """Number of members with both filters available."""
        return len(self.comparisons)

    @property
    def violations(self) -> List[MemberFilterComparison]:
        """Members whose import filter is more restrictive than their export."""
        return [c for c in self.comparisons if c.violates_reciprocity]

    @property
    def num_violations(self) -> int:
        """Number of members violating the assumption."""
        return len(self.violations)

    @property
    def holds(self) -> bool:
        """True if no member violates the assumption (the paper's finding)."""
        return self.num_violations == 0

    @property
    def fraction_import_more_permissive(self) -> float:
        """Fraction of members whose import filter blocks fewer ASes than
        their export filter (about half in the paper)."""
        if not self.comparisons:
            return 0.0
        permissive = sum(1 for c in self.comparisons if c.import_more_permissive)
        return permissive / len(self.comparisons)

    def summary(self) -> Dict[str, object]:
        """Compact dictionary for reports and benchmarks."""
        return {
            "ixp": self.ixp_name,
            "members_checked": self.members_checked,
            "violations": self.num_violations,
            "assumption_holds": self.holds,
            "import_more_permissive": round(
                self.fraction_import_more_permissive, 3),
        }


class ReciprocityValidator:
    """Compare IRR import and export filters of route-server members."""

    def __init__(self, irr: IRRDatabase) -> None:
        self.irr = irr

    def compare_member(self, asn: int) -> Optional[MemberFilterComparison]:
        """Filter comparison for one member, or None without IRR data."""
        policy = self.irr.aut_num(asn)
        if policy is None:
            return None
        return MemberFilterComparison(
            asn=asn,
            blocked_export=set(policy.blocked_export),
            blocked_import=set(policy.blocked_import),
        )

    def validate(self, ixp_name: str, members: Iterable[int]) -> ReciprocityReport:
        """Validate the assumption over every member with IRR filters."""
        report = ReciprocityReport(ixp_name=ixp_name)
        for asn in sorted(set(members)):
            comparison = self.compare_member(asn)
            if comparison is None:
                continue
            report.comparisons.append(comparison)
        return report
