"""Querying-cost model and optimisation (section 4.3).

The cost of the active measurement is the number of looking-glass queries:

    c = 1 + |ARS| + sum_a |P'_a|                      (equation 1)

where P'_a is the set of prefixes of member *a* queried for communities.
Two optimisations reduce the last term: (i) sample 10% of each member's
prefixes (capped at 100) because community values are consistent across
prefixes, and (ii) prioritise prefixes announced by many members so one
``show ip bgp <prefix>`` query covers several members at once.  Members
whose communities were already obtained passively are skipped entirely:

    c = 1 + |ARS - ARS_passive| + sum_a |P'_a - P_passive_a|   (equation 2)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bgp.prefix import Prefix


@dataclass
class QueryPlan:
    """A concrete plan of ``show ip bgp <prefix>`` queries.

    ``prefix_queries`` is the ordered list of prefixes to query;
    ``covered`` maps each member to the number of its prefixes covered by
    the plan, which the planner drives up to the member's sampling target.
    """

    ixp_name: str
    prefix_queries: List[Prefix] = field(default_factory=list)
    covered: Dict[int, int] = field(default_factory=dict)
    targets: Dict[int, int] = field(default_factory=dict)
    skipped_members: Set[int] = field(default_factory=set)

    @property
    def num_prefix_queries(self) -> int:
        """Number of prefix-information queries in the plan."""
        return len(self.prefix_queries)

    def total_cost(self, num_members_queried: int) -> int:
        """Equation 1/2 cost for this plan: the summary query, one
        neighbor-routes query per (non-skipped) member, plus the prefix
        queries."""
        return 1 + num_members_queried + self.num_prefix_queries


@dataclass
class CostBreakdown:
    """Cost of the same measurement under different strategies."""

    ixp_name: str
    num_members: int
    exhaustive: int          #: query every prefix of every member
    sampled: int             #: 10% / cap-100 sampling, no sharing (eq. 1)
    optimised: int           #: sampling + multi-member prefix sharing
    with_passive: int        #: optimised + members covered passively (eq. 2)

    @property
    def exhaustive_over_optimised(self) -> float:
        """How many times more queries the naive strategy needs."""
        if self.optimised == 0:
            return float("inf")
        return self.exhaustive / self.optimised


class QueryCostModel:
    """Plan and account for active looking-glass queries at one IXP."""

    def __init__(
        self,
        ixp_name: str,
        announced_prefixes: Mapping[int, Sequence[Prefix]],
        sample_fraction: float = 0.10,
        max_prefixes_per_member: int = 100,
    ) -> None:
        if not 0 < sample_fraction <= 1:
            raise ValueError("sample_fraction must be in (0, 1]")
        if max_prefixes_per_member < 1:
            raise ValueError("max_prefixes_per_member must be >= 1")
        self.ixp_name = ixp_name
        self.announced_prefixes: Dict[int, List[Prefix]] = {
            asn: list(prefixes) for asn, prefixes in announced_prefixes.items()}
        self.sample_fraction = sample_fraction
        self.max_prefixes_per_member = max_prefixes_per_member

    # -- targets ---------------------------------------------------------------------

    def sampling_target(self, member_asn: int) -> int:
        """|P'_a|: how many of the member's prefixes must be covered."""
        prefixes = self.announced_prefixes.get(member_asn, [])
        if not prefixes:
            return 0
        sampled = max(1, math.ceil(len(prefixes) * self.sample_fraction))
        return min(sampled, self.max_prefixes_per_member, len(prefixes))

    def prefix_multiplicity(self) -> Dict[Prefix, int]:
        """m_p: number of members announcing each prefix (figure 5)."""
        multiplicity: Dict[Prefix, int] = {}
        for prefixes in self.announced_prefixes.values():
            for prefix in set(prefixes):
                multiplicity[prefix] = multiplicity.get(prefix, 0) + 1
        return multiplicity

    # -- planning ----------------------------------------------------------------------

    def build_plan(
        self,
        skip_members: Optional[Iterable[int]] = None,
        covered_prefixes: Optional[Mapping[int, Iterable[Prefix]]] = None,
    ) -> QueryPlan:
        """Build the optimised query plan.

        ``skip_members`` are members whose communities were already
        obtained passively (equation 2); ``covered_prefixes`` lists
        prefixes per member already covered by passive data, reducing the
        member's remaining target.
        """
        skip = set(skip_members or ())
        covered_by_passive = {asn: set(prefixes)
                              for asn, prefixes in (covered_prefixes or {}).items()}
        multiplicity = self.prefix_multiplicity()

        plan = QueryPlan(ixp_name=self.ixp_name, skipped_members=skip)
        remaining: Dict[int, int] = {}
        for asn in self.announced_prefixes:
            if asn in skip:
                continue
            target = self.sampling_target(asn)
            already = len(covered_by_passive.get(asn, set())
                          & set(self.announced_prefixes[asn]))
            plan.targets[asn] = target
            plan.covered[asn] = min(already, target)
            remaining[asn] = max(0, target - already)

        # Per-member candidate ordering: most-shared prefixes first.
        candidate_order: Dict[int, List[Prefix]] = {}
        for asn in remaining:
            prefixes = sorted(set(self.announced_prefixes[asn]),
                              key=lambda p: (-multiplicity[p], p))
            candidate_order[asn] = prefixes

        queried: Set[Prefix] = set()
        # Greedy: repeatedly pick the unqueried prefix with the highest
        # multiplicity among members still below target.
        needy = {asn for asn, need in remaining.items() if need > 0}
        while needy:
            best_prefix: Optional[Prefix] = None
            best_gain = -1
            for asn in sorted(needy):
                for prefix in candidate_order[asn]:
                    if prefix in queried:
                        continue
                    gain = multiplicity[prefix]
                    if gain > best_gain:
                        best_gain = gain
                        best_prefix = prefix
                    break
            if best_prefix is None:
                break
            queried.add(best_prefix)
            plan.prefix_queries.append(best_prefix)
            for asn in list(needy):
                if best_prefix in set(self.announced_prefixes[asn]) and remaining[asn] > 0:
                    remaining[asn] -= 1
                    plan.covered[asn] = plan.covered.get(asn, 0) + 1
                    if remaining[asn] <= 0:
                        needy.discard(asn)
        return plan

    # -- cost summaries --------------------------------------------------------------------

    def cost_breakdown(
        self,
        passive_members: Optional[Iterable[int]] = None,
        passive_prefixes: Optional[Mapping[int, Iterable[Prefix]]] = None,
    ) -> CostBreakdown:
        """Compute the cost of the four strategies discussed in section 4.3."""
        members = sorted(self.announced_prefixes)
        num_members = len(members)

        exhaustive = 1 + num_members + sum(
            len(set(self.announced_prefixes[asn])) for asn in members)
        sampled = 1 + num_members + sum(
            self.sampling_target(asn) for asn in members)

        optimised_plan = self.build_plan()
        optimised = optimised_plan.total_cost(num_members)

        passive = set(passive_members or ())
        passive_plan = self.build_plan(skip_members=passive,
                                       covered_prefixes=passive_prefixes)
        with_passive = passive_plan.total_cost(num_members - len(passive & set(members)))

        return CostBreakdown(
            ixp_name=self.ixp_name,
            num_members=num_members,
            exhaustive=exhaustive,
            sampled=sampled,
            optimised=optimised,
            with_passive=with_passive,
        )

    @staticmethod
    def measurement_duration(total_queries: int,
                             seconds_per_query: float = 10.0,
                             parallel_ixps: int = 1) -> float:
        """Wall-clock seconds for *total_queries* under a rate limit,
        assuming different IXPs are measured in parallel (section 4.3
        reports < 17 hours for all IXPs at 1 query / 10 s)."""
        if parallel_ixps < 1:
            raise ValueError("parallel_ixps must be >= 1")
        return total_queries * seconds_per_query / parallel_ixps
