"""Non-BGP measurement substrates: traceroute-derived links, geolocation.

The Ark / DIMES traceroute datasets the paper compares against (figure 6)
do not resolve links established across IXP route servers — they report
adjacencies between members and the route server instead — which is the
structural reason the MLP links have almost no overlap with
traceroute-derived topologies.  The geolocation substrate stands in for
the MaxMind database used to pick geographically distant validation
prefixes (section 5.1).
"""

from repro.measurement.traceroute import TracerouteCampaign, TracerouteConfig
from repro.measurement.geolocation import GeolocationDB

__all__ = [
    "TracerouteCampaign",
    "TracerouteConfig",
    "GeolocationDB",
]
