"""Prefix geolocation (MaxMind GeoLite stand-in).

Section 5.1 selects up to six validation prefixes per link "as
geographically distant from each other as possible"; this substrate
provides the region lookup and the greedy spread-maximising selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.prefix import Prefix

#: Rough coordinates per region used for distance computations.
_REGION_COORDINATES: Dict[str, Tuple[float, float]] = {
    "eu-west": (51.5, -0.1),
    "eu-central": (50.1, 8.7),
    "eu-east": (55.7, 37.6),
    "eu-north": (59.3, 18.1),
    "eu-south": (41.9, 12.5),
    "na": (40.7, -74.0),
    "asia": (1.35, 103.8),
    "global": (48.8, 2.3),
}


class GeolocationDB:
    """Maps prefixes to regions and supports distance-aware selection."""

    def __init__(self) -> None:
        self._regions: Dict[Prefix, str] = {}

    def register(self, prefix: Prefix, region: str) -> None:
        """Record that *prefix* is announced from *region*."""
        self._regions[prefix] = region

    def register_many(self, prefixes: Iterable[Prefix], region: str) -> None:
        """Record a batch of prefixes for one region."""
        for prefix in prefixes:
            self.register(prefix, region)

    def region_of(self, prefix: Prefix) -> Optional[str]:
        """Region of *prefix* (exact match, then covering prefix), or None."""
        if prefix in self._regions:
            return self._regions[prefix]
        for candidate, region in self._regions.items():
            if candidate.contains(prefix):
                return region
        return None

    def coordinates_of(self, prefix: Prefix) -> Optional[Tuple[float, float]]:
        """Approximate coordinates of *prefix*'s region."""
        region = self.region_of(prefix)
        if region is None:
            return None
        return _REGION_COORDINATES.get(region)

    def __len__(self) -> int:
        return len(self._regions)

    # -- selection --------------------------------------------------------------------

    def select_distant(self, prefixes: Sequence[Prefix], count: int = 6) -> List[Prefix]:
        """Greedy selection of up to *count* prefixes maximising pairwise
        region spread (the validation-prefix selection of section 5.1)."""
        unique = list(dict.fromkeys(prefixes))
        if len(unique) <= count:
            return unique
        chosen: List[Prefix] = [unique[0]]
        while len(chosen) < count:
            best_prefix = None
            best_score = -1.0
            for candidate in unique:
                if candidate in chosen:
                    continue
                score = min(self._distance(candidate, existing)
                            for existing in chosen)
                if score > best_score:
                    best_score = score
                    best_prefix = candidate
            if best_prefix is None:
                break
            chosen.append(best_prefix)
        return chosen

    def _distance(self, a: Prefix, b: Prefix) -> float:
        coord_a = self.coordinates_of(a)
        coord_b = self.coordinates_of(b)
        if coord_a is None or coord_b is None:
            return 0.0
        return ((coord_a[0] - coord_b[0]) ** 2 + (coord_a[1] - coord_b[1]) ** 2) ** 0.5
