"""Traceroute-derived AS links (Ark / DIMES stand-in).

A traceroute campaign launches probes from a set of monitor ASes towards
every origin and converts the observed forwarding path into AS links.
Faithfully to what the paper reports, links crossing an IXP route server
are *not* resolved as member-to-member adjacencies; depending on how the
IXP fabric responds they appear either as a member<->RS-ASN adjacency or
as a (useless) member<->member hop hidden behind the exchange's layer-2
fabric and therefore dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.propagation import PropagationResult
from repro.topology.as_graph import ASGraph
from repro.topology.relationships import LinkType


@dataclass
class TracerouteConfig:
    """Parameters of a synthetic traceroute campaign."""

    #: ASes hosting traceroute monitors.
    monitor_asns: Sequence[int] = field(default_factory=list)
    #: When True, hops across a route-server-mediated peering appear as
    #: member<->RS adjacencies (the Ark/DIMES artefact); when False the
    #: hop is reported as a direct member<->member link.
    report_rs_hop_as_rs_link: bool = True


class TracerouteCampaign:
    """Synthesise Ark/DIMES-style AS links from forwarding paths."""

    def __init__(self, graph: ASGraph, config: TracerouteConfig,
                 rs_asn_by_ixp: Optional[Dict[str, int]] = None) -> None:
        self.graph = graph
        self.config = config
        self.rs_asn_by_ixp = dict(rs_asn_by_ixp or {})

    def derive_links(self, propagation: PropagationResult) -> Set[Tuple[int, int]]:
        """AS links derived from the monitors' forwarding paths.

        The forwarding path from a monitor to an origin follows the
        monitor's best BGP route (control plane == data plane in this
        model).  Each adjacent AS pair becomes a link, except pairs whose
        underlying adjacency is a route-server peering, which are replaced
        per the configuration.
        """
        links: Set[Tuple[int, int]] = set()
        for monitor in self.config.monitor_asns:
            for origin, route in propagation.iter_routes_at(monitor):
                path = route.path
                for left, right in zip(path, path[1:]):
                    if left == right:
                        continue
                    links.update(self._resolve_hop(left, right))
        return links

    def _resolve_hop(self, left: int, right: int) -> List[Tuple[int, int]]:
        link = self.graph.get_link(left, right)
        if link is None or link.link_type is not LinkType.RS_P2P:
            return [(min(left, right), max(left, right))]
        if not self.config.report_rs_hop_as_rs_link:
            return [(min(left, right), max(left, right))]
        rs_asn = self.rs_asn_by_ixp.get(link.ixp or "")
        if rs_asn is None:
            # Unknown exchange: the hop disappears behind the layer-2 fabric.
            return []
        return [
            (min(left, rs_asn), max(left, rs_asn)),
            (min(right, rs_asn), max(right, rs_asn)),
        ]

    def member_rs_adjacencies(self, links: Iterable[Tuple[int, int]]) -> Set[Tuple[int, int]]:
        """The subset of *links* that touch a route-server ASN."""
        rs_asns = set(self.rs_asn_by_ixp.values())
        return {link for link in links if link[0] in rs_asns or link[1] in rs_asns}
