"""Passive BGP collection substrate (Route Views / RIPE RIS style).

Route collectors receive BGP feeds from voluntary vantage points.  Most
vantage points configure the collector session like a peering session and
therefore export only their own and their customers' routes — the root of
the topology-incompleteness problem the paper quantifies.  The archives
produced here (daily RIB dumps plus update streams) are what the passive
inference of section 4.2 consumes.
"""

from repro.collectors.vantage_point import VantagePoint, FeedType
from repro.collectors.route_collector import RouteCollector
from repro.collectors.archive import CollectorArchive, MeasurementWindow

__all__ = [
    "VantagePoint",
    "FeedType",
    "RouteCollector",
    "CollectorArchive",
    "MeasurementWindow",
]
