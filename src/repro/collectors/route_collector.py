"""Route collectors: the Route Views / RIPE RIS equivalents."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.messages import RibEntry, UpdateMessage
from repro.bgp.prefix import Prefix
from repro.bgp.propagation import PropagationResult
from repro.collectors.vantage_point import VantagePoint


@dataclass
class RouteCollector:
    """A passive BGP collector with a set of vantage-point feeds."""

    name: str
    vantage_points: List[VantagePoint] = field(default_factory=list)

    def add_vantage_point(self, vantage_point: VantagePoint) -> VantagePoint:
        """Attach a vantage point feed to this collector."""
        vantage_point.collector = self.name
        self.vantage_points.append(vantage_point)
        return vantage_point

    def peer_asns(self) -> List[int]:
        """ASNs of all vantage points feeding the collector."""
        return sorted(vp.asn for vp in self.vantage_points)

    def table_dump(self, propagation: PropagationResult,
                   timestamp: float = 0.0) -> List[RibEntry]:
        """Produce a RIB dump: the concatenation of every vantage point's
        exported table at *timestamp*."""
        return list(self.iter_table_dump(propagation, timestamp))

    def iter_table_dump(self, propagation: PropagationResult,
                        timestamp: float = 0.0) -> Iterable[RibEntry]:
        """Stream the RIB dump vantage point by vantage point, without
        materialising the concatenated table."""
        for vantage_point in self.vantage_points:
            yield from vantage_point.exported_routes(propagation, timestamp)

    def export_rows(self, propagation: PropagationResult, table):
        """Columnar :meth:`table_dump`: every vantage point's feed as
        parallel ``(peers, prefix_ids, path_ids, bag_ids)`` columns
        interned into *table*, in dump order.  None when any vantage
        point cannot export columns (callers fall back to objects)."""
        peers: List[int] = []
        prefix_ids: List[int] = []
        path_ids: List[int] = []
        bag_ids: List[int] = []
        for vantage_point in self.vantage_points:
            rows = vantage_point.export_rows(propagation, table)
            if rows is None:
                return None
            peers.extend(rows[0])
            prefix_ids.extend(rows[1])
            path_ids.extend(rows[2])
            bag_ids.extend(rows[3])
        return peers, prefix_ids, path_ids, bag_ids

    def visible_as_links(self, propagation: PropagationResult) -> Set[Tuple[int, int]]:
        """AS links visible in the collector's dump (plus the VP-collector
        adjacency is excluded, as in real topology extractions)."""
        links: Set[Tuple[int, int]] = set()
        for entry in self.iter_table_dump(propagation):
            links.update(entry.as_path.links())
        return links
