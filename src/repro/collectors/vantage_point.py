"""Vantage points: the ASes that feed route collectors.

The paper notes that two-thirds of contributing ASes configure their
collector session like a peering session, exporting only customer-learned
and own routes; the remaining third provide full feeds.  The distinction
matters enormously for which RS communities become visible passively.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.bgp.messages import RibEntry
from repro.bgp.attributes import ASPath
from repro.bgp.propagation import CLASS_CUSTOMER, PropagatedRoute, PropagationResult


class FeedType(enum.Enum):
    """How the vantage point treats its collector session."""

    FULL = "full"              #: exports its entire routing table
    CUSTOMER_ONLY = "customer" #: exports only own/customer routes (p2p-like)


@dataclass
class VantagePoint:
    """One AS feeding a route collector."""

    asn: int
    feed_type: FeedType = FeedType.CUSTOMER_ONLY
    collector: str = "route-views"

    def exported_routes(self, propagation: PropagationResult,
                        timestamp: float = 0.0) -> List[RibEntry]:
        """The RIB entries this vantage point exports to its collector,
        derived from the routes it holds in the propagation result.

        Columnar results are read straight from the route-block columns
        (no ``PropagatedRoute`` objects); one ``ASPath`` is shared by
        every prefix of an origin, which also lets downstream passive
        extraction memoise on path identity.
        """
        entries: List[RibEntry] = []
        columns = getattr(propagation, "iter_best_columns_at", None)
        triples = columns(self.asn) if columns is not None else None
        if triples is None:
            for origin, route in propagation.iter_routes_at(self.asn):
                if not self._exports(route):
                    continue
                spec = propagation.origin_spec(origin)
                for prefix in spec.prefixes:
                    entries.append(RibEntry(
                        peer_asn=self.asn,
                        prefix=prefix,
                        as_path=ASPath(route.path),
                        communities=route.communities,
                        collector=self.collector,
                        timestamp=timestamp,
                    ))
            return entries
        full = self.feed_type is FeedType.FULL
        for origin, block, row in triples:
            if not full and block.provenance_at(row) > CLASS_CUSTOMER:
                continue
            spec = propagation.origin_spec(origin)
            if not spec.prefixes:
                continue
            as_path = ASPath(block.path(row))
            communities = block.communities_at(row)
            for prefix in spec.prefixes:
                entries.append(RibEntry(
                    peer_asn=self.asn,
                    prefix=prefix,
                    as_path=as_path,
                    communities=communities,
                    collector=self.collector,
                    timestamp=timestamp,
                ))
        return entries

    def export_rows(self, propagation: PropagationResult, table):
        """Columnar :meth:`exported_routes`: intern this feed into a
        :class:`~repro.collectors.archive.RibEntryTable` and return the
        parallel ``(peers, prefix_ids, path_ids, bag_ids)`` row columns,
        in exactly the order ``exported_routes`` emits entries.

        Returns None when the propagation result is not block-backed —
        the archive then falls back to the object collect.
        """
        columns = getattr(propagation, "iter_best_columns_at", None)
        triples = columns(self.asn) if columns is not None else None
        if triples is None:
            return None
        full = self.feed_type is FeedType.FULL
        asn = self.asn
        peers: List[int] = []
        prefix_ids: List[int] = []
        path_ids: List[int] = []
        bag_ids: List[int] = []
        for origin, block, row in triples:
            if not full and block.provenance_at(row) > CLASS_CUSTOMER:
                continue
            spec = propagation.origin_spec(origin)
            prefixes = spec.prefixes
            if not prefixes:
                continue
            path_id = table.intern_path_tuple(block.path(row))
            bag_id = table.intern_bag(block.communities_at(row))
            for prefix in prefixes:
                prefix_ids.append(table.intern_prefix(prefix))
            count = len(prefixes)
            peers.extend([asn] * count)
            path_ids.extend([path_id] * count)
            bag_ids.extend([bag_id] * count)
        return peers, prefix_ids, path_ids, bag_ids

    def _exports(self, route: PropagatedRoute) -> bool:
        if self.feed_type is FeedType.FULL:
            return True
        return route.provenance <= CLASS_CUSTOMER
