"""Collector archives over a measurement window.

The paper accumulates daily table dumps and update messages for
1-7 May 2013 and filters out transient AS paths (paths observed so
briefly that they probably reflect misconfigured community values or
leaks).  :class:`CollectorArchive` reproduces that pipeline: it stores
dumps per day, synthesises update noise, and can return the stable
entries that survive the transient filter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.messages import RibEntry, UpdateMessage, WithdrawMessage
from repro.bgp.prefix import Prefix
from repro.bgp.propagation import PropagationResult
from repro.collectors.route_collector import RouteCollector


@dataclass(frozen=True)
class MeasurementWindow:
    """A measurement window of consecutive days (1-7 May 2013 style)."""

    start_day: int = 1
    num_days: int = 7
    label: str = "2013-05"

    def days(self) -> List[int]:
        """The day indices covered by the window."""
        return list(range(self.start_day, self.start_day + self.num_days))


class CollectorArchive:
    """Archived dumps and updates of one or more collectors."""

    def __init__(self, collectors: Iterable[RouteCollector],
                 window: Optional[MeasurementWindow] = None,
                 seed: int = 7) -> None:
        self.collectors = list(collectors)
        self.window = window or MeasurementWindow()
        self._rng = random.Random(seed)
        #: day -> list of RIB entries
        self._dumps: Dict[int, List[RibEntry]] = {}
        self._updates: List[UpdateMessage] = []
        #: min_days -> stable / clean-stable entry lists (cleared on
        #: every archive mutation).
        self._stable_cache: Dict[int, List[RibEntry]] = {}
        self._clean_cache: Dict[int, List[RibEntry]] = {}

    # -- population ------------------------------------------------------------------

    def collect(self, propagation: PropagationResult,
                transient_fraction: float = 0.0) -> None:
        """Record a table dump for every day of the window.

        ``transient_fraction`` injects short-lived entries (present on a
        single day only) to exercise the transient-path filter.
        """
        self._invalidate()
        base_entries: List[RibEntry] = []
        for collector in self.collectors:
            base_entries.extend(collector.table_dump(propagation))
        for day in self.window.days():
            day_entries = [RibEntry(
                peer_asn=e.peer_asn, prefix=e.prefix, as_path=e.as_path,
                communities=e.communities, collector=e.collector,
                timestamp=float(day)) for e in base_entries]
            self._dumps[day] = day_entries
        if transient_fraction > 0 and base_entries:
            self._inject_transients(base_entries, transient_fraction)
        self._synthesise_updates(base_entries)

    def add_entry(self, day: int, entry: RibEntry) -> None:
        """Add a single entry to a specific day's dump."""
        self._invalidate()
        self._dumps.setdefault(day, []).append(entry)

    def _invalidate(self) -> None:
        """Drop the stable-entry memos after an archive mutation."""
        self._stable_cache.clear()
        self._clean_cache.clear()

    def _inject_transients(self, base_entries: Sequence[RibEntry],
                           fraction: float) -> None:
        count = max(1, int(len(base_entries) * fraction))
        chosen = self._rng.sample(list(base_entries), min(count, len(base_entries)))
        day = self._rng.choice(self.window.days())
        for entry in chosen:
            # A transient: same prefix/VP but a slightly different, short-lived path.
            mangled_path = ASPath(entry.as_path.asns[:1] + entry.as_path.asns)
            self._dumps[day].append(RibEntry(
                peer_asn=entry.peer_asn, prefix=entry.prefix,
                as_path=mangled_path, communities=entry.communities,
                collector=entry.collector, timestamp=float(day)))

    def _synthesise_updates(self, base_entries: Sequence[RibEntry]) -> None:
        if not base_entries:
            return
        sample_size = min(len(base_entries), max(1, len(base_entries) // 20))
        for entry in self._rng.sample(list(base_entries), sample_size):
            day = self._rng.choice(self.window.days())
            self._updates.append(UpdateMessage(
                timestamp=day + self._rng.random(),
                peer_asn=entry.peer_asn,
                prefix=entry.prefix,
                as_path=entry.as_path,
                communities=entry.communities,
                collector=entry.collector,
            ))

    # -- read API ---------------------------------------------------------------------

    def dump_for_day(self, day: int) -> List[RibEntry]:
        """The RIB dump archived for *day*."""
        return list(self._dumps.get(day, []))

    def all_entries(self) -> List[RibEntry]:
        """Every archived RIB entry across the window."""
        result: List[RibEntry] = []
        for day in sorted(self._dumps):
            result.extend(self._dumps[day])
        return result

    def updates(self) -> List[UpdateMessage]:
        """The archived update messages."""
        return list(self._updates)

    def stable_entries(self, min_days: int = 2) -> List[RibEntry]:
        """Entries whose (vantage point, prefix, path) persisted for at
        least *min_days* days — the transient-path filter of section 5.

        The result is memoised per archive state (and per *min_days*):
        every inference run re-reads the same window, so the filter
        walk runs once, not once per run.  Treat the returned list as
        read-only; it is invalidated by :meth:`collect`/:meth:`add_entry`.
        """
        cached = self._stable_cache.get(min_days)
        if cached is not None:
            return cached
        persistence: Dict[Tuple[int, Prefix, Tuple[int, ...]], Set[int]] = {}
        samples: Dict[Tuple[int, Prefix, Tuple[int, ...]], RibEntry] = {}
        for day, entries in self._dumps.items():
            for entry in entries:
                key = (entry.peer_asn, entry.prefix, entry.as_path.asns)
                persistence.setdefault(key, set()).add(day)
                samples.setdefault(key, entry)
        effective_min = min(min_days, len(self._dumps)) if self._dumps else min_days
        result = [samples[key] for key, days in persistence.items()
                  if len(days) >= effective_min]
        self._stable_cache[min_days] = result
        return result

    def clean_stable_entries(self, min_days: int = 2) -> List[RibEntry]:
        """Stable entries that also pass the reserved-ASN / cycle filters
        (memoised alongside :meth:`stable_entries`; the bitset inference
        backend additionally keys its context-level observation planes
        on this list's identity, which the memo keeps stable)."""
        cached = self._clean_cache.get(min_days)
        if cached is not None:
            return cached
        result = [entry for entry in self.stable_entries(min_days)
                  if entry.is_clean()]
        self._clean_cache[min_days] = result
        return result

    def visible_as_links(self) -> Set[Tuple[int, int]]:
        """AS links visible anywhere in the archived dumps."""
        links: Set[Tuple[int, int]] = set()
        for entry in self.all_entries():
            links.update(entry.as_path.links())
        return links
