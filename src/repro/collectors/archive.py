"""Collector archives over a measurement window.

The paper accumulates daily table dumps and update messages for
1-7 May 2013 and filters out transient AS paths (paths observed so
briefly that they probably reflect misconfigured community values or
leaks).  :class:`CollectorArchive` reproduces that pipeline: it stores
dumps per day, synthesises update noise, and can return the stable
entries that survive the transient filter.

Like the propagation plane, the archive is columnar where it can be:
``collect`` on a block-backed :class:`PropagationResult` interns the
window into a :class:`RibEntryTable` (parallel peer / prefix-id /
path-id / bag-id / collector-id / timestamp columns over value tables)
instead of building one :class:`RibEntry` per day per route, and the
transient filter runs as one grouped numpy pass over the key columns.
``RibEntry`` survives as a lazy row view — materialised on first
object-level access, cached, value-identical to the eager path — and
the object implementation is retained in full as the no-numpy fallback
and reference oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

try:  # optional: the columnar archive needs numpy, the object path doesn't
    import numpy as np
except ImportError:  # pragma: no cover - numpy is present in CI
    np = None  # type: ignore[assignment]

from repro.bgp.attributes import ASPath
from repro.bgp.messages import RibEntry, UpdateMessage, WithdrawMessage
from repro.bgp.prefix import Prefix
from repro.bgp.propagation import PropagationResult
from repro.collectors.route_collector import RouteCollector


@dataclass(frozen=True)
class MeasurementWindow:
    """A measurement window of consecutive days (1-7 May 2013 style)."""

    start_day: int = 1
    num_days: int = 7
    label: str = "2013-05"

    def days(self) -> List[int]:
        """The day indices covered by the window."""
        return list(range(self.start_day, self.start_day + self.num_days))


class RibEntryTable:
    """Append-only column store of RIB entries with lazy row views.

    Row schema (parallel python-list columns, converted to numpy only
    for the grouped scans):

    ``peer``       vantage-point ASN
    ``prefix_id``  index into :attr:`prefixes` (value-interned)
    ``path_id``    index into :attr:`paths` (interned by ASN tuple; one
                   shared :class:`ASPath` object per id, which is what
                   lets downstream consumers memoise on path identity)
    ``bag_id``     index into :attr:`bags` (value-interned frozensets)
    ``coll_id``    index into :attr:`collectors`
    ``timestamp``  float timestamp of the row

    ``entry(row)`` materialises (and caches) one :class:`RibEntry` view;
    bulk consumers read the columns directly.  Pickling ships columns
    and value tables only — the row-view cache stays process-local.
    """

    __slots__ = ("peer", "prefix_id", "path_id", "bag_id", "coll_id",
                 "timestamp", "prefixes", "paths", "bags", "collectors",
                 "_prefix_ids", "_path_ids", "_bag_ids", "_coll_ids",
                 "_entries", "_key_arrays")

    def __init__(self) -> None:
        self.peer: List[int] = []
        self.prefix_id: List[int] = []
        self.path_id: List[int] = []
        self.bag_id: List[int] = []
        self.coll_id: List[int] = []
        self.timestamp: List[float] = []
        self.prefixes: List[Prefix] = []
        self.paths: List[ASPath] = []
        self.bags: List[frozenset] = []
        self.collectors: List[Optional[str]] = []
        self._prefix_ids: Dict[Prefix, int] = {}
        self._path_ids: Dict[Tuple[int, ...], int] = {}
        self._bag_ids: Dict[frozenset, int] = {}
        self._coll_ids: Dict[Optional[str], int] = {}
        self._entries: Dict[int, RibEntry] = {}
        self._key_arrays = None

    def __len__(self) -> int:
        return len(self.peer)

    # -- interning ---------------------------------------------------------

    def intern_prefix(self, prefix: Prefix) -> int:
        pid = self._prefix_ids.get(prefix)
        if pid is None:
            pid = self._prefix_ids[prefix] = len(self.prefixes)
            self.prefixes.append(prefix)
        return pid

    def intern_path_tuple(self, asns: Tuple[int, ...]) -> int:
        pid = self._path_ids.get(asns)
        if pid is None:
            pid = self._path_ids[asns] = len(self.paths)
            self.paths.append(ASPath.from_tuple(asns))
        return pid

    def intern_path(self, path: ASPath) -> int:
        pid = self._path_ids.get(path.asns)
        if pid is None:
            pid = self._path_ids[path.asns] = len(self.paths)
            self.paths.append(path)
        return pid

    def intern_bag(self, communities: frozenset) -> int:
        bid = self._bag_ids.get(communities)
        if bid is None:
            bid = self._bag_ids[communities] = len(self.bags)
            self.bags.append(communities)
        return bid

    def intern_collector(self, name: Optional[str]) -> int:
        cid = self._coll_ids.get(name)
        if cid is None:
            cid = self._coll_ids[name] = len(self.collectors)
            self.collectors.append(name)
        return cid

    # -- appending ---------------------------------------------------------

    def append(self, peer: int, prefix_id: int, path_id: int, bag_id: int,
               coll_id: int, timestamp: float) -> int:
        """Append one row of already-interned ids; returns its position."""
        row = len(self.peer)
        self.peer.append(peer)
        self.prefix_id.append(prefix_id)
        self.path_id.append(path_id)
        self.bag_id.append(bag_id)
        self.coll_id.append(coll_id)
        self.timestamp.append(timestamp)
        return row

    def append_entry(self, entry: RibEntry) -> int:
        """Append a :class:`RibEntry`, interning its values; the entry
        object itself becomes the row's cached view."""
        row = self.append(entry.peer_asn,
                          self.intern_prefix(entry.prefix),
                          self.intern_path(entry.as_path),
                          self.intern_bag(entry.communities),
                          self.intern_collector(entry.collector),
                          entry.timestamp)
        self._entries[row] = entry
        return row

    def extend(self, peers: Sequence[int], prefix_ids: Sequence[int],
               path_ids: Sequence[int], bag_ids: Sequence[int],
               coll_ids: Sequence[int], timestamp: float) -> int:
        """Append a whole dump of already-interned rows at *timestamp*;
        returns the position of the first appended row."""
        start = len(self.peer)
        self.peer.extend(peers)
        self.prefix_id.extend(prefix_ids)
        self.path_id.extend(path_ids)
        self.bag_id.extend(bag_ids)
        self.coll_id.extend(coll_ids)
        self.timestamp.extend([timestamp] * len(peers))
        return start

    # -- reading -----------------------------------------------------------

    def entry(self, row: int) -> RibEntry:
        """The (cached) :class:`RibEntry` view of *row*."""
        entry = self._entries.get(row)
        if entry is None:
            entry = self._entries[row] = RibEntry(
                peer_asn=self.peer[row],
                prefix=self.prefixes[self.prefix_id[row]],
                as_path=self.paths[self.path_id[row]],
                communities=self.bags[self.bag_id[row]],
                collector=self.collectors[self.coll_id[row]],
                timestamp=self.timestamp[row],
            )
        return entry

    def key_arrays(self):
        """``(peer, prefix_id, path_id)`` as numpy columns — the
        transient-filter grouping key — cached per row count."""
        count = len(self.peer)
        cached = self._key_arrays
        if cached is None or cached[0] != count:
            cached = self._key_arrays = (
                count,
                np.asarray(self.peer, dtype=np.int64),
                np.asarray(self.prefix_id, dtype=np.int64),
                np.asarray(self.path_id, dtype=np.int64))
        return cached[1], cached[2], cached[3]

    # -- pickling (view cache and array cache stay process-local) ----------

    def __getstate__(self):
        return (self.peer, self.prefix_id, self.path_id, self.bag_id,
                self.coll_id, self.timestamp, self.prefixes, self.paths,
                self.bags, self.collectors)

    def __setstate__(self, state) -> None:
        (self.peer, self.prefix_id, self.path_id, self.bag_id,
         self.coll_id, self.timestamp, self.prefixes, self.paths,
         self.bags, self.collectors) = state
        self._prefix_ids = {p: i for i, p in enumerate(self.prefixes)}
        self._path_ids = {p.asns: i for i, p in enumerate(self.paths)}
        self._bag_ids = {b: i for i, b in enumerate(self.bags)}
        self._coll_ids = {c: i for i, c in enumerate(self.collectors)}
        self._entries = {}
        self._key_arrays = None

    def __repr__(self) -> str:
        return (f"RibEntryTable({len(self.peer)} rows, "
                f"{len(self.prefixes)} prefixes, {len(self.paths)} paths, "
                f"{len(self.bags)} bags)")


class CollectorArchive:
    """Archived dumps and updates of one or more collectors.

    ``columnar=None`` (the default) auto-selects the column-store
    representation when numpy is importable and the propagation result
    is block-backed; ``columnar=False`` pins the object representation
    — the reference oracle the differential tests compare against.
    """

    def __init__(self, collectors: Iterable[RouteCollector],
                 window: Optional[MeasurementWindow] = None,
                 seed: int = 7,
                 columnar: Optional[bool] = None) -> None:
        self.collectors = list(collectors)
        self.window = window or MeasurementWindow()
        self._rng = random.Random(seed)
        self._columnar = (np is not None) if columnar is None \
            else (columnar and np is not None)
        #: day -> list of RIB entries (object mode)
        self._dumps: Dict[int, List[RibEntry]] = {}
        #: column store + day -> row positions (columnar mode); exactly
        #: one of (_dumps, _table) is ever populated.
        self._table: Optional[RibEntryTable] = None
        self._day_rows: Dict[int, List[int]] = {}
        self._updates: List[UpdateMessage] = []
        #: min_days -> stable / clean-stable entry lists (cleared on
        #: every archive mutation).
        self._stable_cache: Dict[int, List[RibEntry]] = {}
        self._clean_cache: Dict[int, List[RibEntry]] = {}

    # -- population ------------------------------------------------------------------

    def collect(self, propagation: PropagationResult,
                transient_fraction: float = 0.0) -> None:
        """Record a table dump for every day of the window.

        ``transient_fraction`` injects short-lived entries (present on a
        single day only) to exercise the transient-path filter.
        """
        self._invalidate()
        if self._columnar and self._table is None and not self._dumps \
                and self._collect_columnar(propagation, transient_fraction):
            return
        self._demote_to_objects()
        base_entries: List[RibEntry] = []
        for collector in self.collectors:
            base_entries.extend(collector.table_dump(propagation))
        for day in self.window.days():
            day_entries = [RibEntry(
                peer_asn=e.peer_asn, prefix=e.prefix, as_path=e.as_path,
                communities=e.communities, collector=e.collector,
                timestamp=float(day)) for e in base_entries]
            self._dumps[day] = day_entries
        if transient_fraction > 0 and base_entries:
            self._inject_transients(base_entries, transient_fraction)
        self._synthesise_updates(base_entries)

    def _collect_columnar(self, propagation: PropagationResult,
                          transient_fraction: float) -> bool:
        """Columnar ``collect``: intern every vantage point's feed once,
        then reference the shared base columns from each day's dump.

        Commits nothing (and returns False) when any collector cannot
        export columns — the object path then runs instead.  The RNG is
        first consumed after the commit point, so a fallback collect
        draws the exact same sample sequence.
        """
        table = RibEntryTable()
        base: Tuple[List[int], List[int], List[int], List[int], List[int]] = \
            ([], [], [], [], [])
        for collector in self.collectors:
            coll_id = table.intern_collector(collector.name)
            rows = collector.export_rows(propagation, table)
            if rows is None:
                return False
            peers, prefix_ids, path_ids, bag_ids = rows
            base[0].extend(peers)
            base[1].extend(prefix_ids)
            base[2].extend(path_ids)
            base[3].extend(bag_ids)
            base[4].extend([coll_id] * len(peers))
        self._table = table
        self._day_rows = {}
        count = len(base[0])
        for day in self.window.days():
            start = table.extend(base[0], base[1], base[2], base[3],
                                 base[4], float(day))
            self._day_rows[day] = list(range(start, start + count))
        if transient_fraction > 0 and count:
            self._inject_transients_columnar(base, transient_fraction)
        self._synthesise_updates_columnar(base)
        return True

    def add_entry(self, day: int, entry: RibEntry) -> None:
        """Add a single entry to a specific day's dump."""
        self._invalidate()
        if self._table is not None:
            row = self._table.append_entry(entry)
            self._day_rows.setdefault(day, []).append(row)
        else:
            self._dumps.setdefault(day, []).append(entry)

    def _invalidate(self) -> None:
        """Drop the stable-entry memos after an archive mutation."""
        self._stable_cache.clear()
        self._clean_cache.clear()

    def _demote_to_objects(self) -> None:
        """Materialise the column store into per-day entry lists.

        Escape hatch for call patterns the columnar mode does not model
        (a second ``collect`` on a populated archive); day order and
        per-day row order are preserved exactly.
        """
        if self._table is None:
            return
        table, self._table = self._table, None
        day_rows, self._day_rows = self._day_rows, {}
        for day, rows in day_rows.items():
            self._dumps[day] = [table.entry(row) for row in rows]

    def _inject_transients(self, base_entries: Sequence[RibEntry],
                           fraction: float) -> None:
        count = max(1, int(len(base_entries) * fraction))
        chosen = self._rng.sample(list(base_entries), min(count, len(base_entries)))
        day = self._rng.choice(self.window.days())
        for entry in chosen:
            # A transient: same prefix/VP but a slightly different, short-lived path.
            mangled_path = ASPath(entry.as_path.asns[:1] + entry.as_path.asns)
            self._dumps[day].append(RibEntry(
                peer_asn=entry.peer_asn, prefix=entry.prefix,
                as_path=mangled_path, communities=entry.communities,
                collector=entry.collector, timestamp=float(day)))

    def _inject_transients_columnar(self, base, fraction: float) -> None:
        """Columnar transient injection: identical RNG draws to the
        object path — ``sample``/``choice`` outcomes depend only on the
        population size, so sampling row indices picks the same rows
        the object path picks entries."""
        peers, prefix_ids, path_ids, bag_ids, coll_ids = base
        count = max(1, int(len(peers) * fraction))
        chosen = self._rng.sample(range(len(peers)), min(count, len(peers)))
        day = self._rng.choice(self.window.days())
        table = self._table
        day_rows = self._day_rows[day]
        timestamp = float(day)
        for i in chosen:
            asns = table.paths[path_ids[i]].asns
            mangled = table.intern_path_tuple(asns[:1] + asns)
            day_rows.append(table.append(
                peers[i], prefix_ids[i], mangled, bag_ids[i],
                coll_ids[i], timestamp))

    def _synthesise_updates(self, base_entries: Sequence[RibEntry]) -> None:
        if not base_entries:
            return
        sample_size = min(len(base_entries), max(1, len(base_entries) // 20))
        for entry in self._rng.sample(list(base_entries), sample_size):
            day = self._rng.choice(self.window.days())
            self._updates.append(UpdateMessage(
                timestamp=day + self._rng.random(),
                peer_asn=entry.peer_asn,
                prefix=entry.prefix,
                as_path=entry.as_path,
                communities=entry.communities,
                collector=entry.collector,
            ))

    def _synthesise_updates_columnar(self, base) -> None:
        peers, prefix_ids, path_ids, bag_ids, coll_ids = base
        if not peers:
            return
        table = self._table
        days = self.window.days()
        sample_size = min(len(peers), max(1, len(peers) // 20))
        for i in self._rng.sample(range(len(peers)), sample_size):
            day = self._rng.choice(days)
            self._updates.append(UpdateMessage(
                timestamp=day + self._rng.random(),
                peer_asn=peers[i],
                prefix=table.prefixes[prefix_ids[i]],
                as_path=table.paths[path_ids[i]],
                communities=table.bags[bag_ids[i]],
                collector=table.collectors[coll_ids[i]],
            ))

    # -- read API ---------------------------------------------------------------------

    def dump_for_day(self, day: int) -> List[RibEntry]:
        """The RIB dump archived for *day*."""
        if self._table is not None:
            table = self._table
            return [table.entry(row) for row in self._day_rows.get(day, ())]
        return list(self._dumps.get(day, []))

    def all_entries(self) -> List[RibEntry]:
        """Every archived RIB entry across the window."""
        result: List[RibEntry] = []
        if self._table is not None:
            table = self._table
            for day in sorted(self._day_rows):
                result.extend(table.entry(row)
                              for row in self._day_rows[day])
            return result
        for day in sorted(self._dumps):
            result.extend(self._dumps[day])
        return result

    def updates(self) -> List[UpdateMessage]:
        """The archived update messages."""
        return list(self._updates)

    def stable_entries(self, min_days: int = 2) -> List[RibEntry]:
        """Entries whose (vantage point, prefix, path) persisted for at
        least *min_days* days — the transient-path filter of section 5.

        The result is memoised per archive state (and per *min_days*):
        every inference run re-reads the same window, so the filter
        walk runs once, not once per run.  Treat the returned list as
        read-only; it is invalidated by :meth:`collect`/:meth:`add_entry`.
        """
        cached = self._stable_cache.get(min_days)
        if cached is not None:
            return cached
        if self._table is not None:
            result = self._stable_columnar(min_days)
        else:
            persistence: Dict[Tuple[int, Prefix, Tuple[int, ...]], Set[int]] = {}
            samples: Dict[Tuple[int, Prefix, Tuple[int, ...]], RibEntry] = {}
            for day, entries in self._dumps.items():
                for entry in entries:
                    key = (entry.peer_asn, entry.prefix, entry.as_path.asns)
                    persistence.setdefault(key, set()).add(day)
                    samples.setdefault(key, entry)
            effective_min = min(min_days, len(self._dumps)) if self._dumps else min_days
            result = [samples[key] for key, days in persistence.items()
                      if len(days) >= effective_min]
        self._stable_cache[min_days] = result
        return result

    def _stable_columnar(self, min_days: int) -> List[RibEntry]:
        """The transient filter as one grouped pass over the key columns.

        The scan order (day insertion order, then per-day row order)
        matches the object walk over ``_dumps.items()``, groups are the
        same value keys — prefix and path ids are value-interned — and
        qualifying groups are emitted by first scan appearance, so the
        result list is element-for-element identical to the dict fold.
        """
        day_items = list(self._day_rows.items())
        effective_min = min(min_days, len(day_items)) if day_items else min_days
        total = sum(len(rows) for _day, rows in day_items)
        if not total:
            return []
        scan_pos = np.concatenate(
            [np.asarray(rows, dtype=np.int64) for _day, rows in day_items
             if rows])
        scan_day = np.concatenate(
            [np.full(len(rows), day, dtype=np.int64)
             for day, rows in day_items if rows])
        peer, prefix_id, path_id = self._table.key_arrays()
        peer = peer[scan_pos]
        prefix_id = prefix_id[scan_pos]
        path_id = path_id[scan_pos]
        order = np.lexsort((scan_day, path_id, prefix_id, peer))
        speer = peer[order]
        sprefix = prefix_id[order]
        spath = path_id[order]
        sday = scan_day[order]
        new_group = np.empty(len(order), dtype=bool)
        new_group[0] = True
        new_group[1:] = ((speer[1:] != speer[:-1])
                         | (sprefix[1:] != sprefix[:-1])
                         | (spath[1:] != spath[:-1]))
        starts = np.nonzero(new_group)[0]
        day_change = new_group.copy()
        day_change[1:] |= sday[1:] != sday[:-1]
        distinct_days = np.add.reduceat(
            day_change.astype(np.int64), starts)
        first_scan = np.minimum.reduceat(order, starts)
        selected = np.sort(first_scan[distinct_days >= effective_min])
        entry = self._table.entry
        positions = scan_pos[selected].tolist()
        return [entry(position) for position in positions]

    def clean_stable_entries(self, min_days: int = 2) -> List[RibEntry]:
        """Stable entries that also pass the reserved-ASN / cycle filters
        (memoised alongside :meth:`stable_entries`; the bitset inference
        backend additionally keys its context-level observation planes
        on this list's identity, which the memo keeps stable).

        Cleanliness itself is memoised per shared ``ASPath`` object
        (one per interned path id in columnar mode), so the filter
        walks each distinct path once, not once per entry."""
        cached = self._clean_cache.get(min_days)
        if cached is not None:
            return cached
        result = [entry for entry in self.stable_entries(min_days)
                  if entry.is_clean()]
        self._clean_cache[min_days] = result
        return result

    def visible_as_links(self) -> Set[Tuple[int, int]]:
        """AS links visible anywhere in the archived dumps."""
        links: Set[Tuple[int, int]] = set()
        if self._table is not None:
            # Every interned path is referenced by at least one row, so
            # the union over the path table equals the per-entry union.
            for path in self._table.paths:
                links.update(path.links())
            return links
        for entry in self.all_entries():
            links.update(entry.as_path.links())
        return links
