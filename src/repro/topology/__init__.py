"""AS-level topology substrate.

Provides the AS graph container, business-relationship taxonomy and
valley-free checking, the synthetic Internet generator used as the
paper's measurement substrate, an AS-Rank-style relationship-inference
implementation and customer-cone computation.
"""

from repro.topology.relationships import (
    LinkType,
    link_type_from_relationship,
    is_valley_free,
    classify_path,
)
from repro.topology.as_graph import ASNode, ASLink, ASGraph, PeeringPolicy, GeographicScope
from repro.topology.customer_cone import customer_cone, customer_cones, customer_degree
from repro.topology.relationship_inference import (
    RelationshipInference,
    InferredRelationships,
)
from repro.topology.generator import InternetGenerator, GeneratorConfig, IXPSpec

__all__ = [
    "LinkType",
    "link_type_from_relationship",
    "is_valley_free",
    "classify_path",
    "ASNode",
    "ASLink",
    "ASGraph",
    "PeeringPolicy",
    "GeographicScope",
    "customer_cone",
    "customer_cones",
    "customer_degree",
    "RelationshipInference",
    "InferredRelationships",
    "InternetGenerator",
    "GeneratorConfig",
    "IXPSpec",
]
