"""Customer cones and customer degrees.

The paper uses the customer cone (the set of ASes reachable by following
provider->customer links downward, as in Luckie et al. [32]) for two
purposes: explaining the EXCLUDE communities set against in-cone ASes
(section 5.5) and computing the customer-degree distributions of figure 7.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.topology.as_graph import ASGraph


def customer_cone(graph: ASGraph, asn: int) -> Set[int]:
    """The customer cone of *asn*: itself plus every AS reachable by
    repeatedly following provider->customer links."""
    cone: Set[int] = {asn}
    frontier: List[int] = [asn]
    while frontier:
        current = frontier.pop()
        for customer in graph.customers(current):
            if customer not in cone:
                cone.add(customer)
                frontier.append(customer)
    return cone


def customer_cones(graph: ASGraph, asns: Iterable[int] = None) -> Dict[int, Set[int]]:
    """Customer cones for the requested ASes (all ASes by default).

    Cones are computed bottom-up so shared sub-cones are reused.
    """
    targets = list(asns) if asns is not None else graph.asns()
    cache: Dict[int, Set[int]] = {}

    def compute(asn: int, stack: Set[int]) -> Set[int]:
        if asn in cache:
            return cache[asn]
        if asn in stack:
            # Provider loop (shouldn't happen in a sane hierarchy); break it.
            return {asn}
        stack = stack | {asn}
        cone: Set[int] = {asn}
        for customer in graph.customers(asn):
            cone |= compute(customer, stack)
        cache[asn] = cone
        return cone

    return {asn: compute(asn, set()) for asn in targets}


def customer_degree(graph: ASGraph, asn: int) -> int:
    """Number of direct customers of *asn* (the paper's 'customer degree')."""
    return graph.transit_degree(asn)


def cone_size_ranking(graph: ASGraph) -> List[int]:
    """ASNs ordered by decreasing customer-cone size (AS-Rank style)."""
    cones = customer_cones(graph)
    return sorted(graph.asns(), key=lambda asn: (-len(cones[asn]), asn))


def is_in_customer_cone(graph: ASGraph, provider: int, candidate: int) -> bool:
    """True if *candidate* is inside *provider*'s customer cone."""
    return candidate in customer_cone(graph, provider)
