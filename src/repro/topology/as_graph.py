"""AS graph container.

The :class:`ASGraph` holds the ground-truth ecosystem: ASes with their
business attributes (type, region, peering policy, prefixes, IXP
memberships) and annotated links (c2p / p2p / rs-p2p / sibling).  It is
the single source of truth the substrates (route servers, collectors,
looking glasses, registries) and the evaluation analyses read from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.bgp.propagation import Adjacency
from repro.runtime.csr import CSRIndex
from repro.topology.relationships import LinkType


class PeeringPolicy(enum.Enum):
    """Self-reported peering policy (PeeringDB vocabulary, section 5.2)."""

    OPEN = "open"
    SELECTIVE = "selective"
    RESTRICTIVE = "restrictive"
    UNKNOWN = "unknown"


class GeographicScope(enum.Enum):
    """Self-reported geographic scope of operations (figure 13)."""

    GLOBAL = "global"
    EUROPE = "europe"
    REGIONAL = "regional"
    NOT_AVAILABLE = "n/a"


class ASType(enum.Enum):
    """Coarse role of an AS in the synthetic hierarchy."""

    TIER1 = "tier1"
    TRANSIT = "transit"
    REGIONAL = "regional"
    STUB = "stub"
    CONTENT = "content"


@dataclass
class ASNode:
    """A single autonomous system and its ground-truth attributes."""

    asn: int
    name: str = ""
    as_type: ASType = ASType.STUB
    region: str = "eu-west"
    scope: GeographicScope = GeographicScope.REGIONAL
    policy: PeeringPolicy = PeeringPolicy.UNKNOWN
    prefixes: List[Prefix] = field(default_factory=list)
    #: IXPs where the AS has a presence (by IXP name).
    ixps: Set[str] = field(default_factory=set)
    #: IXPs where the AS is connected to the route server.
    rs_memberships: Set[str] = field(default_factory=set)
    #: True if the AS registers its policy/scope in the PeeringDB substrate.
    in_peeringdb: bool = True

    def is_stub(self) -> bool:
        """True if the AS provides transit to nobody (set by the graph)."""
        return self.as_type in (ASType.STUB, ASType.CONTENT)


@dataclass(frozen=True)
class ASLink:
    """An undirected, annotated AS link.

    For ``LinkType.C2P`` the convention is that ``a`` is the customer and
    ``b`` the provider.  For peering and sibling links the order carries
    no meaning.
    """

    a: int
    b: int
    link_type: LinkType
    ixp: Optional[str] = None

    @property
    def endpoints(self) -> Tuple[int, int]:
        """Sorted endpoint pair identifying the adjacency."""
        return (min(self.a, self.b), max(self.a, self.b))

    def involves(self, asn: int) -> bool:
        """True if *asn* is one of the endpoints."""
        return asn == self.a or asn == self.b

    def other(self, asn: int) -> int:
        """The opposite endpoint from *asn*."""
        if asn == self.a:
            return self.b
        if asn == self.b:
            return self.a
        raise ValueError(f"AS{asn} is not on link {self}")

    def __str__(self) -> str:
        return f"{self.a}-{self.b} ({self.link_type.value})"


def link_adjacencies(link: ASLink,
                     rs_community_provider=None) -> List[Adjacency]:
    """The directed propagation adjacencies of one link.

    The single source of the link -> adjacency mapping: the full-graph
    export (:meth:`ASGraph.propagation_adjacencies`) and the incremental
    index splice (:meth:`~repro.runtime.csr.CSRIndex.spliced`) both go
    through here, so an event-driven single-link update attaches exactly
    the records a from-scratch rebuild would.
    """
    if link.link_type is LinkType.C2P:
        customer, provider = link.a, link.b
        return [
            Adjacency(source=customer, target=provider,
                      relationship=Relationship.CUSTOMER),
            Adjacency(source=provider, target=customer,
                      relationship=Relationship.PROVIDER),
        ]
    if link.link_type is LinkType.SIBLING:
        return [
            Adjacency(source=link.a, target=link.b,
                      relationship=Relationship.SIBLING),
            Adjacency(source=link.b, target=link.a,
                      relationship=Relationship.SIBLING),
        ]
    if link.link_type is LinkType.P2P:
        return [
            Adjacency(source=link.a, target=link.b,
                      relationship=Relationship.PEER, ixp=link.ixp),
            Adjacency(source=link.b, target=link.a,
                      relationship=Relationship.PEER, ixp=link.ixp),
        ]
    # RS_P2P: each direction carries the exporter's RS communities.
    communities_ab = frozenset()
    communities_ba = frozenset()
    if rs_community_provider is not None and link.ixp is not None:
        communities_ab = frozenset(rs_community_provider(link.a, link.ixp))
        communities_ba = frozenset(rs_community_provider(link.b, link.ixp))
    return [
        Adjacency(source=link.a, target=link.b,
                  relationship=Relationship.RS_PEER, ixp=link.ixp,
                  communities=communities_ab),
        Adjacency(source=link.b, target=link.a,
                  relationship=Relationship.RS_PEER, ixp=link.ixp,
                  communities=communities_ba),
    ]


class ASGraph:
    """Mutable AS-level topology with relationship annotations."""

    def __init__(self) -> None:
        self._nodes: Dict[int, ASNode] = {}
        self._links: Dict[Tuple[int, int], ASLink] = {}
        self._neighbours: Dict[int, Set[int]] = {}
        #: bumped on every mutation; invalidates the cached CSR index.
        self._version = 0
        self._index_cache: Optional[Tuple[int, CSRIndex]] = None

    @property
    def version(self) -> int:
        """Structural mutation counter (nodes/links added or removed).

        Field mutation on an :class:`ASNode` does not bump it; callers
        that need that granularity must track it themselves.
        """
        return self._version

    # -- nodes ---------------------------------------------------------------

    def add_as(self, node: ASNode) -> ASNode:
        """Add (or replace) an AS."""
        self._nodes[node.asn] = node
        self._neighbours.setdefault(node.asn, set())
        self._version += 1
        return node

    def get_as(self, asn: int) -> ASNode:
        """Return the :class:`ASNode` for *asn* (KeyError if unknown)."""
        return self._nodes[asn]

    def has_as(self, asn: int) -> bool:
        """True if *asn* is in the graph."""
        return asn in self._nodes

    def asns(self) -> List[int]:
        """All ASNs, sorted."""
        return sorted(self._nodes)

    def nodes(self) -> Iterator[ASNode]:
        """Iterate over all AS nodes."""
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    # -- links ---------------------------------------------------------------

    def add_link(self, link: ASLink) -> ASLink:
        """Add (or replace) a link.  Both endpoints must already exist."""
        if link.a not in self._nodes or link.b not in self._nodes:
            raise KeyError(f"both endpoints of {link} must be added first")
        if link.a == link.b:
            raise ValueError("self-loops are not allowed")
        self._links[link.endpoints] = link
        self._neighbours[link.a].add(link.b)
        self._neighbours[link.b].add(link.a)
        self._version += 1
        return link

    def add_c2p(self, customer: int, provider: int) -> ASLink:
        """Convenience: add a customer-to-provider link."""
        return self.add_link(ASLink(customer, provider, LinkType.C2P))

    def add_p2p(self, a: int, b: int, ixp: Optional[str] = None,
                multilateral: bool = False) -> ASLink:
        """Convenience: add a (possibly route-server) peering link."""
        link_type = LinkType.RS_P2P if multilateral else LinkType.P2P
        return self.add_link(ASLink(a, b, link_type, ixp=ixp))

    def get_link(self, a: int, b: int) -> Optional[ASLink]:
        """The link between *a* and *b*, or None."""
        return self._links.get((min(a, b), max(a, b)))

    def has_link(self, a: int, b: int) -> bool:
        """True if *a* and *b* are adjacent."""
        return (min(a, b), max(a, b)) in self._links

    def remove_link(self, a: int, b: int) -> bool:
        """Remove the link between *a* and *b* if present."""
        key = (min(a, b), max(a, b))
        link = self._links.pop(key, None)
        if link is None:
            return False
        self._neighbours[link.a].discard(link.b)
        self._neighbours[link.b].discard(link.a)
        self._version += 1
        return True

    def links(self, link_type: Optional[LinkType] = None) -> List[ASLink]:
        """All links, optionally filtered by type."""
        if link_type is None:
            return list(self._links.values())
        return [link for link in self._links.values() if link.link_type is link_type]

    def peering_links(self) -> List[ASLink]:
        """All p2p links (bilateral and route-server)."""
        return [link for link in self._links.values() if link.link_type.is_peering]

    def num_links(self) -> int:
        """Total number of links."""
        return len(self._links)

    # -- adjacency queries -----------------------------------------------------

    def neighbours(self, asn: int) -> Set[int]:
        """ASNs adjacent to *asn*."""
        return set(self._neighbours.get(asn, set()))

    def degree(self, asn: int) -> int:
        """Total degree of *asn*."""
        return len(self._neighbours.get(asn, set()))

    def customers(self, asn: int) -> List[int]:
        """Direct customers of *asn*."""
        result = []
        for other in self._neighbours.get(asn, set()):
            link = self.get_link(asn, other)
            if link and link.link_type is LinkType.C2P and link.b == asn:
                result.append(other)
        return sorted(result)

    def providers(self, asn: int) -> List[int]:
        """Direct providers of *asn*."""
        result = []
        for other in self._neighbours.get(asn, set()):
            link = self.get_link(asn, other)
            if link and link.link_type is LinkType.C2P and link.a == asn:
                result.append(other)
        return sorted(result)

    def peers(self, asn: int, include_rs: bool = True) -> List[int]:
        """Peers of *asn* (bilateral, plus route-server peers by default)."""
        result = []
        for other in self._neighbours.get(asn, set()):
            link = self.get_link(asn, other)
            if link is None:
                continue
            if link.link_type is LinkType.P2P or (
                include_rs and link.link_type is LinkType.RS_P2P
            ):
                result.append(other)
        return sorted(result)

    def siblings(self, asn: int) -> List[int]:
        """Sibling ASes of *asn*."""
        result = []
        for other in self._neighbours.get(asn, set()):
            link = self.get_link(asn, other)
            if link and link.link_type is LinkType.SIBLING:
                result.append(other)
        return sorted(result)

    def relationship(self, local: int, remote: int) -> Optional[Relationship]:
        """Relationship of *remote* as seen from *local*, or None."""
        link = self.get_link(local, remote)
        if link is None:
            return None
        if link.link_type is LinkType.C2P:
            return Relationship.CUSTOMER if link.a == remote else Relationship.PROVIDER
        if link.link_type is LinkType.P2P:
            return Relationship.PEER
        if link.link_type is LinkType.RS_P2P:
            return Relationship.RS_PEER
        return Relationship.SIBLING

    def relationship_map(self) -> Dict[Tuple[int, int], Relationship]:
        """Ordered-pair relationship map usable by the valley-free checker."""
        result: Dict[Tuple[int, int], Relationship] = {}
        for link in self._links.values():
            rel_ab = self.relationship(link.a, link.b)
            rel_ba = self.relationship(link.b, link.a)
            if rel_ab is not None:
                result[(link.a, link.b)] = rel_ab
            if rel_ba is not None:
                result[(link.b, link.a)] = rel_ba
        return result

    # -- derived structures ------------------------------------------------------

    def transit_degree(self, asn: int) -> int:
        """Number of customers of *asn* (the 'customer degree' of figure 7)."""
        return len(self.customers(asn))

    def stubs(self) -> List[int]:
        """ASes with no customers."""
        return [asn for asn in self._nodes if not self.customers(asn)]

    def members_of_ixp(self, ixp: str) -> List[int]:
        """ASes with a presence at *ixp*."""
        return sorted(asn for asn, node in self._nodes.items() if ixp in node.ixps)

    def rs_members_of_ixp(self, ixp: str) -> List[int]:
        """ASes connected to the route server of *ixp*."""
        return sorted(asn for asn, node in self._nodes.items()
                      if ixp in node.rs_memberships)

    def prefixes_of(self, asn: int) -> List[Prefix]:
        """Prefixes originated by *asn*."""
        return list(self._nodes[asn].prefixes)

    # -- propagation export -------------------------------------------------------

    def propagation_adjacencies(
        self,
        include_link_types: Optional[Iterable[LinkType]] = None,
        rs_community_provider=None,
    ) -> List[Adjacency]:
        """Convert the graph into directed adjacencies for the
        :class:`~repro.bgp.propagation.PropagationEngine`.

        ``rs_community_provider`` is an optional callable
        ``(exporter_asn, ixp_name) -> frozenset[Community]`` used to attach
        the exporter's route-server communities to rs-p2p edges; route
        servers do exactly this in the real system, which is what makes the
        communities visible in collector feeds.
        """
        allowed = set(include_link_types) if include_link_types is not None else None
        adjacencies: List[Adjacency] = []
        for link in self._links.values():
            if allowed is not None and link.link_type not in allowed:
                continue
            adjacencies.extend(link_adjacencies(link, rs_community_provider))
        return adjacencies

    def build_index(self, rs_community_provider=None) -> CSRIndex:
        """Build (or fetch the cached) CSR adjacency index of the graph.

        The index is the once-per-topology structure the frontier
        propagation engine runs on (see :mod:`repro.runtime`).  It is
        cached against the graph's mutation counter when no
        ``rs_community_provider`` is involved; indices with route-server
        communities attached are rebuilt on demand because the provider
        callable's output is not observable by the cache.
        """
        if rs_community_provider is None:
            if self._index_cache is not None and \
                    self._index_cache[0] == self._version:
                return self._index_cache[1]
            index = CSRIndex.from_adjacencies(self.propagation_adjacencies())
            self._index_cache = (self._version, index)
            return index
        return CSRIndex.from_adjacencies(self.propagation_adjacencies(
            rs_community_provider=rs_community_provider))

    # -- summary -------------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Basic size statistics."""
        return {
            "ases": len(self._nodes),
            "links": len(self._links),
            "c2p_links": len(self.links(LinkType.C2P)),
            "p2p_links": len(self.links(LinkType.P2P)),
            "rs_p2p_links": len(self.links(LinkType.RS_P2P)),
            "sibling_links": len(self.links(LinkType.SIBLING)),
            "stubs": len(self.stubs()),
        }
