"""AS link types and valley-free path checking.

Complements :class:`repro.bgp.policy.Relationship` (a per-session view)
with an undirected link-level taxonomy and the valley-free patterns from
section 2.1 of the paper:

    (1) n x c2p + m x p2c
    (2) n x c2p + p2p + m x p2c

with sibling links allowed anywhere.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Sequence, Tuple

from repro.bgp.policy import Relationship


class LinkType(enum.Enum):
    """Undirected AS link annotation."""

    C2P = "c2p"          #: customer-to-provider (directed: first AS is customer)
    P2P = "p2p"          #: settlement-free bilateral peering
    RS_P2P = "rs-p2p"    #: peering established multilaterally over a route server
    SIBLING = "sibling"  #: same organisation

    @property
    def is_peering(self) -> bool:
        """True for p2p links regardless of how they were established."""
        return self in (LinkType.P2P, LinkType.RS_P2P)


def link_type_from_relationship(relationship: Relationship) -> LinkType:
    """Map a session relationship to the equivalent link type."""
    if relationship in (Relationship.CUSTOMER, Relationship.PROVIDER):
        return LinkType.C2P
    if relationship is Relationship.PEER:
        return LinkType.P2P
    if relationship is Relationship.RS_PEER:
        return LinkType.RS_P2P
    return LinkType.SIBLING


#: step codes used by the path classifier
_UP = "up"       # customer -> provider
_DOWN = "down"   # provider -> customer
_FLAT = "flat"   # peering
_SIDE = "side"   # sibling


def _step(
    left: int,
    right: int,
    relationships: Dict[Tuple[int, int], Relationship],
) -> Optional[str]:
    """Classify one hop using a relationship map keyed by ordered pairs.

    ``relationships[(a, b)]`` is the relationship of *b* as seen from *a*
    (``CUSTOMER`` = b is a's customer).  Returns None for unknown links.
    """
    rel = relationships.get((left, right))
    if rel is None:
        inverse = relationships.get((right, left))
        if inverse is None:
            return None
        rel = inverse.inverse()
    if rel is Relationship.PROVIDER:
        return _UP
    if rel is Relationship.CUSTOMER:
        return _DOWN
    if rel is Relationship.SIBLING:
        return _SIDE
    return _FLAT


def classify_path(
    path: Sequence[int],
    relationships: Dict[Tuple[int, int], Relationship],
) -> Optional[str]:
    """Classify *path* (origin last, as in an AS_PATH read left to right
    from the observer) as ``"valley-free"``, ``"valley"`` or None when a
    hop's relationship is unknown.

    The AS_PATH convention means traffic flows left-to-right but the
    *route announcement* travelled right-to-left; we therefore walk the
    path from the origin (right) towards the observer (left) and expect
    uphill steps, at most one flat step, then downhill steps.
    """
    if len(path) < 2:
        return "valley-free"
    hops = []
    reversed_path = list(reversed(path))
    for left, right in zip(reversed_path, reversed_path[1:]):
        if left == right:
            continue
        step = _step(left, right, relationships)
        if step is None:
            return None
        hops.append(step)

    state = "up"  # up -> flat -> down
    for step in hops:
        if step == _SIDE:
            continue
        if state == "up":
            if step == _UP:
                continue
            if step == _FLAT:
                state = "down"
                continue
            if step == _DOWN:
                state = "down"
                continue
        elif state == "down":
            if step == _DOWN:
                continue
            return "valley"
    return "valley-free"


def is_valley_free(
    path: Sequence[int],
    relationships: Dict[Tuple[int, int], Relationship],
) -> bool:
    """True if *path* complies with the valley-free patterns (unknown
    relationships are treated as violations)."""
    return classify_path(path, relationships) == "valley-free"


def count_peering_steps(
    path: Sequence[int],
    relationships: Dict[Tuple[int, int], Relationship],
) -> int:
    """Number of p2p hops on the path.  A valley-free path has at most one;
    the paper relies on this when pin-pointing the RS setter (section 4.2,
    case 3)."""
    count = 0
    for left, right in zip(path, path[1:]):
        if left == right:
            continue
        step = _step(left, right, relationships)
        if step == _FLAT:
            count += 1
    return count
