"""Synthetic Internet generator.

The paper measures the live Internet; this module builds the synthetic
stand-in: a hierarchical AS-level topology (tier-1 clique, transit and
regional providers, stubs and content networks), regional assignment,
prefix allocations, self-reported peering policies, IXP and route-server
memberships, and — most importantly — the ground-truth per-member export
intents (ALL+EXCLUDE / NONE+INCLUDE) from which the multilateral peering
fabric follows.

The output is a :class:`GeneratedInternet`, the single object the
scenario layer turns into route servers, collectors, looking glasses and
registries.  Because the generator knows the ground truth, the evaluation
can measure precision and visibility exactly, something the paper could
only approximate with looking-glass validation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.bgp.prefix import Prefix
from repro.topology.as_graph import (
    ASGraph,
    ASLink,
    ASNode,
    ASType,
    GeographicScope,
    PeeringPolicy,
)
from repro.topology.relationships import LinkType

#: Export-intent modes, matching the two community idioms of Table 1.
MODE_ALL_EXCEPT = "all-except"
MODE_NONE_EXCEPT = "none-except"


@dataclass(frozen=True)
class ExportIntent:
    """Ground-truth export policy of one RS member at one route server.

    ``MODE_ALL_EXCEPT`` announces to every member except ``listed``;
    ``MODE_NONE_EXCEPT`` announces only to ``listed``.
    """

    mode: str
    listed: FrozenSet[int] = frozenset()

    def allows(self, peer_asn: int) -> bool:
        """True if routes should reach *peer_asn* through the route server."""
        if self.mode == MODE_ALL_EXCEPT:
            return peer_asn not in self.listed
        return peer_asn in self.listed

    def allowed_members(self, members: Sequence[int], self_asn: int) -> Set[int]:
        """The members (excluding the announcer) the intent allows."""
        return {m for m in members if m != self_asn and self.allows(m)}


@dataclass
class IXPSpec:
    """Static description of one IXP in the synthetic ecosystem."""

    name: str
    rs_asn: int
    region: str
    target_members: int
    rs_fraction: float = 0.78
    pricing: str = "flat"            #: "flat" or "usage" (section 5.7)
    has_rs_lg: bool = True           #: IXP provides an LG to its route server
    scheme_style: str = "rs-asn"     #: community grammar family (Table 1)
    rs_transparent: bool = True      #: route server strips its ASN from paths
    publishes_member_list: bool = True


def default_euro_ixps(member_scale: float = 0.30) -> List[IXPSpec]:
    """The 13 European IXPs of Table 2, with member counts scaled down.

    The route-server fractions follow the RS/ASes columns of Table 2; LG
    availability follows the LG column; the community grammar family is
    diversified as in Table 1 (DE-CIX/MSK-IX style, ECIX offset style and
    an ambiguous zero-prefixed style that exercises the IXP
    disambiguation logic of section 4.2).
    """
    def scaled(members: int) -> int:
        return max(12, int(round(members * member_scale)))

    return [
        IXPSpec("DE-CIX", 6695, "eu-central", scaled(483), 369 / 483, "flat", True, "rs-asn"),
        IXPSpec("AMS-IX", 6777, "eu-west", scaled(574), 444 / 574, "flat", False, "rs-asn"),
        IXPSpec("LINX", 8714, "eu-west", scaled(457), 0.55, "flat", False, "rs-asn",
                publishes_member_list=False),
        IXPSpec("MSK-IX", 8631, "eu-east", scaled(374), 348 / 374, "usage", True, "zero-exclude"),
        IXPSpec("PLIX", 8545, "eu-east", scaled(222), 211 / 222, "flat", True, "rs-asn"),
        IXPSpec("France-IX", 51706, "eu-west", scaled(193), 169 / 193, "flat", True, "rs-asn"),
        IXPSpec("LONAP", 8550, "eu-west", scaled(120), 109 / 120, "flat", False, "rs-asn"),
        IXPSpec("ECIX", 9033, "eu-central", scaled(102), 83 / 102, "flat", True, "offset"),
        IXPSpec("SPB-IX", 43690, "eu-east", scaled(89), 78 / 89, "usage", True, "rs-asn"),
        IXPSpec("DTEL-IX", 31210, "eu-east", scaled(74), 71 / 74, "flat", True, "rs-asn"),
        IXPSpec("TOP-IX", 12956, "eu-south", scaled(71), 52 / 71, "flat", True, "rs-asn",
                rs_transparent=False),
        IXPSpec("STHIX", 35787, "eu-north", scaled(69), 42 / 69, "usage", False, "rs-asn"),
        IXPSpec("BIX.BG", 57463, "eu-east", scaled(53), 52 / 53, "flat", True, "rs-asn"),
    ]


@dataclass
class GeneratorConfig:
    """Tunable parameters of the synthetic Internet.

    ``scale`` multiplies the AS population; ``ixp_member_scale`` multiplies
    the per-IXP member counts of Table 2.  The defaults produce an
    ecosystem that runs end-to-end in seconds while preserving the
    qualitative structure of the paper's measurement.
    """

    seed: int = 20130501
    scale: float = 0.30
    ixp_member_scale: float = 0.30

    num_tier1: int = 8
    num_hypergiants: int = 4
    regions: Tuple[str, ...] = (
        "eu-west", "eu-central", "eu-east", "eu-north", "eu-south", "na", "asia")
    region_weights: Tuple[float, ...] = (0.24, 0.22, 0.20, 0.08, 0.12, 0.08, 0.06)

    fraction_32bit_asn: float = 0.06
    sibling_pair_fraction: float = 0.01

    #: Overall self-reported policy mix (section 5.2: 72% / 24% / 4%).
    policy_fractions: Tuple[float, float, float] = (0.72, 0.24, 0.04)
    #: Fraction of IXP members that register in the PeeringDB substrate.
    peeringdb_registration_rate: float = 0.55
    #: Per-IXP probability of joining the route server, by policy.
    rs_participation: Dict[str, float] = field(default_factory=lambda: {
        "open": 0.88, "selective": 0.66, "restrictive": 0.34})

    ixps: Optional[List[IXPSpec]] = None

    #: Probability that an excluding member picks one of its own customers
    #: (drives the paper's "12% of EXCLUDEs block a co-located customer").
    exclude_customer_probability: float = 0.12

    def resolved_ixps(self) -> List[IXPSpec]:
        """The configured IXP specs (Table 2 defaults if not overridden)."""
        if self.ixps is not None:
            return self.ixps
        return default_euro_ixps(self.ixp_member_scale)

    @property
    def num_transit(self) -> int:
        return max(10, int(130 * self.scale))

    @property
    def num_regional(self) -> int:
        return max(30, int(420 * self.scale))

    @property
    def num_stub(self) -> int:
        return max(80, int(1350 * self.scale))

    @property
    def num_content(self) -> int:
        return max(10, int(110 * self.scale))


@dataclass
class GeneratedInternet:
    """The generator output: ground truth for every downstream substrate."""

    graph: ASGraph
    config: GeneratorConfig
    ixp_specs: List[IXPSpec]
    #: (ixp name, member ASN) -> ground-truth export intent.
    export_intents: Dict[Tuple[str, int], ExportIntent]
    #: Per-IXP ground-truth multilateral peering pairs (reciprocal allow).
    mlp_ground_truth: Dict[str, Set[Tuple[int, int]]]
    #: Per-IXP bilateral peering pairs established across the IXP fabric.
    bilateral_ixp_pairs: Dict[str, Set[Tuple[int, int]]]
    #: Hypergiant content ASes (Google/Akamai analogues).
    hypergiants: List[int]
    #: Pairs with a private interconnect that motivates EXCLUDE filtering.
    private_peering_pairs: Set[Tuple[int, int]]
    #: Per-IXP pairs that peer over the RS *and* have a c2p relationship.
    hybrid_pairs: Dict[str, Set[Tuple[int, int]]]

    def all_mlp_links(self) -> Set[Tuple[int, int]]:
        """Union of the per-IXP ground-truth MLP pairs."""
        result: Set[Tuple[int, int]] = set()
        for pairs in self.mlp_ground_truth.values():
            result |= pairs
        return result

    def rs_members(self, ixp_name: str) -> List[int]:
        """Route-server members of *ixp_name*."""
        return self.graph.rs_members_of_ixp(ixp_name)

    def ixp_spec(self, ixp_name: str) -> IXPSpec:
        """The :class:`IXPSpec` for *ixp_name*."""
        for spec in self.ixp_specs:
            if spec.name == ixp_name:
                return spec
        raise KeyError(ixp_name)


class InternetGenerator:
    """Build a :class:`GeneratedInternet` from a :class:`GeneratorConfig`."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()
        self._rng = random.Random(self.config.seed)
        self._prefix_counter = 0

    # -- public API -------------------------------------------------------------

    def generate(self) -> GeneratedInternet:
        """Generate the full synthetic ecosystem."""
        config = self.config
        graph = ASGraph()
        ixp_specs = config.resolved_ixps()

        tier1, transit, regional, stubs, content, hypergiants = self._allocate_ases(graph)
        self._build_hierarchy(graph, tier1, transit, regional, stubs, content, hypergiants)
        self._add_sibling_links(graph)
        self._add_bilateral_backbone_peering(graph, transit, regional)
        self._assign_prefixes(graph)
        self._assign_policies(graph, tier1, transit, regional, stubs, content, hypergiants)

        self._assign_ixp_memberships(graph, ixp_specs, hypergiants)
        private_peering = self._private_peering(graph, hypergiants)
        export_intents = self._build_export_intents(
            graph, ixp_specs, hypergiants, private_peering)
        mlp_truth, hybrid_pairs = self._materialise_mlp_links(
            graph, ixp_specs, export_intents)
        bilateral_pairs = self._bilateral_ixp_peering(graph, ixp_specs)

        return GeneratedInternet(
            graph=graph,
            config=config,
            ixp_specs=ixp_specs,
            export_intents=export_intents,
            mlp_ground_truth=mlp_truth,
            bilateral_ixp_pairs=bilateral_pairs,
            hypergiants=hypergiants,
            private_peering_pairs=private_peering,
            hybrid_pairs=hybrid_pairs,
        )

    # -- AS population ------------------------------------------------------------

    def _pick_region(self) -> str:
        return self._rng.choices(
            self.config.regions, weights=self.config.region_weights, k=1)[0]

    def _allocate_ases(self, graph: ASGraph):
        config = self.config
        rng = self._rng

        tier1: List[int] = []
        for index in range(config.num_tier1):
            asn = 100 + index
            graph.add_as(ASNode(
                asn=asn, name=f"Tier1-{index}", as_type=ASType.TIER1,
                region="global", scope=GeographicScope.GLOBAL))
            tier1.append(asn)

        transit: List[int] = []
        for index in range(config.num_transit):
            asn = 1000 + index
            graph.add_as(ASNode(
                asn=asn, name=f"Transit-{index}", as_type=ASType.TRANSIT,
                region=self._pick_region(),
                scope=GeographicScope.EUROPE if rng.random() < 0.7
                else GeographicScope.GLOBAL))
            transit.append(asn)

        regional: List[int] = []
        for index in range(config.num_regional):
            asn = 5000 + index
            graph.add_as(ASNode(
                asn=asn, name=f"Regional-{index}", as_type=ASType.REGIONAL,
                region=self._pick_region(), scope=GeographicScope.REGIONAL))
            regional.append(asn)

        hypergiants: List[int] = []
        for index in range(config.num_hypergiants):
            asn = 15000 + index
            graph.add_as(ASNode(
                asn=asn, name=f"Hypergiant-{index}", as_type=ASType.CONTENT,
                region="global", scope=GeographicScope.GLOBAL))
            hypergiants.append(asn)

        content: List[int] = []
        for index in range(config.num_content):
            asn = 16000 + index
            graph.add_as(ASNode(
                asn=asn, name=f"Content-{index}", as_type=ASType.CONTENT,
                region=self._pick_region(), scope=GeographicScope.EUROPE))
            content.append(asn)

        stubs: List[int] = []
        for index in range(config.num_stub):
            if rng.random() < config.fraction_32bit_asn:
                asn = 200000 + index
            else:
                asn = 30000 + index
            graph.add_as(ASNode(
                asn=asn, name=f"Stub-{index}", as_type=ASType.STUB,
                region=self._pick_region(),
                scope=GeographicScope.REGIONAL if rng.random() < 0.85
                else GeographicScope.NOT_AVAILABLE))
            stubs.append(asn)

        return tier1, transit, regional, stubs, content, hypergiants

    def _build_hierarchy(self, graph, tier1, transit, regional, stubs, content, hypergiants):
        rng = self._rng

        # Tier-1 full mesh of settlement-free peering.
        for i, a in enumerate(tier1):
            for b in tier1[i + 1:]:
                graph.add_p2p(a, b)

        def providers_from(pool: List[int], count: int, region: str) -> List[int]:
            same_region = [p for p in pool if graph.get_as(p).region in (region, "global")]
            candidates = same_region if len(same_region) >= count else pool
            count = min(count, len(candidates))
            return rng.sample(candidates, count) if count else []

        for asn in transit:
            node = graph.get_as(asn)
            for provider in providers_from(tier1, rng.randint(1, 2), node.region):
                graph.add_c2p(asn, provider)

        for asn in regional:
            node = graph.get_as(asn)
            pool = transit + tier1
            for provider in providers_from(pool, rng.randint(1, 3), node.region):
                if not graph.has_link(asn, provider):
                    graph.add_c2p(asn, provider)

        for asn in hypergiants:
            for provider in rng.sample(tier1, 2):
                graph.add_c2p(asn, provider)

        for asn in content:
            node = graph.get_as(asn)
            pool = transit + regional
            for provider in providers_from(pool, rng.randint(1, 2), node.region):
                if not graph.has_link(asn, provider):
                    graph.add_c2p(asn, provider)

        for asn in stubs:
            node = graph.get_as(asn)
            pool = regional + transit
            for provider in providers_from(pool, rng.randint(1, 2), node.region):
                if not graph.has_link(asn, provider):
                    graph.add_c2p(asn, provider)

    def _add_sibling_links(self, graph: ASGraph) -> None:
        rng = self._rng
        asns = graph.asns()
        num_pairs = int(len(asns) * self.config.sibling_pair_fraction)
        for _ in range(num_pairs):
            a, b = rng.sample(asns, 2)
            if not graph.has_link(a, b):
                graph.add_link(ASLink(a, b, LinkType.SIBLING))

    def _add_bilateral_backbone_peering(self, graph, transit, regional) -> None:
        """Private (non-IXP) bilateral peering among transit/regional ASes."""
        rng = self._rng
        for i, a in enumerate(transit):
            for b in transit[i + 1:]:
                if graph.has_link(a, b):
                    continue
                same_region = graph.get_as(a).region == graph.get_as(b).region
                if rng.random() < (0.25 if same_region else 0.08):
                    graph.add_p2p(a, b)
        for i, a in enumerate(regional):
            for b in regional[i + 1:]:
                if graph.has_link(a, b):
                    continue
                if graph.get_as(a).region != graph.get_as(b).region:
                    continue
                if rng.random() < 0.03:
                    graph.add_p2p(a, b)

    # -- prefixes -------------------------------------------------------------------

    def _next_prefix(self, length: int = 24) -> Prefix:
        index = self._prefix_counter
        self._prefix_counter += 1
        # Allocate /24s sequentially under 11.0.0.0/8, then 12.0.0.0/8, ...
        base = 11 + (index >> 16)
        network = (base << 24) | ((index & 0xFFFF) << 8)
        return Prefix(network, length)

    def _assign_prefixes(self, graph: ASGraph) -> None:
        rng = self._rng
        counts = {
            ASType.TIER1: (10, 25),
            ASType.TRANSIT: (4, 15),
            ASType.REGIONAL: (2, 8),
            ASType.CONTENT: (4, 14),
            ASType.STUB: (1, 4),
        }
        for node in graph.nodes():
            low, high = counts[node.as_type]
            if node.name.startswith("Hypergiant"):
                low, high = 20, 40
            for _ in range(rng.randint(low, high)):
                node.prefixes.append(self._next_prefix())

    # -- policies ---------------------------------------------------------------------

    def _assign_policies(self, graph, tier1, transit, regional, stubs, content, hypergiants):
        rng = self._rng
        open_frac, selective_frac, restrictive_frac = self.config.policy_fractions

        def pick(weights: Tuple[float, float, float]) -> PeeringPolicy:
            return rng.choices(
                [PeeringPolicy.OPEN, PeeringPolicy.SELECTIVE, PeeringPolicy.RESTRICTIVE],
                weights=weights, k=1)[0]

        for asn in tier1:
            graph.get_as(asn).policy = pick((0.05, 0.40, 0.55))
        for asn in transit:
            graph.get_as(asn).policy = pick((0.45, 0.45, 0.10))
        for asn in regional:
            graph.get_as(asn).policy = pick((open_frac, selective_frac, restrictive_frac))
        for asn in content:
            graph.get_as(asn).policy = pick((0.85, 0.13, 0.02))
        for asn in stubs:
            graph.get_as(asn).policy = pick((0.80, 0.17, 0.03))
        for asn in hypergiants:
            graph.get_as(asn).policy = PeeringPolicy.OPEN

        for node in graph.nodes():
            node.in_peeringdb = rng.random() < self.config.peeringdb_registration_rate
            if node.name.startswith("Hypergiant") or node.as_type is ASType.TIER1:
                node.in_peeringdb = True

    # -- IXP membership ------------------------------------------------------------------

    def _assign_ixp_memberships(self, graph: ASGraph, ixp_specs: List[IXPSpec],
                                hypergiants: List[int]) -> None:
        rng = self._rng
        participation = self.config.rs_participation

        for spec in ixp_specs:
            same_region = [n.asn for n in graph.nodes()
                           if n.region == spec.region and n.as_type is not ASType.TIER1]
            europeans = [n.asn for n in graph.nodes()
                         if n.region.startswith("eu") and n.asn not in same_region
                         and n.as_type is not ASType.TIER1]
            globals_ = [n.asn for n in graph.nodes()
                        if n.region in ("global", "na", "asia")
                        and not n.name.startswith("Hypergiant")]

            members: Set[int] = set()
            # Hypergiants show up at nearly every large IXP.
            for giant in hypergiants:
                if rng.random() < 0.9:
                    members.add(giant)

            rng.shuffle(same_region)
            rng.shuffle(europeans)
            rng.shuffle(globals_)
            pools = [(same_region, 0.62), (europeans, 0.28), (globals_, 0.10)]
            for pool, share in pools:
                want = int(spec.target_members * share)
                for asn in pool:
                    if len(members) >= spec.target_members:
                        break
                    if want <= 0:
                        break
                    members.add(asn)
                    want -= 1

            for asn in members:
                node = graph.get_as(asn)
                node.ixps.add(spec.name)
                policy_key = node.policy.value if node.policy is not PeeringPolicy.UNKNOWN \
                    else "open"
                probability = participation.get(policy_key, 0.7)
                # The spec's own RS fraction modulates the policy-driven rate.
                probability = min(0.98, probability * (spec.rs_fraction / 0.78))
                if rng.random() < probability:
                    node.rs_memberships.add(spec.name)

    # -- export intents ----------------------------------------------------------------------

    def _private_peering(self, graph: ASGraph, hypergiants: List[int]) -> Set[Tuple[int, int]]:
        """Pairs with a direct private interconnect to a hypergiant (these
        ASes later EXCLUDE the hypergiant at route servers, section 5.5)."""
        rng = self._rng
        pairs: Set[Tuple[int, int]] = set()
        ixp_members = [n.asn for n in graph.nodes() if n.ixps]
        for giant in hypergiants:
            for asn in ixp_members:
                if asn == giant:
                    continue
                if rng.random() < 0.06:
                    pairs.add((min(asn, giant), max(asn, giant)))
        return pairs

    def _build_export_intents(
        self,
        graph: ASGraph,
        ixp_specs: List[IXPSpec],
        hypergiants: List[int],
        private_peering: Set[Tuple[int, int]],
    ) -> Dict[Tuple[str, int], ExportIntent]:
        rng = self._rng
        intents: Dict[Tuple[str, int], ExportIntent] = {}

        for spec in ixp_specs:
            members = graph.rs_members_of_ixp(spec.name)
            member_set = set(members)
            for asn in members:
                node = graph.get_as(asn)
                intents[(spec.name, asn)] = self._intent_for_member(
                    node, member_set, graph, hypergiants, private_peering, rng)
        return intents

    def _intent_for_member(self, node, member_set, graph, hypergiants,
                           private_peering, rng) -> ExportIntent:
        others = sorted(member_set - {node.asn})
        if not others:
            return ExportIntent(MODE_ALL_EXCEPT, frozenset())

        def pick_excludes(max_count: int) -> FrozenSet[int]:
            count = rng.randint(0, max_count)
            chosen: Set[int] = set()
            # Prefer hypergiants reached over private interconnects.
            for giant in hypergiants:
                if giant in member_set and giant != node.asn:
                    if (min(node.asn, giant), max(node.asn, giant)) in private_peering:
                        if rng.random() < 0.75:
                            chosen.add(giant)
            # Occasionally a provider blocks a co-located customer.
            customers_here = [c for c in graph.customers(node.asn) if c in member_set]
            if customers_here and rng.random() < self.config.exclude_customer_probability:
                chosen.add(rng.choice(customers_here))
            while len(chosen) < count and len(chosen) < len(others):
                chosen.add(rng.choice(others))
            return frozenset(chosen)

        def pick_includes(fraction_low: float, fraction_high: float,
                          minimum: int = 1) -> FrozenSet[int]:
            fraction = rng.uniform(fraction_low, fraction_high)
            count = max(minimum, int(len(others) * fraction))
            count = min(count, len(others))
            return frozenset(rng.sample(others, count))

        policy = node.policy
        roll = rng.random()
        if policy is PeeringPolicy.OPEN:
            if roll < 0.78:
                return ExportIntent(MODE_ALL_EXCEPT, frozenset())
            if roll < 0.96:
                return ExportIntent(MODE_ALL_EXCEPT, pick_excludes(5))
            return ExportIntent(MODE_NONE_EXCEPT, pick_includes(0.70, 0.92))
        if policy is PeeringPolicy.SELECTIVE:
            if roll < 0.58:
                return ExportIntent(MODE_ALL_EXCEPT, pick_excludes(8))
            return ExportIntent(MODE_NONE_EXCEPT, pick_includes(0.05, 0.25))
        # Restrictive networks that nonetheless joined the route server.
        if roll < 0.30:
            return ExportIntent(MODE_ALL_EXCEPT, pick_excludes(6))
        return ExportIntent(MODE_NONE_EXCEPT,
                            pick_includes(0.01, 0.08, minimum=1))

    # -- multilateral / bilateral fabric --------------------------------------------------------

    def _materialise_mlp_links(
        self,
        graph: ASGraph,
        ixp_specs: List[IXPSpec],
        intents: Dict[Tuple[str, int], ExportIntent],
    ) -> Tuple[Dict[str, Set[Tuple[int, int]]], Dict[str, Set[Tuple[int, int]]]]:
        mlp_truth: Dict[str, Set[Tuple[int, int]]] = {}
        hybrid: Dict[str, Set[Tuple[int, int]]] = {}

        for spec in ixp_specs:
            members = graph.rs_members_of_ixp(spec.name)
            pairs: Set[Tuple[int, int]] = set()
            hybrid_pairs: Set[Tuple[int, int]] = set()
            for i, a in enumerate(members):
                intent_a = intents[(spec.name, a)]
                for b in members[i + 1:]:
                    intent_b = intents[(spec.name, b)]
                    if not (intent_a.allows(b) and intent_b.allows(a)):
                        continue
                    pair = (a, b)
                    pairs.add(pair)
                    existing = graph.get_link(a, b)
                    if existing is None:
                        graph.add_p2p(a, b, ixp=spec.name, multilateral=True)
                    elif existing.link_type is LinkType.C2P:
                        hybrid_pairs.add(pair)
            mlp_truth[spec.name] = pairs
            hybrid[spec.name] = hybrid_pairs
        return mlp_truth, hybrid

    def _bilateral_ixp_peering(
        self, graph: ASGraph, ixp_specs: List[IXPSpec]
    ) -> Dict[str, Set[Tuple[int, int]]]:
        """Bilateral sessions across the IXP fabric (not via the RS).

        These are the links the paper acknowledges its method cannot see
        (section 5.8); mostly established by members that stayed off the
        route server, plus a few selective RS members.
        """
        rng = self._rng
        result: Dict[str, Set[Tuple[int, int]]] = {}
        for spec in ixp_specs:
            members = graph.members_of_ixp(spec.name)
            rs_members = set(graph.rs_members_of_ixp(spec.name))
            pairs: Set[Tuple[int, int]] = set()
            non_rs = [m for m in members if m not in rs_members]
            for a in non_rs:
                # Selective bilateral peers connect to a handful of others.
                candidates = [m for m in members if m != a]
                if not candidates:
                    continue
                for b in rng.sample(candidates, min(len(candidates), rng.randint(1, 6))):
                    pair = (min(a, b), max(a, b))
                    pairs.add(pair)
                    if not graph.has_link(a, b):
                        graph.add_p2p(a, b, ixp=spec.name, multilateral=False)
            result[spec.name] = pairs
        return result
