"""Synthetic Internet generator.

The paper measures the live Internet; this module builds the synthetic
stand-in: a hierarchical AS-level topology (tier-1 clique, transit and
regional providers, stubs and content networks), regional assignment,
prefix allocations, self-reported peering policies, IXP and route-server
memberships, and — most importantly — the ground-truth per-member export
intents (ALL+EXCLUDE / NONE+INCLUDE) from which the multilateral peering
fabric follows.

Generation is decomposed into the composable phases of
:mod:`repro.topology.phases`; :class:`GeneratorConfig.phases` selects
(and orders) them, so a scenario family can drop, reorder or substitute
phases while every phase's knobs stay on this config.  The default
phase order reproduces the original monolithic generator bit-for-bit.

The output is a :class:`GeneratedInternet`, the single object the
scenario layer turns into route servers, collectors, looking glasses and
registries.  Because the generator knows the ground truth, the evaluation
can measure precision and visibility exactly, something the paper could
only approximate with looking-glass validation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.topology.as_graph import ASGraph
from repro.topology.phases import (  # noqa: F401  (re-exported API)
    DEFAULT_PHASE_ORDER,
    PHASES,
    ExportIntent,
    GenerationState,
    MODE_ALL_EXCEPT,
    MODE_NONE_EXCEPT,
)


@dataclass
class IXPSpec:
    """Static description of one IXP in the synthetic ecosystem."""

    name: str
    rs_asn: int
    region: str
    target_members: int
    rs_fraction: float = 0.78
    pricing: str = "flat"            #: "flat" or "usage" (section 5.7)
    has_rs_lg: bool = True           #: IXP provides an LG to its route server
    scheme_style: str = "rs-asn"     #: community grammar family (Table 1)
    rs_transparent: bool = True      #: route server strips its ASN from paths
    publishes_member_list: bool = True


def default_euro_ixps(member_scale: float = 0.30) -> List[IXPSpec]:
    """The 13 European IXPs of Table 2, with member counts scaled down.

    The route-server fractions follow the RS/ASes columns of Table 2; LG
    availability follows the LG column; the community grammar family is
    diversified as in Table 1 (DE-CIX/MSK-IX style, ECIX offset style and
    an ambiguous zero-prefixed style that exercises the IXP
    disambiguation logic of section 4.2).
    """
    def scaled(members: int) -> int:
        return max(12, int(round(members * member_scale)))

    return [
        IXPSpec("DE-CIX", 6695, "eu-central", scaled(483), 369 / 483, "flat", True, "rs-asn"),
        IXPSpec("AMS-IX", 6777, "eu-west", scaled(574), 444 / 574, "flat", False, "rs-asn"),
        IXPSpec("LINX", 8714, "eu-west", scaled(457), 0.55, "flat", False, "rs-asn",
                publishes_member_list=False),
        IXPSpec("MSK-IX", 8631, "eu-east", scaled(374), 348 / 374, "usage", True, "zero-exclude"),
        IXPSpec("PLIX", 8545, "eu-east", scaled(222), 211 / 222, "flat", True, "rs-asn"),
        IXPSpec("France-IX", 51706, "eu-west", scaled(193), 169 / 193, "flat", True, "rs-asn"),
        IXPSpec("LONAP", 8550, "eu-west", scaled(120), 109 / 120, "flat", False, "rs-asn"),
        IXPSpec("ECIX", 9033, "eu-central", scaled(102), 83 / 102, "flat", True, "offset"),
        IXPSpec("SPB-IX", 43690, "eu-east", scaled(89), 78 / 89, "usage", True, "rs-asn"),
        IXPSpec("DTEL-IX", 31210, "eu-east", scaled(74), 71 / 74, "flat", True, "rs-asn"),
        IXPSpec("TOP-IX", 12956, "eu-south", scaled(71), 52 / 71, "flat", True, "rs-asn",
                rs_transparent=False),
        IXPSpec("STHIX", 35787, "eu-north", scaled(69), 42 / 69, "usage", False, "rs-asn"),
        IXPSpec("BIX.BG", 57463, "eu-east", scaled(53), 52 / 53, "flat", True, "rs-asn"),
    ]


@dataclass
class GeneratorConfig:
    """Tunable parameters of the synthetic Internet.

    ``scale`` multiplies the AS population; ``ixp_member_scale`` multiplies
    the per-IXP member counts of Table 2.  The defaults produce an
    ecosystem that runs end-to-end in seconds while preserving the
    qualitative structure of the paper's measurement.
    """

    seed: int = 20130501
    scale: float = 0.30
    ixp_member_scale: float = 0.30

    num_tier1: int = 8
    num_hypergiants: int = 4
    regions: Tuple[str, ...] = (
        "eu-west", "eu-central", "eu-east", "eu-north", "eu-south", "na", "asia")
    region_weights: Tuple[float, ...] = (0.24, 0.22, 0.20, 0.08, 0.12, 0.08, 0.06)

    fraction_32bit_asn: float = 0.06
    sibling_pair_fraction: float = 0.01

    #: Overall self-reported policy mix (section 5.2: 72% / 24% / 4%).
    policy_fractions: Tuple[float, float, float] = (0.72, 0.24, 0.04)
    #: Fraction of IXP members that register in the PeeringDB substrate.
    peeringdb_registration_rate: float = 0.55
    #: Per-IXP probability of joining the route server, by policy.
    rs_participation: Dict[str, float] = field(default_factory=lambda: {
        "open": 0.88, "selective": 0.66, "restrictive": 0.34})

    ixps: Optional[List[IXPSpec]] = None

    #: Probability that an excluding member picks one of its own customers
    #: (drives the paper's "12% of EXCLUDEs block a co-located customer").
    exclude_customer_probability: float = 0.12

    #: Per-IXP probability that a hypergiant joins the roster.
    hypergiant_ixp_presence: float = 0.9
    #: Per-(hypergiant, IXP member) probability of a private interconnect.
    hypergiant_private_peering_probability: float = 0.06
    #: Bilateral (non-RS) session count range per off-RS member.
    bilateral_peer_range: Tuple[int, int] = (1, 6)
    #: Content-AS population multiplier (content-heavy eras raise it).
    content_multiplier: float = 1.0

    #: Generation phase sequence (None -> the monolith-equivalent
    #: :data:`~repro.topology.phases.DEFAULT_PHASE_ORDER`).
    phases: Optional[Tuple[str, ...]] = None

    def resolved_ixps(self) -> List[IXPSpec]:
        """The configured IXP specs (Table 2 defaults if not overridden)."""
        if self.ixps is not None:
            return self.ixps
        return default_euro_ixps(self.ixp_member_scale)

    def resolved_phases(self) -> Tuple[str, ...]:
        """The configured phase sequence (validated against the registry)."""
        names = self.phases if self.phases is not None else DEFAULT_PHASE_ORDER
        unknown = [name for name in names if name not in PHASES]
        if unknown:
            raise ValueError(
                f"unknown generation phases {unknown!r} "
                f"(available: {sorted(PHASES)})")
        return tuple(names)

    @property
    def num_transit(self) -> int:
        return max(10, int(130 * self.scale))

    @property
    def num_regional(self) -> int:
        return max(30, int(420 * self.scale))

    @property
    def num_stub(self) -> int:
        return max(80, int(1350 * self.scale))

    @property
    def num_content(self) -> int:
        return max(10, int(110 * self.scale * self.content_multiplier))


@dataclass
class GeneratedInternet:
    """The generator output: ground truth for every downstream substrate."""

    graph: ASGraph
    config: GeneratorConfig
    ixp_specs: List[IXPSpec]
    #: (ixp name, member ASN) -> ground-truth export intent.
    export_intents: Dict[Tuple[str, int], ExportIntent]
    #: Per-IXP ground-truth multilateral peering pairs (reciprocal allow).
    mlp_ground_truth: Dict[str, Set[Tuple[int, int]]]
    #: Per-IXP bilateral peering pairs established across the IXP fabric.
    bilateral_ixp_pairs: Dict[str, Set[Tuple[int, int]]]
    #: Hypergiant content ASes (Google/Akamai analogues).
    hypergiants: List[int]
    #: Pairs with a private interconnect that motivates EXCLUDE filtering.
    private_peering_pairs: Set[Tuple[int, int]]
    #: Per-IXP pairs that peer over the RS *and* have a c2p relationship.
    hybrid_pairs: Dict[str, Set[Tuple[int, int]]]

    def all_mlp_links(self) -> Set[Tuple[int, int]]:
        """Union of the per-IXP ground-truth MLP pairs."""
        result: Set[Tuple[int, int]] = set()
        for pairs in self.mlp_ground_truth.values():
            result |= pairs
        return result

    def rs_members(self, ixp_name: str) -> List[int]:
        """Route-server members of *ixp_name*."""
        return self.graph.rs_members_of_ixp(ixp_name)

    def ixp_spec(self, ixp_name: str) -> IXPSpec:
        """The :class:`IXPSpec` for *ixp_name*."""
        for spec in self.ixp_specs:
            if spec.name == ixp_name:
                return spec
        raise KeyError(ixp_name)


class InternetGenerator:
    """Build a :class:`GeneratedInternet` by running the configured phases."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()
        self._rng = random.Random(self.config.seed)

    def generate(self) -> GeneratedInternet:
        """Generate the full synthetic ecosystem."""
        config = self.config
        state = GenerationState(
            config=config,
            rng=self._rng,
            graph=ASGraph(),
            ixp_specs=config.resolved_ixps(),
        )
        for name in config.resolved_phases():
            PHASES[name](state)
        return GeneratedInternet(
            graph=state.graph,
            config=config,
            ixp_specs=state.ixp_specs,
            export_intents=state.export_intents,
            mlp_ground_truth=state.mlp_ground_truth,
            bilateral_ixp_pairs=state.bilateral_ixp_pairs,
            hypergiants=state.hypergiants,
            private_peering_pairs=state.private_peering,
            hybrid_pairs=state.hybrid_pairs,
        )
