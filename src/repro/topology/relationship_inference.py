"""AS relationship inference from public AS paths.

The paper's passive inference (section 4.2, setter-identification case 3)
and its repeller analysis (section 5.5) both rely on CAIDA's AS-Rank
relationship-inference algorithm [32].  This module implements a
self-contained variant of that algorithm working purely from observed AS
paths, exposing the two interfaces the paper consumes:

* ``relationship(a, b)`` — c2p / p2p classification of an observed link;
* ``customer_cone(asn)`` — the set of ASes reachable through inferred
  provider->customer links.

The algorithm follows the classic structure: compute transit degrees,
pick a clique of top transit providers, locate the summit of every path
and vote each link up or down hill, then classify links from the votes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.policy import Relationship


@dataclass
class InferredRelationships:
    """Result of relationship inference.

    ``c2p`` maps (customer, provider) pairs; ``p2p`` holds sorted peer
    pairs.  Links can appear in only one of the two sets.
    """

    c2p: Set[Tuple[int, int]] = field(default_factory=set)
    p2p: Set[Tuple[int, int]] = field(default_factory=set)
    clique: Set[int] = field(default_factory=set)
    transit_degrees: Dict[int, int] = field(default_factory=dict)

    def relationship(self, local: int, remote: int) -> Optional[Relationship]:
        """Relationship of *remote* as seen from *local*, or None if the
        link was never classified."""
        if (local, remote) in self.c2p:
            return Relationship.PROVIDER
        if (remote, local) in self.c2p:
            return Relationship.CUSTOMER
        key = (min(local, remote), max(local, remote))
        if key in self.p2p:
            return Relationship.PEER
        return None

    def relationship_map(self) -> Dict[Tuple[int, int], Relationship]:
        """Ordered-pair map compatible with the valley-free checker."""
        result: Dict[Tuple[int, int], Relationship] = {}
        for customer, provider in self.c2p:
            result[(customer, provider)] = Relationship.PROVIDER
            result[(provider, customer)] = Relationship.CUSTOMER
        for a, b in self.p2p:
            result[(a, b)] = Relationship.PEER
            result[(b, a)] = Relationship.PEER
        return result

    def links(self) -> Set[Tuple[int, int]]:
        """All classified links as sorted pairs."""
        result = {(min(c, p), max(c, p)) for c, p in self.c2p}
        result |= set(self.p2p)
        return result

    def providers_of(self, asn: int) -> Set[int]:
        """Inferred providers of *asn*."""
        return {provider for customer, provider in self.c2p if customer == asn}

    def customers_of(self, asn: int) -> Set[int]:
        """Inferred customers of *asn*."""
        return {customer for customer, provider in self.c2p if provider == asn}

    def customer_cone(self, asn: int) -> Set[int]:
        """Customer cone of *asn* under the inferred c2p links."""
        cone: Set[int] = {asn}
        frontier = [asn]
        children: Dict[int, Set[int]] = defaultdict(set)
        for customer, provider in self.c2p:
            children[provider].add(customer)
        while frontier:
            current = frontier.pop()
            for customer in children[current]:
                if customer not in cone:
                    cone.add(customer)
                    frontier.append(customer)
        return cone

    def customer_degree(self, asn: int) -> int:
        """Number of inferred direct customers of *asn*."""
        return len(self.customers_of(asn))


class RelationshipInference:
    """Infer business relationships from a corpus of AS paths."""

    def __init__(self, clique_size: int = 10, peer_degree_ratio: float = 2.5) -> None:
        if clique_size < 1:
            raise ValueError("clique_size must be positive")
        self.clique_size = clique_size
        #: Degree ratio under which conflicting links are labelled p2p.
        self.peer_degree_ratio = peer_degree_ratio

    # -- public API ----------------------------------------------------------

    def infer(self, paths: Iterable[ASPath]) -> InferredRelationships:
        """Run the inference over *paths* and return the classification."""
        clean_paths = self._sanitise(paths)
        transit_degrees = self._transit_degrees(clean_paths)
        clique = self._infer_clique(clean_paths, transit_degrees)
        up_votes, observed_links = self._vote(clean_paths, transit_degrees, clique)
        return self._classify(observed_links, up_votes, transit_degrees, clique)

    # -- steps -----------------------------------------------------------------

    @staticmethod
    def _sanitise(paths: Iterable[ASPath]) -> List[Tuple[int, ...]]:
        """Deduplicate prepending, drop dirty paths, dedupe identical paths."""
        seen: Set[Tuple[int, ...]] = set()
        result: List[Tuple[int, ...]] = []
        for path in paths:
            if not path.is_clean():
                continue
            collapsed = path.deduplicated().asns
            if len(collapsed) < 2 or collapsed in seen:
                continue
            seen.add(collapsed)
            result.append(collapsed)
        return result

    @staticmethod
    def _transit_degrees(paths: Sequence[Tuple[int, ...]]) -> Dict[int, int]:
        """Transit degree: number of distinct neighbours an AS appears to
        provide transit between (i.e. when it sits in the middle of a path)."""
        transit_neighbours: Dict[int, Set[int]] = defaultdict(set)
        for path in paths:
            for index in range(1, len(path) - 1):
                asn = path[index]
                transit_neighbours[asn].add(path[index - 1])
                transit_neighbours[asn].add(path[index + 1])
        return {asn: len(neigh) for asn, neigh in transit_neighbours.items()}

    def _infer_clique(
        self,
        paths: Sequence[Tuple[int, ...]],
        transit_degrees: Dict[int, int],
    ) -> Set[int]:
        """Pick the top transit providers that are mutually adjacent in paths."""
        if not transit_degrees:
            return set()
        adjacency: Dict[int, Set[int]] = defaultdict(set)
        for path in paths:
            for left, right in zip(path, path[1:]):
                adjacency[left].add(right)
                adjacency[right].add(left)
        ranked = sorted(transit_degrees, key=lambda a: (-transit_degrees[a], a))
        clique: Set[int] = set()
        for candidate in ranked:
            if len(clique) >= self.clique_size:
                break
            # Require adjacency with at least half the current clique to join.
            if clique:
                connected = sum(1 for member in clique
                                if member in adjacency[candidate])
                if connected * 2 < len(clique):
                    continue
            clique.add(candidate)
        return clique

    def _vote(
        self,
        paths: Sequence[Tuple[int, ...]],
        transit_degrees: Dict[int, int],
        clique: Set[int],
    ) -> Tuple[Dict[Tuple[int, int], int], Set[Tuple[int, int]]]:
        """Vote (customer, provider) orientations using the path summit."""
        up_votes: Dict[Tuple[int, int], int] = defaultdict(int)
        observed: Set[Tuple[int, int]] = set()

        def degree(asn: int) -> Tuple[int, int]:
            return (1 if asn in clique else 0, transit_degrees.get(asn, 0))

        for path in paths:
            for left, right in zip(path, path[1:]):
                observed.add((min(left, right), max(left, right)))
            summit_index = max(range(len(path)), key=lambda i: degree(path[i]))
            # Observer side of the summit: each hop goes provider -> customer
            # when walking towards the observer, so path[i] is a customer of
            # path[i + 1] for i < summit.
            for index in range(summit_index):
                up_votes[(path[index], path[index + 1])] += 1
            # Origin side of the summit: path[i + 1] is a customer of path[i].
            for index in range(summit_index, len(path) - 1):
                up_votes[(path[index + 1], path[index])] += 1
        return up_votes, observed

    def _classify(
        self,
        observed_links: Set[Tuple[int, int]],
        up_votes: Dict[Tuple[int, int], int],
        transit_degrees: Dict[int, int],
        clique: Set[int],
    ) -> InferredRelationships:
        result = InferredRelationships(
            clique=set(clique), transit_degrees=dict(transit_degrees))
        for a, b in sorted(observed_links):
            if a in clique and b in clique:
                result.p2p.add((a, b))
                continue
            votes_ab = up_votes.get((a, b), 0)  # a customer of b
            votes_ba = up_votes.get((b, a), 0)  # b customer of a
            degree_a = transit_degrees.get(a, 0)
            degree_b = transit_degrees.get(b, 0)
            if votes_ab and votes_ba:
                # Conflicting evidence: similar transit degrees suggest p2p,
                # otherwise trust the majority direction.
                ratio = (max(degree_a, degree_b) + 1) / (min(degree_a, degree_b) + 1)
                if ratio <= self.peer_degree_ratio and min(votes_ab, votes_ba) * 2 >= max(votes_ab, votes_ba):
                    result.p2p.add((a, b))
                elif votes_ab >= votes_ba:
                    result.c2p.add((a, b))
                else:
                    result.c2p.add((b, a))
            elif votes_ab:
                self._classify_single_direction(
                    result, customer=a, provider=b,
                    transit_degrees=transit_degrees, clique=clique)
            elif votes_ba:
                self._classify_single_direction(
                    result, customer=b, provider=a,
                    transit_degrees=transit_degrees, clique=clique)
            else:
                result.p2p.add((a, b))
        return result

    def _classify_single_direction(
        self,
        result: InferredRelationships,
        customer: int,
        provider: int,
        transit_degrees: Dict[int, int],
        clique: Set[int],
    ) -> None:
        """Classify a link voted in a single direction.

        Links seen only at the very edge of paths with comparable (low)
        transit degrees are likely peering links observed from one side;
        links towards a clearly larger transit provider are c2p.
        """
        degree_c = transit_degrees.get(customer, 0)
        degree_p = transit_degrees.get(provider, 0)
        if provider in clique or degree_p > degree_c * self.peer_degree_ratio + 1:
            result.c2p.add((customer, provider))
        elif degree_c == 0 and degree_p == 0:
            result.p2p.add((min(customer, provider), max(customer, provider)))
        else:
            result.c2p.add((customer, provider))
