"""Composable generation phases of the synthetic Internet.

The old :class:`~repro.topology.generator.InternetGenerator` was a
single 600-line monolith; scenario families could only reuse it
wholesale.  This module breaks generation into named **phases** — small
functions over a shared :class:`GenerationState` — registered in
:data:`PHASES`:

========================  ====================================================
``allocate-ases``         AS population per tier (+ regions, scopes)
``hierarchy``             tier-1 clique and c2p provider trees
``sibling-links``         a sprinkle of sibling relationships
``backbone-peering``      private bilateral p2p among transit/regional ASes
``prefixes``              sequential /24 allocations per AS
``policies``              self-reported peering policies + PeeringDB presence
``ixp-membership``        IXP rosters and route-server participation
``private-peering``       direct interconnects to hypergiants
``export-intents``        ground-truth ALL+EXCLUDE / NONE+INCLUDE intents
``mlp-links``             materialise reciprocal-allow RS p2p links
``bilateral-ixp``         bilateral (non-RS) sessions across the IXP fabric
========================  ====================================================

A scenario spec selects and parameterizes phases through
``GeneratorConfig.phases`` and the knobs the phase bodies read
(``rs_participation``, ``hypergiant_ixp_presence``, ...).  All phases
draw from one shared ``random.Random``, so a given phase sequence and
config reproduces the exact byte-for-byte ecosystem of the former
monolith: the default order is the monolith's order, verified
bit-identical by the generator test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.bgp.prefix import Prefix
from repro.topology.as_graph import (
    ASGraph,
    ASLink,
    ASNode,
    ASType,
    GeographicScope,
    PeeringPolicy,
)
from repro.topology.relationships import LinkType

#: Export-intent modes, matching the two community idioms of Table 1.
MODE_ALL_EXCEPT = "all-except"
MODE_NONE_EXCEPT = "none-except"


@dataclass(frozen=True)
class ExportIntent:
    """Ground-truth export policy of one RS member at one route server.

    ``MODE_ALL_EXCEPT`` announces to every member except ``listed``;
    ``MODE_NONE_EXCEPT`` announces only to ``listed``.
    """

    mode: str
    listed: FrozenSet[int] = frozenset()

    def allows(self, peer_asn: int) -> bool:
        """True if routes should reach *peer_asn* through the route server."""
        if self.mode == MODE_ALL_EXCEPT:
            return peer_asn not in self.listed
        return peer_asn in self.listed

    def allowed_members(self, members: Sequence[int], self_asn: int) -> Set[int]:
        """The members (excluding the announcer) the intent allows."""
        return {m for m in members if m != self_asn and self.allows(m)}


@dataclass
class GenerationState:
    """Mutable state threaded through the generation phases.

    ``config`` is a :class:`~repro.topology.generator.GeneratorConfig`
    (duck-typed here to keep this module free of upward imports); every
    phase reads its knobs from it and draws from the shared ``rng``.
    """

    config: object
    rng: random.Random
    graph: ASGraph
    ixp_specs: List[object]

    # Populated by ``allocate-ases``.
    tier1: List[int] = field(default_factory=list)
    transit: List[int] = field(default_factory=list)
    regional: List[int] = field(default_factory=list)
    stubs: List[int] = field(default_factory=list)
    content: List[int] = field(default_factory=list)
    hypergiants: List[int] = field(default_factory=list)

    prefix_counter: int = 0

    # Populated by the fabric phases.
    private_peering: Set[Tuple[int, int]] = field(default_factory=set)
    export_intents: Dict[Tuple[str, int], ExportIntent] = field(default_factory=dict)
    mlp_ground_truth: Dict[str, Set[Tuple[int, int]]] = field(default_factory=dict)
    hybrid_pairs: Dict[str, Set[Tuple[int, int]]] = field(default_factory=dict)
    bilateral_ixp_pairs: Dict[str, Set[Tuple[int, int]]] = field(default_factory=dict)

    def pick_region(self) -> str:
        return self.rng.choices(
            self.config.regions, weights=self.config.region_weights, k=1)[0]

    def next_prefix(self, length: int = 24) -> Prefix:
        index = self.prefix_counter
        self.prefix_counter += 1
        # Allocate /24s sequentially under 11.0.0.0/8, then 12.0.0.0/8, ...
        base = 11 + (index >> 16)
        network = (base << 24) | ((index & 0xFFFF) << 8)
        return Prefix(network, length)


# -- AS population ------------------------------------------------------------


def phase_allocate_ases(state: GenerationState) -> None:
    """Allocate the AS population of every tier."""
    config = state.config
    rng = state.rng
    graph = state.graph

    for index in range(config.num_tier1):
        asn = 100 + index
        graph.add_as(ASNode(
            asn=asn, name=f"Tier1-{index}", as_type=ASType.TIER1,
            region="global", scope=GeographicScope.GLOBAL))
        state.tier1.append(asn)

    for index in range(config.num_transit):
        asn = 1000 + index
        graph.add_as(ASNode(
            asn=asn, name=f"Transit-{index}", as_type=ASType.TRANSIT,
            region=state.pick_region(),
            scope=GeographicScope.EUROPE if rng.random() < 0.7
            else GeographicScope.GLOBAL))
        state.transit.append(asn)

    for index in range(config.num_regional):
        asn = 5000 + index
        graph.add_as(ASNode(
            asn=asn, name=f"Regional-{index}", as_type=ASType.REGIONAL,
            region=state.pick_region(), scope=GeographicScope.REGIONAL))
        state.regional.append(asn)

    for index in range(config.num_hypergiants):
        asn = 15000 + index
        graph.add_as(ASNode(
            asn=asn, name=f"Hypergiant-{index}", as_type=ASType.CONTENT,
            region="global", scope=GeographicScope.GLOBAL))
        state.hypergiants.append(asn)

    for index in range(config.num_content):
        asn = 16000 + index
        graph.add_as(ASNode(
            asn=asn, name=f"Content-{index}", as_type=ASType.CONTENT,
            region=state.pick_region(), scope=GeographicScope.EUROPE))
        state.content.append(asn)

    for index in range(config.num_stub):
        if rng.random() < config.fraction_32bit_asn:
            asn = 200000 + index
        else:
            asn = 30000 + index
        graph.add_as(ASNode(
            asn=asn, name=f"Stub-{index}", as_type=ASType.STUB,
            region=state.pick_region(),
            scope=GeographicScope.REGIONAL if rng.random() < 0.85
            else GeographicScope.NOT_AVAILABLE))
        state.stubs.append(asn)


def phase_hierarchy(state: GenerationState) -> None:
    """Tier-1 peering clique plus c2p provider trees for every tier."""
    rng = state.rng
    graph = state.graph
    tier1, transit, regional = state.tier1, state.transit, state.regional

    # Tier-1 full mesh of settlement-free peering.
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            graph.add_p2p(a, b)

    def providers_from(pool: List[int], count: int, region: str) -> List[int]:
        same_region = [p for p in pool if graph.get_as(p).region in (region, "global")]
        candidates = same_region if len(same_region) >= count else pool
        count = min(count, len(candidates))
        return rng.sample(candidates, count) if count else []

    for asn in transit:
        node = graph.get_as(asn)
        for provider in providers_from(tier1, rng.randint(1, 2), node.region):
            graph.add_c2p(asn, provider)

    for asn in regional:
        node = graph.get_as(asn)
        pool = transit + tier1
        for provider in providers_from(pool, rng.randint(1, 3), node.region):
            if not graph.has_link(asn, provider):
                graph.add_c2p(asn, provider)

    for asn in state.hypergiants:
        for provider in rng.sample(tier1, 2):
            graph.add_c2p(asn, provider)

    for asn in state.content:
        node = graph.get_as(asn)
        pool = transit + regional
        for provider in providers_from(pool, rng.randint(1, 2), node.region):
            if not graph.has_link(asn, provider):
                graph.add_c2p(asn, provider)

    for asn in state.stubs:
        node = graph.get_as(asn)
        pool = regional + transit
        for provider in providers_from(pool, rng.randint(1, 2), node.region):
            if not graph.has_link(asn, provider):
                graph.add_c2p(asn, provider)


def phase_sibling_links(state: GenerationState) -> None:
    """A small number of sibling relationships across the population."""
    rng = state.rng
    graph = state.graph
    asns = graph.asns()
    num_pairs = int(len(asns) * state.config.sibling_pair_fraction)
    for _ in range(num_pairs):
        a, b = rng.sample(asns, 2)
        if not graph.has_link(a, b):
            graph.add_link(ASLink(a, b, LinkType.SIBLING))


def phase_backbone_peering(state: GenerationState) -> None:
    """Private (non-IXP) bilateral peering among transit/regional ASes."""
    rng = state.rng
    graph = state.graph
    for i, a in enumerate(state.transit):
        for b in state.transit[i + 1:]:
            if graph.has_link(a, b):
                continue
            same_region = graph.get_as(a).region == graph.get_as(b).region
            if rng.random() < (0.25 if same_region else 0.08):
                graph.add_p2p(a, b)
    for i, a in enumerate(state.regional):
        for b in state.regional[i + 1:]:
            if graph.has_link(a, b):
                continue
            if graph.get_as(a).region != graph.get_as(b).region:
                continue
            if rng.random() < 0.03:
                graph.add_p2p(a, b)


# -- prefixes -----------------------------------------------------------------


def phase_prefixes(state: GenerationState) -> None:
    """Sequential /24 allocations, counts scaled per AS tier."""
    rng = state.rng
    counts = {
        ASType.TIER1: (10, 25),
        ASType.TRANSIT: (4, 15),
        ASType.REGIONAL: (2, 8),
        ASType.CONTENT: (4, 14),
        ASType.STUB: (1, 4),
    }
    for node in state.graph.nodes():
        low, high = counts[node.as_type]
        if node.name.startswith("Hypergiant"):
            low, high = 20, 40
        for _ in range(rng.randint(low, high)):
            node.prefixes.append(state.next_prefix())


# -- policies -----------------------------------------------------------------


def phase_policies(state: GenerationState) -> None:
    """Self-reported peering policies and PeeringDB registration."""
    config = state.config
    rng = state.rng
    graph = state.graph
    open_frac, selective_frac, restrictive_frac = config.policy_fractions

    def pick(weights: Tuple[float, float, float]) -> PeeringPolicy:
        return rng.choices(
            [PeeringPolicy.OPEN, PeeringPolicy.SELECTIVE, PeeringPolicy.RESTRICTIVE],
            weights=weights, k=1)[0]

    for asn in state.tier1:
        graph.get_as(asn).policy = pick((0.05, 0.40, 0.55))
    for asn in state.transit:
        graph.get_as(asn).policy = pick((0.45, 0.45, 0.10))
    for asn in state.regional:
        graph.get_as(asn).policy = pick((open_frac, selective_frac, restrictive_frac))
    for asn in state.content:
        graph.get_as(asn).policy = pick((0.85, 0.13, 0.02))
    for asn in state.stubs:
        graph.get_as(asn).policy = pick((0.80, 0.17, 0.03))
    for asn in state.hypergiants:
        graph.get_as(asn).policy = PeeringPolicy.OPEN

    for node in graph.nodes():
        node.in_peeringdb = rng.random() < config.peeringdb_registration_rate
        if node.name.startswith("Hypergiant") or node.as_type is ASType.TIER1:
            node.in_peeringdb = True


# -- IXP membership -----------------------------------------------------------


def phase_ixp_membership(state: GenerationState) -> None:
    """IXP rosters (region-weighted) and route-server participation."""
    config = state.config
    rng = state.rng
    graph = state.graph
    participation = config.rs_participation

    for spec in state.ixp_specs:
        same_region = [n.asn for n in graph.nodes()
                       if n.region == spec.region and n.as_type is not ASType.TIER1]
        europeans = [n.asn for n in graph.nodes()
                     if n.region.startswith("eu") and n.asn not in same_region
                     and n.as_type is not ASType.TIER1]
        globals_ = [n.asn for n in graph.nodes()
                    if n.region in ("global", "na", "asia")
                    and not n.name.startswith("Hypergiant")]

        members: Set[int] = set()
        # Hypergiants show up at nearly every large IXP.
        for giant in state.hypergiants:
            if rng.random() < config.hypergiant_ixp_presence:
                members.add(giant)

        rng.shuffle(same_region)
        rng.shuffle(europeans)
        rng.shuffle(globals_)
        pools = [(same_region, 0.62), (europeans, 0.28), (globals_, 0.10)]
        for pool, share in pools:
            want = int(spec.target_members * share)
            for asn in pool:
                if len(members) >= spec.target_members:
                    break
                if want <= 0:
                    break
                members.add(asn)
                want -= 1

        for asn in members:
            node = graph.get_as(asn)
            node.ixps.add(spec.name)
            policy_key = node.policy.value if node.policy is not PeeringPolicy.UNKNOWN \
                else "open"
            probability = participation.get(policy_key, 0.7)
            # The spec's own RS fraction modulates the policy-driven rate.
            probability = min(0.98, probability * (spec.rs_fraction / 0.78))
            if rng.random() < probability:
                node.rs_memberships.add(spec.name)


# -- export intents -----------------------------------------------------------


def phase_private_peering(state: GenerationState) -> None:
    """Pairs with a direct private interconnect to a hypergiant (these
    ASes later EXCLUDE the hypergiant at route servers, section 5.5)."""
    rng = state.rng
    probability = state.config.hypergiant_private_peering_probability
    ixp_members = [n.asn for n in state.graph.nodes() if n.ixps]
    for giant in state.hypergiants:
        for asn in ixp_members:
            if asn == giant:
                continue
            if rng.random() < probability:
                state.private_peering.add((min(asn, giant), max(asn, giant)))


def phase_export_intents(state: GenerationState) -> None:
    """Ground-truth export intents for every RS member at every IXP."""
    graph = state.graph
    for spec in state.ixp_specs:
        members = graph.rs_members_of_ixp(spec.name)
        member_set = set(members)
        for asn in members:
            node = graph.get_as(asn)
            state.export_intents[(spec.name, asn)] = _intent_for_member(
                state, node, member_set)


def _intent_for_member(state: GenerationState, node, member_set) -> ExportIntent:
    rng = state.rng
    graph = state.graph
    others = sorted(member_set - {node.asn})
    if not others:
        return ExportIntent(MODE_ALL_EXCEPT, frozenset())

    def pick_excludes(max_count: int) -> FrozenSet[int]:
        count = rng.randint(0, max_count)
        chosen: Set[int] = set()
        # Prefer hypergiants reached over private interconnects.
        for giant in state.hypergiants:
            if giant in member_set and giant != node.asn:
                if (min(node.asn, giant), max(node.asn, giant)) in state.private_peering:
                    if rng.random() < 0.75:
                        chosen.add(giant)
        # Occasionally a provider blocks a co-located customer.
        customers_here = [c for c in graph.customers(node.asn) if c in member_set]
        if customers_here and rng.random() < state.config.exclude_customer_probability:
            chosen.add(rng.choice(customers_here))
        while len(chosen) < count and len(chosen) < len(others):
            chosen.add(rng.choice(others))
        return frozenset(chosen)

    def pick_includes(fraction_low: float, fraction_high: float,
                      minimum: int = 1) -> FrozenSet[int]:
        fraction = rng.uniform(fraction_low, fraction_high)
        count = max(minimum, int(len(others) * fraction))
        count = min(count, len(others))
        return frozenset(rng.sample(others, count))

    policy = node.policy
    roll = rng.random()
    if policy is PeeringPolicy.OPEN:
        if roll < 0.78:
            return ExportIntent(MODE_ALL_EXCEPT, frozenset())
        if roll < 0.96:
            return ExportIntent(MODE_ALL_EXCEPT, pick_excludes(5))
        return ExportIntent(MODE_NONE_EXCEPT, pick_includes(0.70, 0.92))
    if policy is PeeringPolicy.SELECTIVE:
        if roll < 0.58:
            return ExportIntent(MODE_ALL_EXCEPT, pick_excludes(8))
        return ExportIntent(MODE_NONE_EXCEPT, pick_includes(0.05, 0.25))
    # Restrictive networks that nonetheless joined the route server.
    if roll < 0.30:
        return ExportIntent(MODE_ALL_EXCEPT, pick_excludes(6))
    return ExportIntent(MODE_NONE_EXCEPT,
                        pick_includes(0.01, 0.08, minimum=1))


# -- multilateral / bilateral fabric ------------------------------------------


def phase_mlp_links(state: GenerationState) -> None:
    """Materialise reciprocal-allow pairs as RS p2p links (+ hybrids)."""
    graph = state.graph
    for spec in state.ixp_specs:
        members = graph.rs_members_of_ixp(spec.name)
        pairs: Set[Tuple[int, int]] = set()
        hybrid_pairs: Set[Tuple[int, int]] = set()
        for i, a in enumerate(members):
            intent_a = state.export_intents[(spec.name, a)]
            for b in members[i + 1:]:
                intent_b = state.export_intents[(spec.name, b)]
                if not (intent_a.allows(b) and intent_b.allows(a)):
                    continue
                pair = (a, b)
                pairs.add(pair)
                existing = graph.get_link(a, b)
                if existing is None:
                    graph.add_p2p(a, b, ixp=spec.name, multilateral=True)
                elif existing.link_type is LinkType.C2P:
                    hybrid_pairs.add(pair)
        state.mlp_ground_truth[spec.name] = pairs
        state.hybrid_pairs[spec.name] = hybrid_pairs


def phase_bilateral_ixp(state: GenerationState) -> None:
    """Bilateral sessions across the IXP fabric (not via the RS).

    These are the links the paper acknowledges its method cannot see
    (section 5.8); mostly established by members that stayed off the
    route server, plus a few selective RS members.
    """
    rng = state.rng
    graph = state.graph
    low, high = state.config.bilateral_peer_range
    for spec in state.ixp_specs:
        members = graph.members_of_ixp(spec.name)
        rs_members = set(graph.rs_members_of_ixp(spec.name))
        pairs: Set[Tuple[int, int]] = set()
        non_rs = [m for m in members if m not in rs_members]
        for a in non_rs:
            # Selective bilateral peers connect to a handful of others.
            candidates = [m for m in members if m != a]
            if not candidates:
                continue
            for b in rng.sample(candidates,
                                min(len(candidates), rng.randint(low, high))):
                pair = (min(a, b), max(a, b))
                pairs.add(pair)
                if not graph.has_link(a, b):
                    graph.add_p2p(a, b, ixp=spec.name, multilateral=False)
        state.bilateral_ixp_pairs[spec.name] = pairs


#: Phase registry: name -> phase function.
PHASES: Dict[str, Callable[[GenerationState], None]] = {
    "allocate-ases": phase_allocate_ases,
    "hierarchy": phase_hierarchy,
    "sibling-links": phase_sibling_links,
    "backbone-peering": phase_backbone_peering,
    "prefixes": phase_prefixes,
    "policies": phase_policies,
    "ixp-membership": phase_ixp_membership,
    "private-peering": phase_private_peering,
    "export-intents": phase_export_intents,
    "mlp-links": phase_mlp_links,
    "bilateral-ixp": phase_bilateral_ixp,
}

#: The monolith's phase order — the default every spec starts from.
DEFAULT_PHASE_ORDER: Tuple[str, ...] = tuple(PHASES)
