"""Declarative scenario specifications and the scenario registry.

A :class:`ScenarioSpec` is the *identity* of one scenario family: which
IXPs exist (roster + community-scheme assignment, via the roster
factory), how the underlying Internet is generated (topology phase
selection and generator knobs), what the measurement surface looks like
(collectors, looking glasses, traceroute monitors) and which analyses
make up its evaluation suite.  Everything else — stage bodies,
fingerprints, caching, sharding — is scenario-generic and lives in
:mod:`repro.scenarios.base` and :mod:`repro.pipeline`.

A spec is *declarative*: it produces plain
:class:`~repro.scenarios.base.ScenarioConfig` values (via per-size
:class:`SizeProfile` rows) and a
:class:`~repro.pipeline.stage.StageGraph` assembled from the shared
stage library.  :class:`~repro.pipeline.run.ScenarioRun` executes any
spec the same way it used to execute the hardwired europe2013 graph.

The module-level :data:`REGISTRY` holds every registered family; the
built-in families of :mod:`repro.scenarios.families` are registered on
first lookup, so ``get_scenario("europe2013")`` always works.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.collectors.archive import MeasurementWindow
from repro.scenarios.base import (
    ScenarioConfig,
    default_stage_names,
    stage_graph_for,
)
from repro.scenarios.events import TimelineSpec
from repro.pipeline.stage import StageGraph
from repro.topology.generator import GeneratorConfig, IXPSpec


@dataclass(frozen=True)
class SizeProfile:
    """One row of a scenario's size table.

    ``None`` fields defer to the :class:`ScenarioConfig` defaults (or
    the spec's ``surface`` overrides, which always win over the
    profile).  ``scenario_seed_offset`` is added to the run seed to
    derive ``ScenarioConfig.seed`` — historically ``+1`` for the named
    workloads and ``+6`` for the no-argument default configuration.
    """

    scale: float
    ixp_member_scale: float
    vantage_point_fraction: Optional[float] = None
    num_validation_lgs: Optional[int] = None
    num_traceroute_monitors: Optional[int] = None
    window_days: Optional[int] = None
    scenario_seed_offset: int = 1


#: The shared size table: every registered scenario supports these sizes
#: unless its spec overrides ``sizes``.  ``small``/``medium``/``large``
#: reproduce the historical ``workloads`` configurations bit-for-bit;
#: ``tiny`` is the CI smoke size, ``bench`` the benchmark suite's
#: middle ground, and ``full`` the no-argument default configuration.
DEFAULT_SIZES: Dict[str, SizeProfile] = {
    "tiny": SizeProfile(scale=0.10, ixp_member_scale=0.08,
                        vantage_point_fraction=0.10,
                        num_validation_lgs=12, num_traceroute_monitors=8,
                        window_days=2),
    "small": SizeProfile(scale=0.12, ixp_member_scale=0.10,
                         vantage_point_fraction=0.10,
                         num_validation_lgs=25, num_traceroute_monitors=12,
                         window_days=3),
    "bench": SizeProfile(scale=0.18, ixp_member_scale=0.16,
                         num_validation_lgs=40, num_traceroute_monitors=15),
    "medium": SizeProfile(scale=0.25, ixp_member_scale=0.22,
                          num_validation_lgs=50, num_traceroute_monitors=20),
    "large": SizeProfile(scale=0.45, ixp_member_scale=0.40,
                         num_validation_lgs=70, num_traceroute_monitors=30),
    "full": SizeProfile(scale=0.30, ixp_member_scale=0.30,
                        scenario_seed_offset=6),
}


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one scenario family."""

    #: Registry key (also the fingerprint salt of every stage).
    name: str
    description: str = ""
    #: IXP roster factory: ``member_scale -> [IXPSpec, ...]`` (roster,
    #: community-scheme styles, RS/LG availability).  ``None`` keeps the
    #: generator's Table 2 default roster.
    ixp_roster: Optional[Callable[[float], List[IXPSpec]]] = None
    #: Extra :class:`GeneratorConfig` keyword overrides (topology phase
    #: selection via ``phases``, participation rates, peering knobs...).
    generator: Mapping[str, Any] = field(default_factory=dict)
    #: Measurement-surface overrides: :class:`ScenarioConfig` keyword
    #: arguments (collector/LG/traceroute knobs).  These win over the
    #: size profile, since they define the family.
    surface: Mapping[str, Any] = field(default_factory=dict)
    #: The analysis suite (figure names of the analyses stage).
    analyses: Tuple[str, ...] = ("table2", "visibility", "degrees", "density")
    #: Stages of the pipeline (None -> the full stage library).
    stage_names: Optional[Tuple[str, ...]] = None
    #: Per-size configuration rows.
    sizes: Mapping[str, SizeProfile] = field(
        default_factory=lambda: dict(DEFAULT_SIZES))
    #: Multiplier on the profile's ``ixp_member_scale`` (growth sweeps).
    member_growth: float = 1.0
    #: Seed used when the caller does not supply one.
    base_seed: int = 20130501
    #: Size used when the caller does not supply one.
    default_size: str = "full"
    #: Propagation backend pin ("frontier"/"batched"/"reference"); None
    #: lets :class:`~repro.pipeline.run.ScenarioRun` default to the
    #: frontier engine.  The resolved backend is salted into the
    #: propagation stage's fingerprint.
    backend: Optional[str] = None
    #: Inference backend pin ("object"/"bitset"); None lets
    #: :class:`~repro.pipeline.run.ScenarioRun` default to the object
    #: engine.  The resolved backend is salted into the inference
    #: stage's fingerprint (upstream stages stay shared).
    inference_backend: Optional[str] = None
    #: Event timeline replayed by the ``timeline`` stage after the
    #: baseline propagation (:class:`~repro.scenarios.events.
    #: TimelineSpec`, resolved against :data:`~repro.scenarios.events.
    #: EVENT_FAMILIES`); ``None`` makes the stage a no-op.  Salted into
    #: the timeline stage's fingerprint (namespace ``timeline``).
    timeline: Optional[TimelineSpec] = None

    # -- derived artefacts ----------------------------------------------------

    def size_names(self) -> List[str]:
        """The sizes this scenario can be instantiated at."""
        return list(self.sizes)

    def config(self, size: Optional[str] = None,
               seed: Optional[int] = None) -> ScenarioConfig:
        """The :class:`ScenarioConfig` for *size* (spec defaults apply)."""
        size = size or self.default_size
        try:
            profile = self.sizes[size]
        except KeyError:
            raise ValueError(
                f"scenario {self.name!r} has no size {size!r} "
                f"(choose from {sorted(self.sizes)})") from None
        seed = self.base_seed if seed is None else seed

        member_scale = profile.ixp_member_scale * self.member_growth
        generator_kwargs: Dict[str, Any] = dict(
            seed=seed, scale=profile.scale, ixp_member_scale=member_scale)
        generator_kwargs.update(self.generator)
        if self.ixp_roster is not None:
            generator_kwargs.setdefault("ixps", self.ixp_roster(member_scale))

        config_kwargs: Dict[str, Any] = {}
        if profile.vantage_point_fraction is not None:
            config_kwargs["vantage_point_fraction"] = profile.vantage_point_fraction
        if profile.num_validation_lgs is not None:
            config_kwargs["num_validation_lgs"] = profile.num_validation_lgs
        if profile.num_traceroute_monitors is not None:
            config_kwargs["num_traceroute_monitors"] = profile.num_traceroute_monitors
        if profile.window_days is not None:
            config_kwargs["window"] = MeasurementWindow(num_days=profile.window_days)
        config_kwargs.update(self.surface)

        return ScenarioConfig(
            generator=GeneratorConfig(**generator_kwargs),
            seed=seed + profile.scenario_seed_offset,
            **config_kwargs)

    def stage_graph(self) -> StageGraph:
        """The stage graph assembled from this spec's declared stages."""
        return stage_graph_for(self.stage_names)

    def declared_stage_names(self) -> Tuple[str, ...]:
        """The declared stages (full library when not overridden)."""
        return self.stage_names if self.stage_names is not None \
            else default_stage_names()

    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """A derived spec with ``changes`` applied (``dataclasses.replace``)."""
        return replace(self, **changes)


class ScenarioRegistry:
    """Named scenario families, the lookup surface of the whole stack.

    Benchmarks, workloads, examples and the CI scenario matrix resolve
    scenarios exclusively through a registry, so a newly registered
    family automatically participates in all of them.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, ScenarioSpec] = {}

    def register(self, spec: ScenarioSpec,
                 replace_existing: bool = False) -> ScenarioSpec:
        """Register *spec* under its name (duplicate names are an error
        unless ``replace_existing``).  Returns the spec for chaining."""
        if spec.name in self._specs and not replace_existing:
            raise ValueError(f"scenario {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ScenarioSpec:
        """The spec registered under *name*."""
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r} "
                f"(registered: {sorted(self._specs)})") from None

    def names(self) -> List[str]:
        """All registered scenario names, sorted."""
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ScenarioSpec]:
        for name in self.names():
            yield self._specs[name]

    def __len__(self) -> int:
        return len(self._specs)


#: The process-wide registry (populated by ``repro.scenarios.families``).
REGISTRY = ScenarioRegistry()


def _ensure_builtins() -> None:
    # Importing the module registers the built-in families exactly once.
    import repro.scenarios.families  # noqa: F401


def register_scenario(spec: ScenarioSpec,
                      replace_existing: bool = False) -> ScenarioSpec:
    """Register *spec* in the global registry."""
    return REGISTRY.register(spec, replace_existing=replace_existing)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario family by name."""
    _ensure_builtins()
    return REGISTRY.get(name)


def scenario_names() -> List[str]:
    """Every registered scenario family, sorted by name."""
    _ensure_builtins()
    return REGISTRY.names()


def all_scenarios() -> List[ScenarioSpec]:
    """Every registered spec, sorted by name."""
    _ensure_builtins()
    return list(REGISTRY)
