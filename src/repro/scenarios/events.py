"""Event timelines: typed IXP state changes and delta-driven replay.

Real IXP state changes in small deltas — route-server sessions flap,
members edit their export policies, join or leave the RS, announce and
withdraw prefixes.  This module gives scenarios a typed event model for
those deltas plus the machinery to *replay* a timeline incrementally:

* the event types (:class:`SessionDown` .. :class:`PrefixChurn`) and
  :class:`TimelineSpec`, the declarative handle a
  :class:`~repro.scenarios.spec.ScenarioSpec` carries;
* :class:`ReplayState` — the single authoritative interpreter of events
  against a ``(graph, route servers)`` pair.  Both the delta path and
  the from-scratch rebuild used to validate it run events through this
  exact code, so the mutated state is identical by construction and
  bit-identity of the propagation reduces to the CSR index's
  deterministic construction;
* registered event *families* (``churn``, ``failover``, ``flap-storm``)
  that derive deterministic event sequences from a seed and the
  baseline state;
* :class:`TimelineReplay` — applies events one at a time, computes the
  affected origin set on the pre-event index and prior blocks
  (:func:`repro.runtime.delta.affected_update` — exact for removals and
  policy edits, cone-scoped for added links), re-runs only those
  origins and patches the prior result
  (:func:`repro.runtime.delta.patched_result`), reusing every other
  origin's columnar blocks byte-for-byte.

Layering: this module sits below :mod:`repro.scenarios.spec` (which
imports :class:`TimelineSpec` from here), so it must not import
``spec``/``base``; pipeline imports stay local to the functions using
them.
"""

from __future__ import annotations

import copy
import random
import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.bgp.prefix import Prefix
from repro.ixp.member import MODE_ALL_EXCEPT, MemberExportPolicy
from repro.ixp.route_server import RouteServer
from repro.runtime.context import PipelineContext
from repro.runtime.delta import (
    KIND_C2P,
    KIND_OTHER,
    KIND_PEER,
    LinkChange,
    affected_update,
    patched_result,
)
from repro.topology.as_graph import (ASGraph, ASLink, LinkType,
                                     link_adjacencies)


# ---------------------------------------------------------------------------
# event types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SessionDown:
    """A BGP session (AS link) goes down; the link is remembered so a
    later :class:`SessionUp` restores it with its exact annotations."""

    a: int
    b: int


@dataclass(frozen=True)
class SessionUp:
    """The flapped session between *a* and *b* comes back."""

    a: int
    b: int


@dataclass(frozen=True)
class PolicyEdit:
    """An RS member replaces its export policy (mode + listed set)."""

    ixp: str
    member: int
    mode: str = MODE_ALL_EXCEPT
    listed: Tuple[int, ...] = ()


@dataclass(frozen=True)
class MemberJoin:
    """An IXP member connects to the route server (announce-to-all)."""

    ixp: str
    member: int


@dataclass(frozen=True)
class MemberLeave:
    """An RS member tears down its route-server session."""

    ixp: str
    member: int


@dataclass(frozen=True)
class PrefixChurn:
    """An AS announces (or withdraws) one prefix."""

    asn: int
    prefix: str
    withdraw: bool = False


Event = Union[SessionDown, SessionUp, PolicyEdit, MemberJoin, MemberLeave,
              PrefixChurn]


@dataclass(frozen=True)
class TimelineSpec:
    """Declarative timeline handle carried by a scenario spec.

    *family* names a registered event family (:data:`EVENT_FAMILIES`);
    the concrete events are derived deterministically from the baseline
    state and *seed* at replay time, so the spec stays a pure literal
    (and fingerprints via ``repr`` like every other option namespace).
    """

    family: str
    length: int = 8
    seed: int = 0


@dataclass(frozen=True)
class EventEffect:
    """What one applied event touched — the inputs of the affected-set
    computation (:func:`repro.runtime.delta.affected_update`).

    *removed_links*/*added_links* are the exact :class:`ASLink` objects
    taken out of / put into the graph (a retagged multilateral link
    shows up as one removal plus one addition).  *tainted* holds ASNs
    whose attached route-server communities changed (policy edits).
    *dirty_origins* are origins whose spec (prefix list) changed without
    any topology change.
    """

    removed_links: Tuple[ASLink, ...] = ()
    added_links: Tuple[ASLink, ...] = ()
    tainted: FrozenSet[int] = frozenset()
    dirty_origins: FrozenSet[int] = frozenset()

    @property
    def links_changed(self) -> int:
        return len(self.removed_links) + len(self.added_links)

    @property
    def touches_index(self) -> bool:
        """True when the CSR index must be rebuilt (adjacency or edge
        community bags changed)."""
        return bool(self.removed_links or self.added_links or self.tainted)


# ---------------------------------------------------------------------------
# the event interpreter
# ---------------------------------------------------------------------------


class ReplayState:
    """Authoritative interpreter of events against mutable state.

    Owns the (scenario-private copies of the) graph and route servers
    plus the flap registry: sessions taken down by :class:`SessionDown`
    are remembered with their exact :class:`ASLink` annotations so
    :class:`SessionUp` restores them verbatim and multilateral-pair
    recomputation never resurrects a flapped-down session.
    """

    def __init__(self, graph: ASGraph,
                 route_servers: Dict[str, RouteServer]) -> None:
        self.graph = graph
        self.route_servers = route_servers
        #: sorted endpoint pair -> the removed link, while down.
        self.down_links: Dict[Tuple[int, int], ASLink] = {}

    def apply(self, event: Event) -> EventEffect:
        """Apply *event*; returns what it touched."""
        handler = _HANDLERS.get(type(event))
        if handler is None:
            raise TypeError(f"unknown event type {type(event).__name__}")
        return handler(self, event)

    # -- multilateral-pair maintenance ---------------------------------------

    def _serving_ixps(self, a: int, b: int) -> List[str]:
        """Route servers (in roster order) serving the pair both ways."""
        serving = []
        for name, route_server in self.route_servers.items():
            if not (route_server.is_member(a) and route_server.is_member(b)):
                continue
            if route_server.member_policy(a).allows(b) and \
                    route_server.member_policy(b).allows(a):
                serving.append(name)
        return serving

    def _recompute_pairs(
        self, member: int, others: Iterable[int],
    ) -> Tuple[List[ASLink], List[ASLink]]:
        """Re-derive the RS p2p links between *member* and *others*.

        Mirrors the generator's ``phase_mlp_links`` semantics: a
        reciprocal-allow pair served by at least one RS holds an
        ``RS_P2P`` link tagged with the first serving IXP; existing
        bilateral/hybrid links (P2P, C2P) are never touched, and
        flapped-down sessions are not resurrected.  Returns the
        ``(removed, added)`` link lists (a retag is one of each).
        """
        graph = self.graph
        removed: List[ASLink] = []
        added: List[ASLink] = []
        for other in sorted(set(others) - {member}):
            link = graph.get_link(member, other)
            if link is not None and link.link_type is not LinkType.RS_P2P:
                continue
            serving = self._serving_ixps(member, other)
            key = (min(member, other), max(member, other))
            if serving:
                if link is None:
                    if key in self.down_links:
                        continue
                    graph.add_p2p(member, other, ixp=serving[0],
                                  multilateral=True)
                    added.append(graph.get_link(member, other))
                elif link.ixp not in serving:
                    graph.remove_link(member, other)
                    removed.append(link)
                    graph.add_p2p(member, other, ixp=serving[0],
                                  multilateral=True)
                    added.append(graph.get_link(member, other))
            elif link is not None:
                graph.remove_link(member, other)
                removed.append(link)
        return removed, added


def _apply_session_down(state: ReplayState, event: SessionDown) -> EventEffect:
    link = state.graph.get_link(event.a, event.b)
    if link is None:
        return EventEffect()
    state.graph.remove_link(event.a, event.b)
    state.down_links[link.endpoints] = link
    return EventEffect(removed_links=(link,))


def _apply_session_up(state: ReplayState, event: SessionUp) -> EventEffect:
    key = (min(event.a, event.b), max(event.a, event.b))
    link = state.down_links.pop(key, None)
    if link is None or state.graph.get_link(event.a, event.b) is not None:
        return EventEffect()
    state.graph.add_link(link)
    return EventEffect(added_links=(link,))


def _apply_policy_edit(state: ReplayState, event: PolicyEdit) -> EventEffect:
    route_server = state.route_servers[event.ixp]
    if not route_server.is_member(event.member):
        return EventEffect()
    policy = MemberExportPolicy(
        member_asn=event.member, ixp_name=event.ixp,
        mode=event.mode, listed=frozenset(event.listed))
    # Re-registering replaces the policy; keep the member's LAN IP so
    # the looking-glass address mapping survives the edit.  The RIB
    # entries are re-announced so their communities re-derive from the
    # *new* policy (that is what propagation and inference observe).
    entries = route_server.routes_from_member(event.member)
    route_server.add_member(event.member, policy,
                            ip_address=route_server.member_ip(event.member))
    for entry in entries:
        route_server.announce(event.member, entry.prefix, entry.as_path)
    removed, added = state._recompute_pairs(event.member,
                                            route_server.member_set())
    # The member's RS communities changed: routes crossing its RS edges
    # re-derive their bags even where the link set is unchanged.
    return EventEffect(removed_links=tuple(removed),
                       added_links=tuple(added),
                       tainted=frozenset({event.member}))


def _apply_member_join(state: ReplayState, event: MemberJoin) -> EventEffect:
    route_server = state.route_servers[event.ixp]
    if route_server.is_member(event.member):
        return EventEffect()
    node = state.graph.get_as(event.member)
    route_server.add_member(event.member)
    node.ixps.add(event.ixp)
    node.rs_memberships.add(event.ixp)
    for prefix in node.prefixes:
        route_server.announce(event.member, prefix, (event.member,))
    removed, added = state._recompute_pairs(event.member,
                                            route_server.member_set())
    return EventEffect(removed_links=tuple(removed),
                       added_links=tuple(added))


def _apply_member_leave(state: ReplayState, event: MemberLeave) -> EventEffect:
    route_server = state.route_servers[event.ixp]
    if not route_server.is_member(event.member):
        return EventEffect()
    others = route_server.member_set() - {event.member}
    route_server.remove_member(event.member)
    state.graph.get_as(event.member).rs_memberships.discard(event.ixp)
    removed, added = state._recompute_pairs(event.member, others)
    return EventEffect(removed_links=tuple(removed),
                       added_links=tuple(added))


def _apply_prefix_churn(state: ReplayState, event: PrefixChurn) -> EventEffect:
    node = state.graph.get_as(event.asn)
    prefix = Prefix.parse(event.prefix)
    if event.withdraw:
        if prefix not in node.prefixes:
            return EventEffect()
        node.prefixes.remove(prefix)
        for ixp_name in sorted(node.rs_memberships):
            route_server = state.route_servers.get(ixp_name)
            if route_server is not None:
                route_server.withdraw(event.asn, prefix)
    else:
        if prefix in node.prefixes:
            return EventEffect()
        node.prefixes.append(prefix)
        for ixp_name in sorted(node.rs_memberships):
            route_server = state.route_servers.get(ixp_name)
            if route_server is not None:
                route_server.announce(event.asn, prefix, (event.asn,))
    # No topology change: the index is untouched, only this origin's
    # spec (prefix list) differs.
    return EventEffect(dirty_origins=frozenset({event.asn}))


_HANDLERS: Dict[type, Callable[[ReplayState, Event], EventEffect]] = {
    SessionDown: _apply_session_down,
    SessionUp: _apply_session_up,
    PolicyEdit: _apply_policy_edit,
    MemberJoin: _apply_member_join,
    MemberLeave: _apply_member_leave,
    PrefixChurn: _apply_prefix_churn,
}


# ---------------------------------------------------------------------------
# event families
# ---------------------------------------------------------------------------

#: family name -> builder(rng, graph, route_servers, length) -> events.
EVENT_FAMILIES: Dict[str, Callable] = {}


def register_event_family(name: str) -> Callable:
    """Decorator registering an event-family builder under *name*."""
    def decorator(builder: Callable) -> Callable:
        if name in EVENT_FAMILIES:
            raise ValueError(f"event family {name!r} is already registered")
        EVENT_FAMILIES[name] = builder
        return builder
    return decorator


def event_family_names() -> List[str]:
    """All registered event families, sorted."""
    return sorted(EVENT_FAMILIES)


def build_timeline(spec: TimelineSpec, graph: ASGraph,
                   route_servers: Dict[str, RouteServer]) -> List[Event]:
    """Derive the concrete event sequence of *spec* from baseline state.

    Deterministic: the builder draws only from ``Random(spec.seed)`` and
    the (insertion-ordered, sorted where sampled) baseline state.
    """
    try:
        builder = EVENT_FAMILIES[spec.family]
    except KeyError:
        raise ValueError(
            f"unknown event family {spec.family!r} "
            f"(registered: {event_family_names()})") from None
    rng = random.Random(spec.seed)
    return list(builder(rng, graph, route_servers, spec.length))


@register_event_family("failover")
def _build_failover(rng: random.Random, graph: ASGraph,
                    route_servers: Dict[str, RouteServer],
                    length: int) -> List[Event]:
    """Provider-link failover: a multihomed AS loses one upstream, then
    the session is restored — the paper's stuck-routes setting.
    Edge sites (multihomed ASes with no customers of their own) are
    preferred victims: that is where real failovers concentrate, and
    their small cones keep the affected frontier tight."""
    multihomed = [asn for asn in graph.asns() if len(graph.providers(asn)) >= 2]
    edge_sites = [asn for asn in multihomed if not graph.customers(asn)]
    victims = edge_sites or multihomed
    events: List[Event] = []
    pending: Optional[Tuple[int, int]] = None
    while len(events) < length:
        if pending is not None:
            events.append(SessionUp(*pending))
            pending = None
            continue
        if not victims:
            break
        victim = rng.choice(victims)
        provider = rng.choice(sorted(graph.providers(victim)))
        events.append(SessionDown(victim, provider))
        pending = (victim, provider)
    return events


@register_event_family("flap-storm")
def _build_flap_storm(rng: random.Random, graph: ASGraph,
                      route_servers: Dict[str, RouteServer],
                      length: int) -> List[Event]:
    """A handful of sessions flapping repeatedly (down, up, down, ...)."""
    candidates = graph.links(LinkType.P2P) or graph.links(LinkType.C2P)
    ordered = sorted(candidates, key=lambda link: link.endpoints)
    flappers = [ordered[rng.randrange(len(ordered))]
                for _ in range(min(3, len(ordered)))] if ordered else []
    # Deduplicate while preserving draw order.
    seen: Set[Tuple[int, int]] = set()
    flappers = [link for link in flappers
                if not (link.endpoints in seen or seen.add(link.endpoints))]
    events: List[Event] = []
    down: Set[Tuple[int, int]] = set()
    for step in range(length if flappers else 0):
        link = flappers[step % len(flappers)]
        if link.endpoints in down:
            events.append(SessionUp(link.a, link.b))
            down.discard(link.endpoints)
        else:
            events.append(SessionDown(link.a, link.b))
            down.add(link.endpoints)
    return events


@register_event_family("churn")
def _build_churn(rng: random.Random, graph: ASGraph,
                 route_servers: Dict[str, RouteServer],
                 length: int) -> List[Event]:
    """Mixed RS churn: policy edits, leaves, joins and prefix churn."""
    roster = [name for name in route_servers
              if route_servers[name].num_members() >= 2]
    if not roster:
        return []
    # Builder-local membership mirrors so successive draws stay valid
    # (a left member is not edited, a joined member not re-joined).
    members: Dict[str, List[int]] = {
        name: route_servers[name].members() for name in roster}
    joinable: Dict[str, List[int]] = {
        name: sorted(set(graph.members_of_ixp(name)) - set(members[name]))
        for name in roster}
    events: List[Event] = []
    added_prefixes = 0
    for step in range(length):
        ixp = roster[step % len(roster)]
        kind = step % 4
        if kind == 0:  # policy edit: exclude a couple of peers
            member = rng.choice(members[ixp])
            others = [m for m in members[ixp] if m != member]
            excluded = rng.sample(others, min(2, len(others)))
            events.append(PolicyEdit(ixp=ixp, member=member,
                                     mode=MODE_ALL_EXCEPT,
                                     listed=tuple(sorted(excluded))))
        elif kind == 1:  # prefix churn: a member announces a fresh /24
            member = rng.choice(members[ixp])
            events.append(PrefixChurn(
                asn=member, prefix=f"198.18.{added_prefixes % 256}.0/24"))
            added_prefixes += 1
        elif kind == 2 and len(members[ixp]) > 2:  # leave
            member = rng.choice(members[ixp])
            members[ixp] = [m for m in members[ixp] if m != member]
            joinable[ixp] = sorted(set(joinable[ixp]) | {member})
            events.append(MemberLeave(ixp=ixp, member=member))
        elif kind == 3 and joinable[ixp]:  # join
            member = rng.choice(joinable[ixp])
            joinable[ixp] = [m for m in joinable[ixp] if m != member]
            members[ixp] = sorted(set(members[ixp]) | {member})
            events.append(MemberJoin(ixp=ixp, member=member))
        else:  # fallback when leave/join has no candidate
            member = rng.choice(members[ixp])
            events.append(PolicyEdit(ixp=ixp, member=member,
                                     mode=MODE_ALL_EXCEPT, listed=()))
    return events


# ---------------------------------------------------------------------------
# replay: delta-apply with full-rebuild parity helpers
# ---------------------------------------------------------------------------


def record_sets(
    propagation_artifact: Dict[str, object],
) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """The (record_at, record_alternatives_at) observer sets the
    propagation stage recorded with, recovered from its artifact."""
    record_at = {vp.asn for vp in propagation_artifact["vantage_points"]}
    record_at.update(propagation_artifact["monitors"])
    record_at.update(propagation_artifact["validation_hosts"])
    for hosts in propagation_artifact["lg_hosts"].values():
        record_at.update(hosts)
    return (frozenset(record_at),
            frozenset(propagation_artifact["validation_hosts"]))


def rs_community_provider(
    route_servers: Dict[str, RouteServer],
) -> Callable:
    """The per-(ASN, IXP) RS-community closure propagation indexes with
    (identical to the propagation stage's).

    Memoised per policy *object*: policies are replaced, never mutated
    in place (:func:`_apply_policy_edit` and ``add_member`` both install
    fresh objects), so an identity hit is exact while an edited or
    re-joined member re-encodes automatically.  One provider held across
    a timeline replay turns the per-event index rebuild's dominant cost
    — re-encoding every member's export policy — into dictionary hits.
    """
    cache: Dict[Tuple[int, str], Tuple[object, FrozenSet]] = {}

    def rs_communities(asn: int, ixp_name: str):
        route_server = route_servers.get(ixp_name)
        if route_server is None or not route_server.is_member(asn):
            return frozenset()
        policy = route_server.member_policy(asn)
        hit = cache.get((asn, ixp_name))
        if hit is not None and hit[0] is policy:
            return hit[1]
        value = policy.communities_for(route_server.scheme, None,
                                       route_server.mapper)
        cache[(asn, ixp_name)] = (policy, value)
        return value
    return rs_communities


def mutation_epoch_provider(
    graph: ASGraph, route_servers: Dict[str, RouteServer],
) -> Callable:
    """An epoch provider over the graph + route-server mutation counters
    (bound into route-cache keys via ``PipelineContext.bind_epoch``)."""
    servers = tuple(route_servers[name] for name in sorted(route_servers))
    return lambda: (graph.version,
                    tuple(server.version for server in servers))


def build_context(graph: ASGraph, route_servers: Dict[str, RouteServer],
                  backend: Optional[str] = None,
                  rs_provider: Optional[Callable] = None) -> PipelineContext:
    """A propagation context over the current graph/RS state, with the
    mutation epoch bound (exactly what the propagation stage builds).

    *rs_provider* lets a replay reuse one memoised community provider
    across events instead of re-encoding every policy per rebuild."""
    from repro.bgp.propagation import DEFAULT_BACKEND
    if rs_provider is None:
        rs_provider = rs_community_provider(route_servers)
    context = PipelineContext.from_graph(
        graph, rs_community_provider=rs_provider,
        backend=backend if backend is not None else DEFAULT_BACKEND)
    context.bind_epoch(mutation_epoch_provider(graph, route_servers))
    return context


def origin_specs_of(graph: ASGraph) -> List:
    """The propagation origin list of the current graph state (the
    propagation stage's exact construction and order)."""
    from repro.bgp.propagation import OriginSpec
    return [OriginSpec(asn=node.asn, prefixes=list(node.prefixes))
            for node in graph.nodes() if node.prefixes]


def rebuild_propagation(
    graph: ASGraph,
    route_servers: Dict[str, RouteServer],
    record_at: Optional[FrozenSet[int]],
    record_alternatives_at: FrozenSet[int],
    backend: Optional[str] = None,
    workers: Optional[int] = None,
):
    """Full from-scratch propagation of the current state (the delta
    path's ground truth).  Returns ``(context, result)``."""
    from repro.pipeline.shard import sharded_propagate
    context = build_context(graph, route_servers, backend=backend)
    origins = origin_specs_of(graph)
    result = sharded_propagate(context, origins, record_at,
                               record_alternatives_at, workers)
    return context, result


def _link_change(link: ASLink) -> LinkChange:
    """The :func:`~repro.runtime.delta.affected_update` change tuple of
    an added link (C2P with the customer first, per the ASLink
    convention)."""
    if link.link_type is LinkType.C2P:
        return (KIND_C2P, link.a, link.b)
    if link.link_type in (LinkType.P2P, LinkType.RS_P2P):
        return (KIND_PEER, link.a, link.b)
    return (KIND_OTHER, link.a, link.b)


@dataclass(frozen=True)
class EventReport:
    """Per-event replay accounting."""

    index: int
    event: Event
    affected: int        #: origins in the affected frontier (incl. dirty)
    total: int           #: origins in the patched result
    recomputed: int      #: origins re-run through the kernels
    reused: int          #: origins whose blocks were reused byte-for-byte
    links_changed: int
    seconds: float       #: wall time of the delta apply (incl. reindex)

    @property
    def affected_fraction(self) -> float:
        return self.affected / self.total if self.total else 0.0


@dataclass
class TimelineReport:
    """The outcome of replaying one timeline."""

    events: List[Event]
    reports: List[EventReport]
    result: object  #: the final PropagationResult

    def rows(self) -> List[Dict[str, object]]:
        """Printable per-event rows (survey / bench output)."""
        return [{
            "event": type(report.event).__name__,
            "affected": report.affected,
            "recomputed": report.recomputed,
            "reused": report.reused,
            "affected_fraction": round(report.affected_fraction, 4),
            "links_changed": report.links_changed,
            "seconds": report.seconds,
        } for report in self.reports]


class TimelineReplay:
    """Incremental replay of an event timeline over a baseline result.

    Owns deepcopies of the baseline graph and route servers (one
    ``deepcopy`` of the pair, preserving their cross-references), so
    cached pipeline artifacts are never mutated.  Each
    :meth:`apply` computes the affected frontier on the *pre-event*
    index, rebuilds the index only when the event changed topology or
    policy, and patches the previous result through
    :func:`repro.runtime.delta.patched_result`.
    """

    def __init__(
        self,
        graph: ASGraph,
        route_servers: Dict[str, RouteServer],
        baseline,
        record_at: Optional[Iterable[int]],
        record_alternatives_at: Iterable[int],
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        context: Optional[PipelineContext] = None,
    ) -> None:
        self.graph, self.route_servers = copy.deepcopy(
            (graph, route_servers))
        self.state = ReplayState(self.graph, self.route_servers)
        self.record_at = frozenset(record_at) \
            if record_at is not None else None
        self.record_alternatives_at = frozenset(record_alternatives_at or ())
        self.workers = workers
        #: memoised RS-community closure, shared across every index
        #: (re)build of this replay.
        self._rs_provider = rs_community_provider(self.route_servers)
        if context is None:
            context = build_context(self.graph, self.route_servers,
                                    backend=backend,
                                    rs_provider=self._rs_provider)
        self.backend = backend if backend is not None else context.backend
        #: context over the *current* replay state; its index doubles as
        #: the next event's pre-event index.
        self.context = context
        self.result = baseline
        self.reports: List[EventReport] = []

    def apply(self, event: Event) -> EventReport:
        """Apply one event and patch the result; returns its report."""
        started = time.perf_counter()
        pre_index = self.context.index
        prior = self.result
        effect = self.state.apply(event)
        if effect.touches_index:
            # Topology/policy changed: splice the link delta (and any
            # tainted members' re-derived edge bags) into the CSR —
            # bit-identical to a rebuild by construction.  Fall back to
            # a from-scratch rebuild when the event changed the
            # adjacency node set (interned ids would shift).
            index = self._spliced_index(pre_index, effect)
            if index is not None:
                self.context = self._context_over(index)
            else:
                self.context = build_context(self.graph,
                                             self.route_servers,
                                             backend=self.backend,
                                             rs_provider=self._rs_provider)
        origins = origin_specs_of(self.graph)
        records = None if self.record_at is None else \
            self.record_at | self.record_alternatives_at
        affected = affected_update(
            prior, pre_index, [spec.asn for spec in origins], records,
            removed=[(link.a, link.b) for link in effect.removed_links],
            added=[_link_change(link) for link in effect.added_links],
            tainted=effect.tainted)
        stale = set(affected) | set(effect.dirty_origins)
        result, stats = patched_result(prior, origins, stale,
                                       self._fragments_fn)
        seconds = time.perf_counter() - started
        self.result = result
        report = EventReport(
            index=len(self.reports), event=event,
            affected=len(stale), total=stats.total,
            recomputed=stats.recomputed, reused=stats.reused,
            links_changed=effect.links_changed, seconds=seconds)
        self.reports.append(report)
        return report

    def replay(self, events: Sequence[Event]) -> TimelineReport:
        """Apply every event in order; returns the full report."""
        events = list(events)
        for event in events:
            self.apply(event)
        return TimelineReport(events=events, reports=list(self.reports),
                              result=self.result)

    # -- internals -----------------------------------------------------------

    def _spliced_index(self, index, effect: EventEffect):
        """The pre-event *index* with the effect's link delta spliced in
        (:meth:`~repro.runtime.csr.CSRIndex.spliced`), or ``None`` when
        the event changed the adjacency node set — an endpoint gaining
        its first or losing its last link shifts interned node ids, so
        only a from-scratch rebuild reproduces a fresh build exactly."""
        for link in effect.removed_links:
            if not self.graph.degree(link.a) or not self.graph.degree(link.b):
                return None
        retag_links = []
        for member in sorted(effect.tainted):
            for other in sorted(self.graph.neighbours(member)):
                link = self.graph.get_link(member, other)
                if link is not None and link.link_type is LinkType.RS_P2P:
                    retag_links.append(link)
        try:
            removed = [adj for link in effect.removed_links
                       for adj in link_adjacencies(link)]
            added = [adj for link in effect.added_links
                     for adj in link_adjacencies(link, self._rs_provider)]
            retagged = [adj for link in retag_links
                        if link not in effect.added_links
                        for adj in link_adjacencies(link, self._rs_provider)]
            return index.spliced(removed, added, retagged)
        except KeyError:
            return None  # un-interned endpoint: node joined the edge set

    def _context_over(self, index) -> PipelineContext:
        """A context over a spliced index, epoch-bound like
        :func:`build_context`."""
        context = PipelineContext(index, backend=self.backend)
        context.bind_epoch(mutation_epoch_provider(self.graph,
                                                   self.route_servers))
        return context

    def _fragments_fn(self, specs):
        if specs and len(specs) > 1 and self.workers is not None:
            from repro.pipeline.shard import resolve_workers, sharded_fragments
            if resolve_workers(self.workers) > 1:
                return sharded_fragments(
                    self.context, specs, self.record_at,
                    self.record_alternatives_at, self.workers)
        engine = self.context.engine(
            record_at=self.record_at,
            record_alternatives_at=self.record_alternatives_at)
        return engine.batch_fragments(specs)
