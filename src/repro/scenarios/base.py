"""Scenario-generic measurement-environment assembly.

This module holds everything that is common to *every* scenario family:
the :class:`ScenarioConfig` knob set, the assembled :class:`Scenario`
environment, the stage bodies that build it (topology, IXPs,
propagation, collectors, viewpoints, registries) and the
:data:`STAGE_LIBRARY` of declarative :class:`~repro.pipeline.stage.Stage`
descriptions a :class:`~repro.scenarios.spec.ScenarioSpec` assembles its
stage graph from.

Nothing here is europe2013-specific: the scenario's identity (IXP
roster, community-scheme assignment, topology phases, measurement
surface) lives entirely in the :class:`ScenarioConfig` a spec produces,
so one set of stage bodies serves every registered scenario family.

Assembly is split into stages executed by
:class:`~repro.pipeline.run.ScenarioRun`.  Each stage is a pure
function of the config and its upstream artifacts, so artifacts are
cacheable by fingerprint; the shared random stream of the original
monolithic builder is preserved bit-for-bit by threading the
``random.Random`` state through the artifacts (a stage restores the
upstream state, draws, and publishes the resulting state).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.bgp.asn import Private16BitMapper
from repro.bgp.communities import Community
from repro.bgp.prefix import Prefix
from repro.bgp.policy import Relationship
from repro.bgp.propagation import OriginSpec, PropagationResult
from repro.collectors.archive import CollectorArchive, MeasurementWindow
from repro.collectors.route_collector import RouteCollector
from repro.collectors.vantage_point import FeedType, VantagePoint
from repro.core.connectivity import ConnectivityDiscovery, ConnectivityReport
from repro.core.engine import MLPInferenceEngine, MLPInferenceResult
from repro.ixp.community_schemes import CommunityScheme, SchemeRegistry
from repro.ixp.ixp import IXP
from repro.ixp.looking_glass import ASLookingGlass, LGRoute, RouteServerLookingGlass
from repro.ixp.member import MemberExportPolicy
from repro.ixp.route_server import RouteServer
from repro.measurement.geolocation import GeolocationDB
from repro.measurement.traceroute import TracerouteCampaign, TracerouteConfig
from repro.pipeline.stage import Stage, StageGraph
from repro.registries.irr import ASSet, AutNumPolicy, IRRDatabase
from repro.registries.peeringdb import PeeringDB, PeeringDBRecord
from repro.runtime.context import PipelineContext
from repro.topology.as_graph import ASGraph, ASType, PeeringPolicy
from repro.topology.customer_cone import customer_cone
from repro.topology.generator import (
    GeneratedInternet,
    GeneratorConfig,
    InternetGenerator,
    IXPSpec,
    MODE_ALL_EXCEPT,
)


@dataclass
class ScenarioConfig:
    """Knobs of the full scenario on top of the generator configuration."""

    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    seed: int = 20130507

    #: Fraction of ASes feeding a route collector.
    vantage_point_fraction: float = 0.08
    #: Fraction of vantage points providing a full (non-peer-like) feed.
    full_feed_fraction: float = 0.33
    #: Number of validation looking glasses registered in PeeringDB.
    num_validation_lgs: int = 70
    #: Fraction of validation LGs that display all paths (vs best only).
    all_paths_lg_fraction: float = 0.6
    #: Number of third-party member LGs per IXP without a route-server LG.
    third_party_lgs_per_ixp: int = 2
    #: Number of traceroute monitor ASes.
    num_traceroute_monitors: int = 25
    #: Fraction of transient (single-day) entries injected in the archive.
    transient_fraction: float = 0.01
    #: Fraction of a member's customer-cone prefixes announced to the RS.
    cone_prefix_fraction: float = 0.4
    #: Fraction of (consistent) members given a deviating per-prefix policy.
    inconsistent_member_fraction: float = 0.004
    #: Measurement window (1-7 May 2013 equivalent).
    window: MeasurementWindow = field(default_factory=MeasurementWindow)


@dataclass
class Scenario:
    """The assembled measurement environment."""

    config: ScenarioConfig
    internet: GeneratedInternet
    graph: ASGraph
    schemes: SchemeRegistry
    ixps: Dict[str, IXP]
    route_servers: Dict[str, RouteServer]
    rs_looking_glasses: Dict[str, RouteServerLookingGlass]
    third_party_lgs: Dict[str, List[ASLookingGlass]]
    collectors: List[RouteCollector]
    archive: CollectorArchive
    propagation: PropagationResult
    irr: IRRDatabase
    peeringdb: PeeringDB
    geolocation: GeolocationDB
    validation_lgs: List[ASLookingGlass]
    traceroute: TracerouteCampaign
    vantage_points: List[VantagePoint]
    #: Shared runtime context (interners, CSR index, memoised routes);
    #: threaded through propagation and the inference engine.
    context: Optional[PipelineContext] = None
    #: Propagation backend the scenario was built with ("frontier",
    #: "batched" or "reference"); recorded for provenance and threaded
    #: into the inference engine.
    backend: str = "frontier"

    # -- ground truth -----------------------------------------------------------------

    def ground_truth_links(self) -> Set[Tuple[int, int]]:
        """All ground-truth MLP pairs across the IXPs."""
        return self.internet.all_mlp_links()

    def ground_truth_links_by_ixp(self) -> Dict[str, Set[Tuple[int, int]]]:
        """Per-IXP ground-truth MLP pairs."""
        return {name: set(pairs)
                for name, pairs in self.internet.mlp_ground_truth.items()}

    def rs_members_by_ixp(self) -> Dict[str, List[int]]:
        """Ground-truth RS membership per IXP."""
        return {spec.name: self.graph.rs_members_of_ixp(spec.name)
                for spec in self.internet.ixp_specs}

    def rs_asns(self) -> Dict[str, int]:
        """Route-server ASN per IXP."""
        return {spec.name: spec.rs_asn for spec in self.internet.ixp_specs}

    def mappers(self) -> Dict[str, Private16BitMapper]:
        """Private-ASN mappers per IXP (documented by the IXP operators)."""
        return {name: rs.mapper for name, rs in self.route_servers.items()}

    def relationship_map(self) -> Dict[Tuple[int, int], Relationship]:
        """Ground-truth ordered-pair relationship map."""
        return self.graph.relationship_map()

    # -- public views -----------------------------------------------------------------

    def public_bgp_links(self) -> Set[Tuple[int, int]]:
        """AS links visible in the archived collector data."""
        return self.archive.visible_as_links()

    def traceroute_links(self) -> Set[Tuple[int, int]]:
        """AS links derived from the traceroute campaign."""
        return self.traceroute.derive_links(self.propagation)

    # -- inference plumbing --------------------------------------------------------------

    def discover_connectivity(self) -> Dict[str, ConnectivityReport]:
        """Run connectivity discovery over every IXP."""
        as_set_names = {spec.name: _as_set_name(spec.name)
                        for spec in self.internet.ixp_specs
                        if spec.publishes_member_list}
        discovery = ConnectivityDiscovery(irr=self.irr, as_set_names=as_set_names)
        return discovery.discover_all(
            self.ixps.values(),
            rs_lgs=self.rs_looking_glasses,
            rs_asns=self.rs_asns(),
        )

    def make_engine(
        self,
        connectivity: Optional[Dict[str, ConnectivityReport]] = None,
        use_ground_truth_relationships: bool = True,
        inference_backend: Optional[str] = None,
    ) -> MLPInferenceEngine:
        """Build the inference engine from discovered (or supplied) data.

        *inference_backend* selects the inference data plane ("object"
        or "bitset"); ``None`` defers to the runtime context's default.
        """
        if connectivity is None:
            connectivity = self.discover_connectivity()
        rs_members = {name: set(report.members)
                      for name, report in connectivity.items()}
        relationships = self.relationship_map() \
            if use_ground_truth_relationships else {}
        return MLPInferenceEngine(
            registry=self.schemes,
            rs_members=rs_members,
            mappers=self.mappers(),
            relationships=relationships,
            context=self.context,
            backend=self.backend,
            inference_backend=inference_backend,
        )

    def run_inference(
        self,
        use_passive: bool = True,
        use_active: bool = True,
        require_reciprocity: bool = True,
        workers: Optional[int] = None,
        inference_backend: Optional[str] = None,
    ) -> MLPInferenceResult:
        """Run the end-to-end inference pipeline of section 4.

        ``workers > 1`` shards the per-IXP passive/active inference
        across a process pool (identical results, deterministic order).
        ``inference_backend`` selects the data plane ("object" or
        "bitset", bit-identical outputs).
        """
        engine = self.make_engine(inference_backend=inference_backend)
        passive_entries = self.archive.clean_stable_entries() if use_passive else None
        rs_lgs = self.rs_looking_glasses if use_active else {}
        third_party = self.third_party_lgs if use_active else {}
        return engine.run(
            passive_entries=passive_entries,
            rs_looking_glasses=rs_lgs,
            third_party_lgs=third_party,
            require_reciprocity=require_reciprocity,
            workers=workers,
        )

    def reachability_matrix(self, result: MLPInferenceResult):
        """The shared per-IXP reachability plane of *result* (cached on
        the runtime context when one is attached)."""
        from repro.runtime.reachmatrix import ReachabilityMatrix
        if self.context is not None:
            return self.context.reachability_matrix(result)
        return ReachabilityMatrix.from_result(result)

    # -- misc helpers ---------------------------------------------------------------------

    def origin_prefixes(self) -> Dict[int, List[Prefix]]:
        """Prefixes originated by every AS."""
        return {node.asn: list(node.prefixes) for node in self.graph.nodes()}

    def ixp_summary(self) -> List[Dict[str, object]]:
        """Per-IXP summary (members, RS members, LG availability)."""
        return [self.ixps[spec.name].summary() for spec in self.internet.ixp_specs]


def _as_set_name(ixp_name: str) -> str:
    cleaned = ixp_name.upper().replace(".", "-").replace(" ", "-")
    return f"AS-{cleaned}-RS"


# ---------------------------------------------------------------------------
# stage bodies: pure functions of the config and upstream artifacts
# ---------------------------------------------------------------------------


def stage_topology(config: ScenarioConfig) -> GeneratedInternet:
    """Generate the synthetic Internet (graph, IXP specs, ground truth)."""
    return InternetGenerator(config.generator).generate()


def stage_ixps(config: ScenarioConfig, internet: GeneratedInternet) -> Dict[str, object]:
    """Build IXPs/route servers and announce member routes to the RSes."""
    rng = random.Random(config.seed)
    schemes = _build_schemes(internet.ixp_specs)
    ixps, route_servers = _build_ixps(internet, schemes, config)
    _announce_routes(internet, route_servers, rng, config)
    return {
        "schemes": schemes,
        "ixps": ixps,
        "route_servers": route_servers,
        "rng_state": rng.getstate(),
    }


def stage_propagation(
    config: ScenarioConfig,
    internet: GeneratedInternet,
    ixps_artifact: Dict[str, object],
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """Pick observation points and run valley-free propagation.

    The per-origin runs are embarrassingly parallel; with ``workers >
    1`` they are sharded as origin batches across a process pool (worker
    contexts rebuilt from a :mod:`repro.runtime.snapshot`), with results
    bit-identical to the single-process path.  *backend* selects the
    propagation data plane (frontier BFS per origin, vectorized batched
    sweeps, or the object-graph reference oracle); all backends build
    equivalent artifacts but are fingerprinted separately.
    """
    graph = internet.graph
    route_servers: Dict[str, RouteServer] = ixps_artifact["route_servers"]
    rng = random.Random()
    rng.setstate(ixps_artifact["rng_state"])

    vantage_points = _pick_vantage_points(internet, rng, config)
    vantage_asns = [vp.asn for vp in vantage_points]
    lg_hosts = _pick_third_party_lg_hosts(internet, rng, config)
    monitors = _pick_traceroute_monitors(internet, rng, config)
    validation_hosts = _pick_validation_hosts(internet, rng, config)

    record_at = set(vantage_asns) | set(monitors) | set(validation_hosts)
    for hosts in lg_hosts.values():
        record_at.update(hosts)

    def rs_communities(asn: int, ixp_name: str) -> FrozenSet[Community]:
        route_server = route_servers.get(ixp_name)
        if route_server is None or not route_server.is_member(asn):
            return frozenset()
        policy = route_server.member_policy(asn)
        return policy.communities_for(route_server.scheme, None, route_server.mapper)

    from repro.bgp.propagation import DEFAULT_BACKEND
    context = PipelineContext.from_graph(
        graph, rs_community_provider=rs_communities,
        backend=backend if backend is not None else DEFAULT_BACKEND)
    # Salt the graph/route-server mutation counters into the context's
    # route-cache keys: a lookup after any policy, membership or
    # topology mutation can never return a pre-mutation block.
    from repro.scenarios.events import mutation_epoch_provider
    context.bind_epoch(mutation_epoch_provider(graph, route_servers))
    origins = [OriginSpec(asn=node.asn, prefixes=list(node.prefixes))
               for node in graph.nodes() if node.prefixes]

    from repro.pipeline.shard import sharded_propagate
    propagation = sharded_propagate(
        context, origins, record_at, set(validation_hosts), workers)

    return {
        "context": context,
        "backend": context.backend,
        "propagation": propagation,
        "vantage_points": vantage_points,
        "lg_hosts": lg_hosts,
        "monitors": monitors,
        "validation_hosts": validation_hosts,
        "rng_state": rng.getstate(),
    }


def stage_collectors(
    config: ScenarioConfig, propagation_artifact: Dict[str, object]
) -> Dict[str, object]:
    """Archive collector table dumps over the measurement window."""
    collectors, archive = _build_collectors(
        propagation_artifact["vantage_points"],
        propagation_artifact["propagation"],
        config)
    return {"collectors": collectors, "archive": archive}


def stage_viewpoints(
    config: ScenarioConfig,
    internet: GeneratedInternet,
    ixps_artifact: Dict[str, object],
    propagation_artifact: Dict[str, object],
) -> Dict[str, object]:
    """Build looking glasses (RS, third-party, validation) and PeeringDB."""
    route_servers: Dict[str, RouteServer] = ixps_artifact["route_servers"]
    rng = random.Random()
    rng.setstate(propagation_artifact["rng_state"])
    rs_lgs = _build_rs_lgs(internet, route_servers)
    third_party_lgs = _build_third_party_lgs(
        internet, route_servers, propagation_artifact["lg_hosts"])
    validation_lgs, peeringdb = _build_validation_lgs_and_peeringdb(
        internet, propagation_artifact["propagation"], route_servers,
        propagation_artifact["validation_hosts"], rng, config)
    return {
        "rs_looking_glasses": rs_lgs,
        "third_party_lgs": third_party_lgs,
        "validation_lgs": validation_lgs,
        "peeringdb": peeringdb,
        "rng_state": rng.getstate(),
    }


def stage_registries(
    config: ScenarioConfig,
    internet: GeneratedInternet,
    viewpoints_artifact: Dict[str, object],
) -> Dict[str, object]:
    """Build the IRR database and the geolocation substrate."""
    rng = random.Random()
    rng.setstate(viewpoints_artifact["rng_state"])
    irr = _build_irr(internet, rng)
    geolocation = _build_geolocation(internet.graph)
    return {"irr": irr, "geolocation": geolocation}


def stage_scenario(
    config: ScenarioConfig,
    internet: GeneratedInternet,
    ixps_artifact: Dict[str, object],
    propagation_artifact: Dict[str, object],
    collectors_artifact: Dict[str, object],
    viewpoints_artifact: Dict[str, object],
    registries_artifact: Dict[str, object],
) -> Scenario:
    """Assemble the :class:`Scenario` from the stage artifacts."""
    traceroute = TracerouteCampaign(
        internet.graph,
        TracerouteConfig(monitor_asns=propagation_artifact["monitors"],
                         report_rs_hop_as_rs_link=True),
        rs_asn_by_ixp={spec.name: spec.rs_asn for spec in internet.ixp_specs},
    )
    return Scenario(
        config=config,
        internet=internet,
        graph=internet.graph,
        schemes=ixps_artifact["schemes"],
        ixps=ixps_artifact["ixps"],
        route_servers=ixps_artifact["route_servers"],
        rs_looking_glasses=viewpoints_artifact["rs_looking_glasses"],
        third_party_lgs=viewpoints_artifact["third_party_lgs"],
        collectors=collectors_artifact["collectors"],
        archive=collectors_artifact["archive"],
        propagation=propagation_artifact["propagation"],
        irr=registries_artifact["irr"],
        peeringdb=viewpoints_artifact["peeringdb"],
        geolocation=registries_artifact["geolocation"],
        validation_lgs=viewpoints_artifact["validation_lgs"],
        traceroute=traceroute,
        vantage_points=propagation_artifact["vantage_points"],
        context=propagation_artifact["context"],
        backend=propagation_artifact.get("backend", "frontier"),
    )


def _build_schemes(ixp_specs: Sequence[IXPSpec]) -> SchemeRegistry:
    registry = SchemeRegistry()
    for spec in ixp_specs:
        registry.add(CommunityScheme.from_style(
            spec.scheme_style, spec.name, spec.rs_asn))
    return registry


def _build_ixps(
    internet: GeneratedInternet,
    schemes: SchemeRegistry,
    config: ScenarioConfig,
) -> Tuple[Dict[str, IXP], Dict[str, RouteServer]]:
    ixps: Dict[str, IXP] = {}
    route_servers: Dict[str, RouteServer] = {}
    for index, spec in enumerate(internet.ixp_specs):
        lan = Prefix.from_octets(185, 1, 4 * index, 0, 22)
        ixp = IXP(
            name=spec.name,
            region=spec.region,
            pricing=spec.pricing,
            peering_lan=lan,
            publishes_member_list=spec.publishes_member_list,
        )
        route_server = RouteServer(
            ixp_name=spec.name,
            rs_asn=spec.rs_asn,
            scheme=schemes.get(spec.name),
            transparent=spec.rs_transparent,
        )
        ixp.add_route_server(route_server)
        for asn in internet.graph.members_of_ixp(spec.name):
            ixp.add_member(asn)
        for asn in internet.graph.rs_members_of_ixp(spec.name):
            intent = internet.export_intents[(spec.name, asn)]
            policy = MemberExportPolicy(
                member_asn=asn, ixp_name=spec.name,
                mode=intent.mode, listed=intent.listed)
            ixp.connect_to_route_server(asn, policy)
        ixps[spec.name] = ixp
        route_servers[spec.name] = route_server
    return ixps, route_servers


def _announce_routes(
    internet: GeneratedInternet,
    route_servers: Dict[str, RouteServer],
    rng: random.Random,
    config: ScenarioConfig,
) -> None:
    """Each RS member announces its own prefixes plus a sample of its
    customer cone's prefixes, tagged per its export policy; a tiny
    fraction of members deviates on one prefix (the <0.5% inconsistency)."""
    graph = internet.graph
    for spec in internet.ixp_specs:
        route_server = route_servers[spec.name]
        members = graph.rs_members_of_ixp(spec.name)
        for asn in members:
            own_prefixes = graph.prefixes_of(asn)
            announced: List[Tuple[Prefix, Tuple[int, ...]]] = [
                (prefix, (asn,)) for prefix in own_prefixes]
            cone = sorted(customer_cone(graph, asn) - {asn})
            for customer in cone:
                for prefix in graph.prefixes_of(customer):
                    if rng.random() < config.cone_prefix_fraction:
                        announced.append((prefix, (asn, customer)))
            deviate = rng.random() < config.inconsistent_member_fraction
            for index, (prefix, path) in enumerate(announced):
                if deviate and index == 0 and len(announced) > 1:
                    # One prefix announced with an extra, unusual EXCLUDE.
                    others = [m for m in members if m != asn]
                    if others:
                        extra = rng.choice(others)
                        scheme = route_server.scheme
                        policy = route_server.member_policy(asn)
                        communities = set(policy.communities_for(
                            scheme, prefix, route_server.mapper))
                        communities.add(scheme.exclude(extra, route_server.mapper))
                        route_server.announce(asn, prefix, path, communities)
                        continue
                route_server.announce(asn, prefix, path)


def _pick_vantage_points(
    internet: GeneratedInternet, rng: random.Random, config: ScenarioConfig
) -> List[VantagePoint]:
    graph = internet.graph
    candidates = [node.asn for node in graph.nodes()
                  if node.as_type in (ASType.TIER1, ASType.TRANSIT, ASType.REGIONAL)]
    count = max(8, int(len(graph) * config.vantage_point_fraction))
    chosen = set(rng.sample(candidates, min(count, len(candidates))))
    # Make sure every IXP has at least one RS feeder: an RS member whose
    # feed can expose that IXP's communities to a collector.
    for spec in internet.ixp_specs:
        members = graph.rs_members_of_ixp(spec.name)
        if not members:
            continue
        if not any(asn in chosen for asn in members):
            chosen.add(rng.choice(members))
    vantage_points = []
    for asn in sorted(chosen):
        feed = FeedType.FULL if rng.random() < config.full_feed_fraction \
            else FeedType.CUSTOMER_ONLY
        vantage_points.append(VantagePoint(asn=asn, feed_type=feed))
    return vantage_points


def _pick_third_party_lg_hosts(
    internet: GeneratedInternet, rng: random.Random, config: ScenarioConfig
) -> Dict[str, List[int]]:
    graph = internet.graph
    hosts: Dict[str, List[int]] = {}
    for spec in internet.ixp_specs:
        if spec.has_rs_lg:
            continue
        members = graph.rs_members_of_ixp(spec.name)
        if not members:
            hosts[spec.name] = []
            continue
        preferred = [asn for asn in members
                     if graph.get_as(asn).as_type in (ASType.TRANSIT, ASType.REGIONAL)]
        pool = preferred or members
        count = min(config.third_party_lgs_per_ixp, len(pool))
        hosts[spec.name] = sorted(rng.sample(pool, count))
    return hosts


def _pick_traceroute_monitors(
    internet: GeneratedInternet, rng: random.Random, config: ScenarioConfig
) -> List[int]:
    graph = internet.graph
    candidates = [node.asn for node in graph.nodes()
                  if node.as_type in (ASType.STUB, ASType.REGIONAL)]
    count = min(config.num_traceroute_monitors, len(candidates))
    return sorted(rng.sample(candidates, count))


def _pick_validation_hosts(
    internet: GeneratedInternet, rng: random.Random, config: ScenarioConfig
) -> List[int]:
    graph = internet.graph
    rs_members = {asn for spec in internet.ixp_specs
                  for asn in graph.rs_members_of_ixp(spec.name)}
    customers_of_members = set()
    for asn in rs_members:
        customers_of_members.update(graph.customers(asn))
    pool = sorted(rs_members | customers_of_members)
    count = min(config.num_validation_lgs, len(pool))
    return sorted(rng.sample(pool, count))


def _build_collectors(
    vantage_points: List[VantagePoint],
    propagation: PropagationResult,
    config: ScenarioConfig,
) -> Tuple[List[RouteCollector], CollectorArchive]:
    route_views = RouteCollector(name="route-views")
    ripe_ris = RouteCollector(name="rrc00")
    for index, vantage_point in enumerate(vantage_points):
        collector = route_views if index % 2 == 0 else ripe_ris
        collector.add_vantage_point(vantage_point)
    archive = CollectorArchive([route_views, ripe_ris], window=config.window,
                               seed=config.seed)
    archive.collect(propagation, transient_fraction=config.transient_fraction)
    return [route_views, ripe_ris], archive


def _build_rs_lgs(
    internet: GeneratedInternet, route_servers: Dict[str, RouteServer]
) -> Dict[str, RouteServerLookingGlass]:
    return {spec.name: RouteServerLookingGlass(route_servers[spec.name])
            for spec in internet.ixp_specs if spec.has_rs_lg}


def _build_third_party_lgs(
    internet: GeneratedInternet,
    route_servers: Dict[str, RouteServer],
    lg_hosts: Dict[str, List[int]],
) -> Dict[str, List[ASLookingGlass]]:
    result: Dict[str, List[ASLookingGlass]] = {}
    for ixp_name, hosts in lg_hosts.items():
        route_server = route_servers[ixp_name]
        lgs: List[ASLookingGlass] = []
        for asn in hosts:
            lg = ASLookingGlass(asn=asn, display_all_paths=True,
                                name=f"{ixp_name}-member-AS{asn}-lg")
            lg.load_route_server_exports(route_server)
            lgs.append(lg)
        result[ixp_name] = lgs
    return result


def _build_validation_lgs_and_peeringdb(
    internet: GeneratedInternet,
    propagation: PropagationResult,
    route_servers: Dict[str, RouteServer],
    validation_hosts: List[int],
    rng: random.Random,
    config: ScenarioConfig,
) -> Tuple[List[ASLookingGlass], PeeringDB]:
    graph = internet.graph
    peeringdb = PeeringDB()

    for node in graph.nodes():
        if not node.in_peeringdb:
            continue
        record = PeeringDBRecord(
            asn=node.asn, name=node.name, policy=node.policy,
            scope=node.scope, ixps=set(node.ixps))
        peeringdb.register(record)

    validation_lgs: List[ASLookingGlass] = []
    for asn in validation_hosts:
        display_all = rng.random() < config.all_paths_lg_fraction
        lg = ASLookingGlass(asn=asn, display_all_paths=display_all,
                            name=f"AS{asn}-lg")
        # Load the AS's BGP view from the propagation result: every offered
        # path (its Adj-RIB-In) when recorded, the best path otherwise.
        groups = propagation.observation_groups_at(asn)
        if groups is not None:
            # Columnar fast path: one bulk load per origin, straight
            # from the route-block columns.  Group rows arrive in
            # ``all_paths`` order, whose head minimises (provenance,
            # path length) — i.e. rows[0] is exactly the object loop's
            # ``best_key`` route.
            for origin, block, rows in groups:
                prefixes = propagation.origin_spec(origin).prefixes
                if prefixes:
                    lg.load_route_blocks(prefixes, block, rows)
        else:
            for origin in propagation.origins():
                routes = propagation.all_paths(asn, origin)
                if not routes:
                    continue
                spec = propagation.origin_spec(origin)
                best_key = min(range(len(routes)), key=lambda i: (
                    routes[i].provenance, len(routes[i].path)))
                for index, route in enumerate(routes):
                    for prefix in spec.prefixes:
                        lg.load_route(LGRoute(
                            prefix=prefix,
                            as_path=route.path,
                            communities=route.communities,
                            best=(index == best_key),
                            learned_from=route.learned_from,
                        ))
        validation_lgs.append(lg)
        peeringdb.add_looking_glass(asn, f"https://lg.as{asn}.example.net",
                                    display_all_paths=display_all)
    return validation_lgs, peeringdb


def _build_irr(internet: GeneratedInternet, rng: random.Random) -> IRRDatabase:
    irr = IRRDatabase()
    graph = internet.graph

    for spec in internet.ixp_specs:
        members = set(graph.rs_members_of_ixp(spec.name))
        if spec.publishes_member_list:
            # The IXP maintains an as-set of its RS members (a couple of
            # recent joiners may be missing, as in real registries).
            registered = set(members)
            for asn in list(registered):
                if rng.random() < 0.02:
                    registered.discard(asn)
            irr.register_as_set(ASSet(
                name=_as_set_name(spec.name), members=registered,
                maintained_by=spec.rs_asn))

        for asn in members:
            intent = internet.export_intents[(spec.name, asn)]
            register_probability = 0.9 if spec.name == "AMS-IX" else \
                (0.55 if spec.name == "LINX" else 0.25)
            if rng.random() > register_probability:
                continue
            blocked_export: Set[int] = set()
            if intent.mode == MODE_ALL_EXCEPT:
                blocked_export = set(intent.listed)
            else:
                blocked_export = members - set(intent.listed) - {asn}
            # Import filters are at most as restrictive as export filters
            # (section 4.4's empirical finding); about half block fewer.
            if blocked_export and rng.random() < 0.5:
                keep = rng.randint(0, max(0, len(blocked_export) - 1))
                blocked_import = set(rng.sample(sorted(blocked_export), keep))
            else:
                blocked_import = set(blocked_export)
            existing = irr.aut_num(asn)
            policy = existing or AutNumPolicy(asn=asn)
            policy.blocked_export |= blocked_export
            policy.blocked_import |= blocked_import
            policy.rs_peers.add(spec.rs_asn)
            irr.register_aut_num(policy)
    return irr


def _build_geolocation(graph: ASGraph) -> GeolocationDB:
    geodb = GeolocationDB()
    for node in graph.nodes():
        geodb.register_many(node.prefixes, node.region)
    return geodb


# ---------------------------------------------------------------------------
# the stage library: declarative stages every scenario family draws from
# ---------------------------------------------------------------------------


def _run_inference_stage(run):
    scenario: Scenario = run.artifact("scenario")
    connectivity = run.artifact("connectivity")
    options = run.inference_options
    engine = scenario.make_engine(
        connectivity=connectivity,
        inference_backend=getattr(run, "inference_backend", None))
    passive_entries = scenario.archive.clean_stable_entries() \
        if options.use_passive else None
    rs_lgs = scenario.rs_looking_glasses if options.use_active else {}
    third_party = scenario.third_party_lgs if options.use_active else {}
    return engine.run(
        passive_entries=passive_entries,
        rs_looking_glasses=rs_lgs,
        third_party_lgs=third_party,
        require_reciprocity=options.require_reciprocity,
        workers=run.workers,
    )


def _run_reachability_stage(run):
    scenario: Scenario = run.artifact("scenario")
    return scenario.reachability_matrix(run.artifact("inference"))


def stage_timeline(run):
    """Replay the spec's event timeline incrementally over the baseline
    propagation (``None`` when the spec declares no timeline).

    Events are derived from the baseline state and the timeline seed,
    then applied one at a time with frontier-limited delta recompute:
    only origins in the affected set are re-propagated, every other
    origin's columnar blocks are reused from the previous result.  The
    replay works on deepcopies, so the cached topology/ixps/propagation
    artifacts are never mutated.
    """
    timeline_spec = getattr(run.spec, "timeline", None)
    if timeline_spec is None:
        return None
    from repro.scenarios.events import (
        TimelineReplay,
        build_timeline,
        record_sets,
    )
    internet: GeneratedInternet = run.artifact("topology")
    ixps_artifact = run.artifact("ixps")
    propagation_artifact = run.artifact("propagation")
    record_at, record_alternatives_at = record_sets(propagation_artifact)
    events = build_timeline(timeline_spec, internet.graph,
                            ixps_artifact["route_servers"])
    replay = TimelineReplay(
        internet.graph, ixps_artifact["route_servers"],
        propagation_artifact["propagation"],
        record_at, record_alternatives_at,
        backend=propagation_artifact["backend"],
        workers=run.workers,
        context=propagation_artifact["context"])
    return replay.replay(events)


def _run_analyses_stage(run):
    from repro.pipeline.analyses import run_analyses
    return run_analyses(
        run.artifact("scenario"), run.artifact("inference"),
        options=run.analysis_options, workers=run.workers,
        matrix=run.artifact("reachability"))


#: Every known stage, keyed by name.  A scenario spec's ``stage_names``
#: selects a subset (default: all, in this order); fingerprints come
#: from the declared ``config_keys`` / ``options_key`` plus upstream
#: fingerprints, exactly as before the spec layer existed.
STAGE_LIBRARY: Dict[str, Stage] = {
    stage.name: stage for stage in [
        Stage(
            "topology",
            fn=lambda run: stage_topology(run.config),
            config_keys=("generator",),
            persist=True,
        ),
        Stage(
            "ixps",
            fn=lambda run: stage_ixps(
                run.config, run.artifact("topology")),
            deps=("topology",),
            config_keys=("seed", "cone_prefix_fraction",
                         "inconsistent_member_fraction"),
        ),
        Stage(
            "propagation",
            fn=lambda run: stage_propagation(
                run.config, run.artifact("topology"), run.artifact("ixps"),
                workers=run.workers, backend=getattr(run, "backend", None)),
            deps=("topology", "ixps"),
            config_keys=("vantage_point_fraction", "full_feed_fraction",
                         "third_party_lgs_per_ixp", "num_traceroute_monitors",
                         "num_validation_lgs"),
            # The backend namespace salts this fingerprint (and, via the
            # dependency cascade, everything downstream), so artifacts
            # from different propagation backends never alias in a
            # shared cache.
            options_key="backend",
            persist=True,
        ),
        Stage(
            "collectors",
            fn=lambda run: stage_collectors(
                run.config, run.artifact("propagation")),
            deps=("propagation",),
            config_keys=("seed", "window", "transient_fraction"),
        ),
        Stage(
            "viewpoints",
            fn=lambda run: stage_viewpoints(
                run.config, run.artifact("topology"), run.artifact("ixps"),
                run.artifact("propagation")),
            deps=("topology", "ixps", "propagation"),
            config_keys=("all_paths_lg_fraction",),
        ),
        Stage(
            "registries",
            fn=lambda run: stage_registries(
                run.config, run.artifact("topology"),
                run.artifact("viewpoints")),
            deps=("topology", "viewpoints"),
        ),
        Stage(
            "scenario",
            fn=lambda run: stage_scenario(
                run.config, run.artifact("topology"), run.artifact("ixps"),
                run.artifact("propagation"), run.artifact("collectors"),
                run.artifact("viewpoints"), run.artifact("registries")),
            deps=("topology", "ixps", "propagation", "collectors",
                  "viewpoints", "registries"),
        ),
        Stage(
            "connectivity",
            fn=lambda run: run.artifact("scenario").discover_connectivity(),
            deps=("scenario",),
        ),
        Stage(
            "inference",
            fn=_run_inference_stage,
            deps=("scenario", "connectivity"),
            # The options namespace carries the InferenceOptions repr
            # *and* the inference-backend selector, so artifacts from
            # different inference data planes never alias in a shared
            # cache (while every upstream stage stays shared).
            options_key="inference",
            persist=True,
        ),
        Stage(
            "reachability",
            fn=_run_reachability_stage,
            deps=("scenario", "inference"),
        ),
        Stage(
            "timeline",
            fn=stage_timeline,
            deps=("topology", "ixps", "propagation"),
            # The timeline namespace carries the TimelineSpec repr, so
            # replays of different event families/seeds never alias;
            # specs without a timeline fingerprint as repr(None).
            options_key="timeline",
        ),
        Stage(
            "analyses",
            fn=_run_analyses_stage,
            deps=("scenario", "inference", "reachability"),
            options_key="analysis",
        ),
    ]
}


def default_stage_names() -> Tuple[str, ...]:
    """The canonical full pipeline, in declaration order."""
    return tuple(STAGE_LIBRARY)


def stage_graph_for(stage_names: Optional[Sequence[str]] = None) -> StageGraph:
    """A :class:`StageGraph` over the named library stages.

    ``None`` selects the full library.  Unknown names raise ``ValueError``
    (the graph itself validates that every dependency is included).
    """
    names = tuple(stage_names) if stage_names is not None \
        else default_stage_names()
    unknown = [name for name in names if name not in STAGE_LIBRARY]
    if unknown:
        raise ValueError(f"unknown stages {unknown!r} "
                         f"(available: {sorted(STAGE_LIBRARY)})")
    return StageGraph([STAGE_LIBRARY[name] for name in names])
