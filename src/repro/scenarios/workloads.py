"""Parameterised workload configurations for tests, examples and benchmarks.

Three sizes are provided:

* ``small``  — a minutes-of-CPU-free configuration for unit/integration
  tests (a handful of IXPs' worth of members);
* ``medium`` — the default used by most benchmarks; preserves the
  qualitative structure of Table 2 at roughly a quarter of the paper's
  member counts;
* ``large``  — closer to the paper's scale, for the headline Table 2 /
  Figure 6 benchmarks when more runtime is acceptable.
"""

from __future__ import annotations

from repro.collectors.archive import MeasurementWindow
from repro.scenarios.europe2013 import ScenarioConfig
from repro.topology.generator import GeneratorConfig


def small_scenario_config(seed: int = 20130501) -> ScenarioConfig:
    """A small, fast configuration for tests."""
    return ScenarioConfig(
        generator=GeneratorConfig(seed=seed, scale=0.12, ixp_member_scale=0.10),
        seed=seed + 1,
        vantage_point_fraction=0.10,
        num_validation_lgs=25,
        num_traceroute_monitors=12,
        window=MeasurementWindow(num_days=3),
    )


def medium_scenario_config(seed: int = 20130501) -> ScenarioConfig:
    """The default benchmark configuration (roughly quarter scale)."""
    return ScenarioConfig(
        generator=GeneratorConfig(seed=seed, scale=0.25, ixp_member_scale=0.22),
        seed=seed + 1,
        num_validation_lgs=50,
        num_traceroute_monitors=20,
    )


def large_scenario_config(seed: int = 20130501) -> ScenarioConfig:
    """A configuration closer to the paper's scale (slower to build)."""
    return ScenarioConfig(
        generator=GeneratorConfig(seed=seed, scale=0.45, ixp_member_scale=0.40),
        seed=seed + 1,
        num_validation_lgs=70,
        num_traceroute_monitors=30,
    )


#: Named workload sizes, for CLI-ish entry points and the smoke job.
WORKLOADS = {
    "small": small_scenario_config,
    "medium": medium_scenario_config,
    "large": large_scenario_config,
}


def scenario_run(size: str = "small", seed: int = 20130501, *,
                 workers=None, cache=None, cache_dir=None):
    """A :class:`~repro.pipeline.run.ScenarioRun` for a named workload.

    This is the canonical entry point for executing a workload through
    the staged pipeline: stages resolve lazily, artifacts land in
    *cache* (or a fresh one), and ``workers`` shards the parallel
    stages.
    """
    try:
        factory = WORKLOADS[size]
    except KeyError:
        raise ValueError(
            f"unknown workload {size!r} (choose from {sorted(WORKLOADS)})")
    from repro.pipeline.run import ScenarioRun
    return ScenarioRun(factory(seed), workers=workers, cache=cache,
                       cache_dir=cache_dir)
