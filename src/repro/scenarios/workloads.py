"""Parameterised workload configurations for tests, examples and benchmarks.

Sizes are no longer hand-rolled per function: every registered scenario
family carries a size table (``tiny`` / ``small`` / ``bench`` /
``medium`` / ``large`` / ``full`` by default, see
:data:`repro.scenarios.spec.DEFAULT_SIZES`), and this module resolves
``(scenario, size, seed)`` triples through the registry.  The historical
``small_scenario_config`` / ``medium_scenario_config`` /
``large_scenario_config`` helpers remain as thin, bit-identical wrappers
over the ``europe2013`` rows of that table.
"""

from __future__ import annotations

from typing import List, Optional

from repro.scenarios.base import ScenarioConfig
from repro.scenarios.spec import get_scenario, scenario_names


def scenario_config(size: str = "small", seed: Optional[int] = None,
                    scenario: str = "europe2013") -> ScenarioConfig:
    """The :class:`ScenarioConfig` of one registered scenario at one size."""
    return get_scenario(scenario).config(size, seed)


def small_scenario_config(seed: int = 20130501) -> ScenarioConfig:
    """A small, fast europe2013 configuration for tests."""
    return scenario_config("small", seed)


def medium_scenario_config(seed: int = 20130501) -> ScenarioConfig:
    """The default europe2013 benchmark configuration (~quarter scale)."""
    return scenario_config("medium", seed)


def large_scenario_config(seed: int = 20130501) -> ScenarioConfig:
    """A europe2013 configuration closer to the paper's scale (slower)."""
    return scenario_config("large", seed)


def workload_sizes(scenario: str = "europe2013") -> List[str]:
    """The sizes a registered scenario can be instantiated at."""
    return get_scenario(scenario).size_names()


def scenario_run(size: str = "small", seed: Optional[int] = None, *,
                 scenario: str = "europe2013",
                 workers=None, backend=None, inference_backend=None,
                 cache=None, cache_dir=None):
    """A :class:`~repro.pipeline.run.ScenarioRun` for a named workload.

    This is the canonical entry point for executing a workload through
    the staged pipeline: the scenario resolves through the registry,
    stages resolve lazily, artifacts land in *cache* (or a fresh one),
    ``workers`` shards the parallel stages, ``backend`` selects the
    propagation data plane and ``inference_backend`` the MLP inference
    data plane.  ``seed`` defaults to the spec's own ``base_seed`` (the
    family's declared identity).
    """
    spec = get_scenario(scenario)
    if size not in spec.sizes:
        raise ValueError(
            f"unknown workload {size!r} (choose from {sorted(spec.sizes)})")
    from repro.pipeline.run import ScenarioRun
    return ScenarioRun(spec.config(size, seed), scenario=spec,
                       workers=workers, backend=backend,
                       inference_backend=inference_backend, cache=cache,
                       cache_dir=cache_dir)


def scenario_matrix(size: str = "tiny", seed: Optional[int] = None, *,
                    workers=None, backend=None, inference_backend=None,
                    cache=None):
    """One :class:`~repro.pipeline.run.ScenarioRun` per registered
    scenario family, in name order — the CI smoke matrix."""
    return [scenario_run(size, seed, scenario=name, workers=workers,
                         backend=backend, inference_backend=inference_backend,
                         cache=cache)
            for name in scenario_names()]
