"""The "13 large European IXPs, May 2013" scenario (back-compat surface).

Historically this module *was* the scenario layer: the Europe-2013
measurement environment was hardwired into the stage functions defined
here.  The machinery now lives in scenario-generic modules —

* :mod:`repro.scenarios.base` — :class:`ScenarioConfig`,
  :class:`Scenario`, the stage bodies and the declarative stage library;
* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` and the registry;
* :mod:`repro.scenarios.families` — the registered families, including
  ``europe2013`` itself (the paper's Table 2 roster with Table 1
  community grammars);

— and this module re-exports the historical names so existing imports
(`ScenarioConfig`, `Scenario`, `build_europe2013`, the ``stage_*``
functions) keep working unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.scenarios.base import (  # noqa: F401  (re-exported API)
    Scenario,
    ScenarioConfig,
    _as_set_name,
    stage_collectors,
    stage_ixps,
    stage_propagation,
    stage_registries,
    stage_scenario,
    stage_topology,
    stage_viewpoints,
)

__all__ = [
    "Scenario",
    "ScenarioConfig",
    "build_europe2013",
    "stage_collectors",
    "stage_ixps",
    "stage_propagation",
    "stage_registries",
    "stage_scenario",
    "stage_topology",
    "stage_viewpoints",
]


def build_europe2013(
    config: Optional[ScenarioConfig] = None,
    workers: Optional[int] = None,
) -> Scenario:
    """Assemble the full Europe-2013 scenario.

    This is a convenience wrapper over the staged pipeline: it executes
    the registered ``europe2013`` spec's stage graph through a fresh
    :class:`~repro.pipeline.run.ScenarioRun` (no shared cache) and
    returns the assembled :class:`Scenario`.  ``workers`` shards the
    propagation stage across a process pool.
    """
    from repro.pipeline.run import ScenarioRun
    return ScenarioRun(config or ScenarioConfig(), scenario="europe2013",
                       workers=workers).scenario()
