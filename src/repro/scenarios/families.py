"""Built-in scenario families.

Importing this module registers the built-ins in the global
:data:`~repro.scenarios.spec.REGISTRY` (it is imported lazily by the
``get_scenario`` / ``scenario_names`` lookups, so callers never need to
import it directly):

* ``europe2013`` — the paper's measurement: 13 large European IXPs,
  May 2013 (Table 2 roster, Table 1 community grammars).  Byte-for-byte
  the scenario the repository has always built.
* ``hypergiant2016`` — a content-heavy era: twice the hypergiants, a
  much larger content population, aggressive private peering (which
  drives EXCLUDE filtering), and markedly lower route-server
  participation.
* ``sparse-view`` — a visibility stress test over the Table 2 roster:
  almost no collector vantage points, a single route-server looking
  glass, one third-party LG per IXP and very few validation LGs.
* ``growth-sweep-<year>`` — a year-over-year growth family: the
  Table 2 roster with IXP membership compounding ~18%/year from the
  2013 baseline (and PeeringDB registration slowly rising), for scale
  sweeps along a realistic axis.
* ``europe2013-churn`` / ``europe2013-failover`` /
  ``europe2013-flap-storm`` — event-driven variants of europe2013: the
  same baseline plus an event timeline (RS churn, provider failover,
  session flapping) replayed by the ``timeline`` stage with
  frontier-limited delta recompute.

Adding a family is one :func:`~repro.scenarios.spec.register_scenario`
call; benchmarks, workloads, examples and the CI scenario matrix pick
it up automatically because they resolve scenarios via the registry.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.scenarios.events import TimelineSpec
from repro.scenarios.spec import ScenarioSpec, register_scenario
from repro.topology.generator import IXPSpec, default_euro_ixps


# -- europe2013 ---------------------------------------------------------------

EUROPE2013 = register_scenario(ScenarioSpec(
    name="europe2013",
    description="13 large European IXPs, May 2013 (the paper's Table 2).",
))


# -- event-driven variants ----------------------------------------------------

#: The europe2013 baseline replayed through each registered event
#: family.  One spec per family: benchmarks, workloads, goldens and the
#: CI matrix resolve scenarios via the registry, so the event-driven
#: variants participate in all of them automatically.
EVENT_SCENARIOS = {
    family: register_scenario(EUROPE2013.with_overrides(
        name=f"europe2013-{family}",
        description=f"europe2013 plus a {family!r} event timeline "
                    "(incremental delta replay).",
        timeline=TimelineSpec(family=family, length=8, seed=20130508),
    ))
    for family in ("churn", "failover", "flap-storm")
}


# -- hypergiant2016 -----------------------------------------------------------

def hypergiant_era_ixps(member_scale: float) -> List[IXPSpec]:
    """A 2016-style roster: fewer, larger IXPs with weaker RS uptake."""
    def scaled(members: int) -> int:
        return max(12, int(round(members * member_scale)))

    return [
        IXPSpec("DE-CIX-FRA", 6695, "eu-central", scaled(700), 0.62, "flat", True, "rs-asn"),
        IXPSpec("AMS-IX-NL", 6777, "eu-west", scaled(750), 0.58, "flat", True, "rs-asn"),
        IXPSpec("LINX-LON1", 8714, "eu-west", scaled(620), 0.44, "flat", False, "offset",
                publishes_member_list=False),
        IXPSpec("NL-IX", 34307, "eu-west", scaled(180), 0.50, "usage", True, "rs-asn"),
        IXPSpec("VIX", 1921, "eu-central", scaled(120), 0.52, "flat", True, "zero-exclude"),
        IXPSpec("ESPANIX", 6895, "eu-south", scaled(95), 0.55, "flat", True, "rs-asn"),
    ]


HYPERGIANT2016 = register_scenario(ScenarioSpec(
    name="hypergiant2016",
    description="Content-heavy 2016 regime: many hypergiants, heavy "
                "private peering, lower route-server participation.",
    ixp_roster=hypergiant_era_ixps,
    generator=dict(
        num_hypergiants=8,
        content_multiplier=2.5,
        hypergiant_ixp_presence=0.97,
        hypergiant_private_peering_probability=0.18,
        policy_fractions=(0.80, 0.16, 0.04),
        rs_participation={"open": 0.72, "selective": 0.45, "restrictive": 0.20},
        peeringdb_registration_rate=0.70,
    ),
    base_seed=20160501,
))


# -- sparse-view --------------------------------------------------------------

def sparse_view_ixps(member_scale: float) -> List[IXPSpec]:
    """The Table 2 roster with the observation surface stripped down:
    only DE-CIX keeps a route-server LG, and only DE-CIX/AMS-IX still
    publish their member lists."""
    return [replace(spec,
                    has_rs_lg=(spec.name == "DE-CIX"),
                    publishes_member_list=spec.name in ("DE-CIX", "AMS-IX"))
            for spec in default_euro_ixps(member_scale)]


SPARSE_VIEW = register_scenario(ScenarioSpec(
    name="sparse-view",
    description="Collector/LG-poor visibility stress: 2% vantage points, "
                "one RS looking glass, minimal validation surface.",
    ixp_roster=sparse_view_ixps,
    surface=dict(
        vantage_point_fraction=0.02,
        full_feed_fraction=0.15,
        num_validation_lgs=8,
        third_party_lgs_per_ixp=1,
        num_traceroute_monitors=6,
    ),
))


# -- growth-sweep -------------------------------------------------------------

#: Year-over-year multiplicative growth of IXP route-server membership
#: (roughly what Table 2-class IXPs saw through the mid-2010s).
GROWTH_PER_YEAR = 1.18
#: The baseline year of the Table 2 roster.
GROWTH_BASE_YEAR = 2013


def growth_sweep_spec(year: int) -> ScenarioSpec:
    """The growth-sweep family member for *year*.

    Membership compounds :data:`GROWTH_PER_YEAR` from the 2013 baseline;
    PeeringDB registration creeps up a few points per year.  Any year
    ``>= 2013`` is valid — the registry pre-registers a small ladder.
    """
    if year < GROWTH_BASE_YEAR:
        raise ValueError(f"growth sweep starts at {GROWTH_BASE_YEAR}, got {year}")
    years = year - GROWTH_BASE_YEAR
    return ScenarioSpec(
        name=f"growth-sweep-{year}",
        description=f"Table 2 roster with membership grown "
                    f"{GROWTH_PER_YEAR:.2f}x/year to {year}.",
        member_growth=GROWTH_PER_YEAR ** years,
        generator=dict(
            peeringdb_registration_rate=min(0.85, 0.55 + 0.03 * years),
        ),
        base_seed=20130501 + years,
    )


#: The pre-registered rungs of the growth ladder.
GROWTH_SWEEP_YEARS = (2014, 2016, 2018)

GROWTH_SWEEP = {
    year: register_scenario(growth_sweep_spec(year))
    for year in GROWTH_SWEEP_YEARS
}
