"""Ready-made synthetic ecosystems.

:func:`repro.scenarios.europe2013.build_europe2013` assembles the full
"13 European IXPs, May 2013" measurement scenario: synthetic Internet,
route servers with community-tagged announcements, collectors, looking
glasses, registries, geolocation and traceroute substrates — everything
the inference engine and the evaluation analyses consume.
"""

from repro.scenarios.europe2013 import Scenario, ScenarioConfig, build_europe2013
from repro.scenarios.workloads import (
    small_scenario_config,
    medium_scenario_config,
    large_scenario_config,
)

__all__ = [
    "Scenario",
    "ScenarioConfig",
    "build_europe2013",
    "small_scenario_config",
    "medium_scenario_config",
    "large_scenario_config",
]
