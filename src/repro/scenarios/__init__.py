"""Ready-made synthetic ecosystems, declaratively specified.

The scenario layer is split into:

* :mod:`repro.scenarios.base` — scenario-generic assembly: the
  :class:`ScenarioConfig` knobs, the assembled :class:`Scenario`
  environment, the stage bodies and the declarative stage library;
* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` (topology phases,
  IXP roster + community-scheme assignment, measurement surface,
  analysis suite, size table) and the :class:`ScenarioRegistry`;
* :mod:`repro.scenarios.families` — the registered built-ins:
  ``europe2013`` (the paper's Table 2 measurement), ``hypergiant2016``,
  ``sparse-view`` and the ``growth-sweep-<year>`` ladder;
* :mod:`repro.scenarios.workloads` — named (scenario, size) entry
  points for tests, examples, benchmarks and the CI smoke matrix;
* :mod:`repro.scenarios.europe2013` — the historical import surface,
  re-exporting :func:`build_europe2013` and friends.

``get_scenario("<name>")`` is the one lookup everything goes through;
registering a new :class:`ScenarioSpec` makes the family available to
every consumer at once.
"""

from repro.scenarios.base import Scenario, ScenarioConfig
from repro.scenarios.europe2013 import build_europe2013
from repro.scenarios.spec import (
    DEFAULT_SIZES,
    REGISTRY,
    ScenarioRegistry,
    ScenarioSpec,
    SizeProfile,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.workloads import (
    scenario_config,
    scenario_matrix,
    scenario_run,
    small_scenario_config,
    medium_scenario_config,
    large_scenario_config,
    workload_sizes,
)

__all__ = [
    "DEFAULT_SIZES",
    "REGISTRY",
    "Scenario",
    "ScenarioConfig",
    "ScenarioRegistry",
    "ScenarioSpec",
    "SizeProfile",
    "all_scenarios",
    "build_europe2013",
    "get_scenario",
    "large_scenario_config",
    "medium_scenario_config",
    "register_scenario",
    "scenario_config",
    "scenario_matrix",
    "scenario_names",
    "scenario_run",
    "small_scenario_config",
    "workload_sizes",
]
