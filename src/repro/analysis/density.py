"""Peering density per route server (figure 12).

Peering density is the fraction of possible route-server peerings a
member actually established.  The paper measures 0.79-0.95 at the IXPs
with full connectivity data, higher than the ~70% overall IXP peering
density reported by earlier work, because route-server environments
select for open peering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

Link = Tuple[int, int]


@dataclass
class DensityReport:
    """Per-IXP density distributions."""

    #: ixp name -> list of per-member densities
    per_member: Dict[str, List[float]] = field(default_factory=dict)

    def mean_density(self, ixp_name: str) -> float:
        """Mean per-member density at *ixp_name* (the red crosses of fig. 12)."""
        values = self.per_member.get(ixp_name, [])
        return sum(values) / len(values) if values else 0.0

    def mean_densities(self) -> Dict[str, float]:
        """Mean density per IXP."""
        return {name: self.mean_density(name) for name in self.per_member}

    def overall_link_density(self, ixp_name: str, num_members: int,
                             num_links: int) -> float:
        """Exchange-level density: links over possible pairs."""
        possible = num_members * (num_members - 1) // 2
        return num_links / possible if possible else 0.0


def member_densities(links: Iterable[Link], members: Sequence[int]) -> Dict[int, float]:
    """Per-member density: established RS peers over possible RS peers."""
    member_set = set(members)
    possible = len(member_set) - 1
    degree: Dict[int, int] = {asn: 0 for asn in member_set}
    for a, b in links:
        if a in member_set and b in member_set:
            degree[a] += 1
            degree[b] += 1
    if possible <= 0:
        return {asn: 0.0 for asn in member_set}
    return {asn: degree[asn] / possible for asn in member_set}


def density_per_ixp(
    links_by_ixp: Mapping[str, Iterable[Link]],
    members_by_ixp: Mapping[str, Sequence[int]],
    only_members_with_links: bool = False,
) -> DensityReport:
    """Figure 12: per-IXP distribution of per-member peering densities.

    ``only_members_with_links`` restricts the population to members with
    at least one inferred link, matching the paper's plot which only shows
    members whose connectivity data was complete.
    """
    report = DensityReport()
    for ixp_name, members in members_by_ixp.items():
        links = set(links_by_ixp.get(ixp_name, ()))
        densities = member_densities(links, list(members))
        values = []
        for asn, density in sorted(densities.items()):
            if only_members_with_links and density == 0.0:
                continue
            values.append(density)
        report.per_member[ixp_name] = values
    return report


def density_from_matrix(
    matrix,
    members_by_ixp: Optional[Mapping[str, Sequence[int]]] = None,
    only_members_with_links: bool = False,
) -> DensityReport:
    """Figure 12 from the shared
    :class:`~repro.runtime.reachmatrix.ReachabilityMatrix` artifact.

    The per-IXP link sets come from the matrix's memoised views; the
    member population defaults to each plane's universe (pass
    *members_by_ixp* to reproduce a ground-truth population exactly).
    """
    if members_by_ixp is None:
        members_by_ixp = {name: plane.index.universe
                          for name, plane in matrix.planes.items()}
    return density_per_ixp(matrix.links_by_ixp(), members_by_ixp,
                           only_members_with_links=only_members_with_links)
