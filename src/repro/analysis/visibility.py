"""Visibility of the inferred MLP links in existing data sources (figure 6).

The paper's headline numbers: 206K MLP links inferred, only 11.9% of
which are visible in public BGP paths (Route Views / RIPE RIS), i.e. 88%
were previously invisible; the overlap with traceroute-derived topologies
(Ark / DIMES) is even smaller because those projects do not resolve
route-server-mediated links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

Link = Tuple[int, int]


@dataclass
class VisibilityReport:
    """Overlap of the MLP link set with other topology data sources."""

    mlp_links: Set[Link] = field(default_factory=set)
    bgp_links: Set[Link] = field(default_factory=set)
    traceroute_links: Set[Link] = field(default_factory=set)

    # -- headline numbers -------------------------------------------------------------

    @property
    def num_mlp(self) -> int:
        """Number of inferred MLP links."""
        return len(self.mlp_links)

    @property
    def mlp_visible_in_bgp(self) -> Set[Link]:
        """MLP links also present in public BGP paths."""
        return self.mlp_links & self.bgp_links

    @property
    def mlp_visible_in_traceroute(self) -> Set[Link]:
        """MLP links also present in traceroute-derived links."""
        return self.mlp_links & self.traceroute_links

    @property
    def fraction_visible_in_bgp(self) -> float:
        """Fraction of MLP links visible in public BGP data (11.9% in the paper)."""
        if not self.mlp_links:
            return 0.0
        return len(self.mlp_visible_in_bgp) / len(self.mlp_links)

    @property
    def fraction_invisible(self) -> float:
        """Fraction of MLP links invisible in public BGP data (88% in the paper)."""
        return 1.0 - self.fraction_visible_in_bgp

    @property
    def fraction_visible_in_traceroute(self) -> float:
        """Fraction of MLP links visible in traceroute-derived data."""
        if not self.mlp_links:
            return 0.0
        return len(self.mlp_visible_in_traceroute) / len(self.mlp_links)

    def additional_peering_fraction(self) -> float:
        """How many times more peering links the MLP set reveals compared
        with the peering links already visible in BGP (the paper reports
        +209%)."""
        visible_peering = len(self.bgp_links)
        if visible_peering == 0:
            return float("inf")
        new_links = len(self.mlp_links - self.bgp_links)
        return new_links / visible_peering

    def summary(self) -> Dict[str, float]:
        """Headline summary dictionary."""
        return {
            "mlp_links": float(self.num_mlp),
            "bgp_links": float(len(self.bgp_links)),
            "traceroute_links": float(len(self.traceroute_links)),
            "visible_in_bgp": float(len(self.mlp_visible_in_bgp)),
            "fraction_visible_in_bgp": self.fraction_visible_in_bgp,
            "fraction_invisible": self.fraction_invisible,
            "visible_in_traceroute": float(len(self.mlp_visible_in_traceroute)),
        }


class VisibilityAnalysis:
    """Build visibility reports and the per-member series of figure 6."""

    def __init__(
        self,
        mlp_links: Iterable[Link],
        bgp_links: Iterable[Link],
        traceroute_links: Iterable[Link] = (),
    ) -> None:
        self.report = VisibilityReport(
            mlp_links={self._norm(link) for link in mlp_links},
            bgp_links={self._norm(link) for link in bgp_links},
            traceroute_links={self._norm(link) for link in traceroute_links},
        )

    @classmethod
    def from_matrix(
        cls,
        matrix,
        bgp_links: Iterable[Link],
        traceroute_links: Iterable[Link] = (),
    ) -> "VisibilityAnalysis":
        """Figure 6 from the shared
        :class:`~repro.runtime.reachmatrix.ReachabilityMatrix` artifact
        (its memoised global link set) instead of a raw link iterable."""
        return cls(matrix.all_links(), bgp_links, traceroute_links)

    @staticmethod
    def _norm(link: Link) -> Link:
        return (min(link), max(link))

    def per_member_series(
        self, members: Optional[Iterable[int]] = None
    ) -> List[Dict[str, int]]:
        """Figure 6: per RS member, the number of its peerings found by MLP
        inference, visible in passive BGP data and in traceroute data,
        ordered by decreasing MLP peer count."""
        def count_per_as(links: Set[Link]) -> Dict[int, int]:
            counts: Dict[int, int] = {}
            for a, b in links:
                counts[a] = counts.get(a, 0) + 1
                counts[b] = counts.get(b, 0) + 1
            return counts

        mlp_counts = count_per_as(self.report.mlp_links)
        bgp_counts = count_per_as(self.report.bgp_links)
        traceroute_counts = count_per_as(self.report.traceroute_links)
        population = set(members) if members is not None else set(mlp_counts)
        series = [
            {
                "asn": asn,
                "mlp": mlp_counts.get(asn, 0),
                "passive": bgp_counts.get(asn, 0),
                "active": traceroute_counts.get(asn, 0),
            }
            for asn in population
        ]
        series.sort(key=lambda row: (-row["mlp"], row["asn"]))
        return series
