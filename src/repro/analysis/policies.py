"""Peering-policy analyses (figures 9, 10 and 11).

* Figure 9: route-server participation split by self-reported peering
  policy (92% of open, 75% of selective, 43% of restrictive networks are
  connected to at least one route server).
* Figure 10: the matrix of IXP presences versus route-server
  participations (55.8% of ASes are at a single IXP and use its RS).
* Figure 11: the fraction of RS members an AS allows to receive its
  routes, as a function of its self-reported policy (a binary pattern:
  nearly all or nearly none).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.reachability import MemberReachability
from repro.registries.peeringdb import PeeringDB
from repro.topology.as_graph import ASGraph, PeeringPolicy


@dataclass
class ParticipationByPolicy:
    """Figure 9: per-policy counts of RS participation."""

    #: policy value -> {"participates": n, "does_not": m}
    counts: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def participation_rate(self, policy: str) -> float:
        """Fraction of networks with *policy* connected to >= 1 route server."""
        row = self.counts.get(policy)
        if not row:
            return 0.0
        total = row["participates"] + row["does_not"]
        return row["participates"] / total if total else 0.0

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for printing the figure-9 summary."""
        return [
            {
                "policy": policy,
                "participates": row["participates"],
                "does_not": row["does_not"],
                "rate": round(self.participation_rate(policy), 3),
            }
            for policy, row in sorted(self.counts.items())
        ]


@dataclass
class MultiIXPMatrix:
    """Figure 10: IXP presences vs route-server participations."""

    #: (num_ixps, num_rs) -> number of ASes
    cells: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Number of ASes counted."""
        return sum(self.cells.values())

    def fraction(self, num_ixps: int, num_rs: int) -> float:
        """Fraction of ASes in the given cell."""
        if not self.total:
            return 0.0
        return self.cells.get((num_ixps, num_rs), 0) / self.total

    def fraction_single_ixp_with_rs(self) -> float:
        """ASes at exactly one IXP and using its route server (55.8%)."""
        return self.fraction(1, 1)

    def fraction_no_rs(self) -> float:
        """ASes present at IXPs but using no route server (13.4%)."""
        if not self.total:
            return 0.0
        count = sum(n for (_, num_rs), n in self.cells.items() if num_rs == 0)
        return count / self.total

    def fraction_inconsistent_multi_ixp(self) -> float:
        """ASes at multiple IXPs that use a route server at some but not
        all of them (the 7.9% of section 5.2)."""
        if not self.total:
            return 0.0
        count = sum(n for (num_ixps, num_rs), n in self.cells.items()
                    if num_ixps > 1 and 0 < num_rs < num_ixps)
        return count / self.total


class PolicyAnalysis:
    """Join inferred data with the PeeringDB policy/scope records."""

    def __init__(self, graph: ASGraph, peeringdb: PeeringDB) -> None:
        self.graph = graph
        self.peeringdb = peeringdb

    # -- figure 9 -----------------------------------------------------------------------

    def participation_by_policy(
        self, ixp_names: Optional[Iterable[str]] = None
    ) -> ParticipationByPolicy:
        """Figure 9 over the ASes present at the given IXPs (all by default)."""
        wanted = set(ixp_names) if ixp_names is not None else None
        result = ParticipationByPolicy()
        for node in self.graph.nodes():
            presences = node.ixps if wanted is None else (node.ixps & wanted)
            if not presences:
                continue
            record = self.peeringdb.record(node.asn)
            if record is None or record.policy is PeeringPolicy.UNKNOWN:
                continue
            rs_count = len(node.rs_memberships if wanted is None
                           else (node.rs_memberships & wanted))
            row = result.counts.setdefault(
                record.policy.value, {"participates": 0, "does_not": 0})
            if rs_count > 0:
                row["participates"] += 1
            else:
                row["does_not"] += 1
        return result

    # -- figure 10 ----------------------------------------------------------------------

    def multi_ixp_matrix(
        self, ixp_names: Optional[Iterable[str]] = None, max_ixps: int = 7
    ) -> MultiIXPMatrix:
        """Figure 10 over the ASes present at the given IXPs."""
        wanted = set(ixp_names) if ixp_names is not None else None
        matrix = MultiIXPMatrix()
        for node in self.graph.nodes():
            presences = node.ixps if wanted is None else (node.ixps & wanted)
            if not presences:
                continue
            rs = node.rs_memberships if wanted is None \
                else (node.rs_memberships & wanted)
            num_ixps = min(len(presences), max_ixps)
            num_rs = min(len(rs), num_ixps)
            key = (num_ixps, num_rs)
            matrix.cells[key] = matrix.cells.get(key, 0) + 1
        return matrix

    # -- figure 11 ----------------------------------------------------------------------

    def export_openness_by_policy(
        self,
        reachabilities: Mapping[str, Mapping[int, MemberReachability]],
        rs_members: Mapping[str, Sequence[int]],
    ) -> Dict[str, List[float]]:
        """Figure 11: per self-reported policy, the list of per-(member,
        IXP) fractions of RS members allowed to receive routes."""
        result: Dict[str, List[float]] = {}
        for ixp_name, per_member in reachabilities.items():
            members = list(rs_members.get(ixp_name, []))
            if not members:
                continue
            for asn, reachability in per_member.items():
                policy = self.peeringdb.policy_of(asn)
                if policy is PeeringPolicy.UNKNOWN:
                    continue
                openness = reachability.openness(members)
                result.setdefault(policy.value, []).append(openness)
        return result

    def export_openness_from_matrix(
        self,
        matrix,
        rs_members: Optional[Mapping[str, Sequence[int]]] = None,
    ) -> Dict[str, List[float]]:
        """Figure 11 from the shared
        :class:`~repro.runtime.reachmatrix.ReachabilityMatrix` artifact.

        Pass *rs_members* (the populations the object path is called
        with) to reproduce :meth:`export_openness_by_policy` exactly —
        the plane then answers from the exact merged policy.  Without
        it, the population defaults to each plane's member universe
        (answered from the row popcount), which can be a superset of a
        ground-truth RS-member list when the looking-glass summary
        surfaced additional members.
        """
        result: Dict[str, List[float]] = {}
        for ixp_name in sorted(matrix.planes):
            plane = matrix.planes[ixp_name]
            if rs_members is not None:
                members = list(rs_members.get(ixp_name, []))
                if not members:
                    continue
            else:
                members = None
                if not plane.num_members:
                    continue
            universe = plane.index.universe
            for bit in sorted(plane.policies):
                asn = universe[bit]
                policy = self.peeringdb.policy_of(asn)
                if policy is PeeringPolicy.UNKNOWN:
                    continue
                result.setdefault(policy.value, []).append(
                    plane.openness(asn, members))
        return result

    @staticmethod
    def mean_openness(openness_by_policy: Mapping[str, Sequence[float]]
                      ) -> Dict[str, float]:
        """Mean export openness per policy (figure 11's 96.7/80.4/69.2%)."""
        return {
            policy: (sum(values) / len(values) if values else 0.0)
            for policy, values in openness_by_policy.items()
        }

    @staticmethod
    def binary_pattern_fraction(openness_by_policy: Mapping[str, Sequence[float]],
                                low: float = 0.10, high: float = 0.90) -> float:
        """Fraction of (member, IXP) pairs whose openness is either below
        *low* or above *high* — the binary pattern of figure 11."""
        values = [v for series in openness_by_policy.values() for v in series]
        if not values:
            return 0.0
        binary = sum(1 for v in values if v <= low or v >= high)
        return binary / len(values)
