"""Global IXP peering estimation (section 5.7).

Given per-IXP member counts, pricing models and route-server
availability, the paper estimates the number of IXP peerings using
peering-density assumptions: 70% for flat-fee IXPs with route servers,
60% for usage-based IXPs with route servers, 50% for IXPs without route
servers, and 40% for (for-profit) North American IXPs.  The unique-link
estimate discounts the maximal possible overlap between IXPs that share
members.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple


@dataclass
class IXPEstimate:
    """Inputs and outcome of the estimation for a single IXP."""

    name: str
    members: int
    region: str = "europe"                 #: "europe", "north-america", ...
    pricing: str = "flat"                  #: "flat" or "usage"
    has_route_server: bool = True
    #: Member ASNs when known (enables exact overlap accounting).
    member_asns: Optional[Set[int]] = None
    density: float = 0.0
    estimated_links: int = 0

    def possible_links(self) -> int:
        """Full-mesh link count for the IXP."""
        return self.members * (self.members - 1) // 2


@dataclass
class EstimationReport:
    """Aggregate estimation across all IXPs."""

    estimates: List[IXPEstimate] = field(default_factory=list)
    total_ixp_peerings: int = 0
    unique_peerings: int = 0

    def by_region(self) -> Dict[str, int]:
        """Estimated peerings per region."""
        result: Dict[str, int] = {}
        for estimate in self.estimates:
            result[estimate.region] = result.get(estimate.region, 0) \
                + estimate.estimated_links
        return result

    def summary(self) -> Dict[str, int]:
        """Headline numbers (global peerings and unique AS peerings)."""
        return {
            "ixps": len(self.estimates),
            "total_ixp_peerings": self.total_ixp_peerings,
            "unique_peerings": self.unique_peerings,
        }


def measured_densities(matrix) -> Dict[str, Dict[str, float]]:
    """Per-IXP measured peering densities from the shared
    :class:`~repro.runtime.reachmatrix.ReachabilityMatrix` artifact.

    The estimator of section 5.7 *assumes* densities (70% flat-fee RS,
    60% usage-based, ...); this view computes what the inference
    actually measured — the exchange-level link density over the
    member universe and the mean per-member density among members with
    at least one inferred link — so the assumption can be sanity
    checked against the reconstruction (the paper reports 0.79-0.95 at
    the IXPs with full connectivity data).
    """
    from repro.analysis.density import member_densities

    result: Dict[str, Dict[str, float]] = {}
    for ixp_name in sorted(matrix.planes):
        plane = matrix.planes[ixp_name]
        num_members = plane.num_members
        possible = num_members * (num_members - 1) // 2
        links = matrix.links_of(ixp_name)
        densities = [density for density in member_densities(
            links, plane.index.universe).values() if density > 0.0]
        result[ixp_name] = {
            "members": float(num_members),
            "links": float(len(links)),
            "link_density": (len(links) / possible) if possible else 0.0,
            "mean_member_density": (sum(densities) / len(densities)
                                    if densities else 0.0),
        }
    return result


def estimates_from_matrix(matrix, region: str = "europe",
                          pricing_by_ixp: Optional[Mapping[str, str]] = None
                          ) -> List[IXPEstimate]:
    """IXPEstimate rows for the measured IXPs of a reachability matrix
    (member universes attached, enabling exact overlap accounting)."""
    pricing_by_ixp = dict(pricing_by_ixp or {})
    estimates = []
    for ixp_name in sorted(matrix.planes):
        plane = matrix.planes[ixp_name]
        estimates.append(IXPEstimate(
            name=ixp_name,
            members=plane.num_members,
            region=region,
            pricing=pricing_by_ixp.get(ixp_name, "flat"),
            has_route_server=True,
            member_asns=set(plane.index.universe),
        ))
    return estimates


class GlobalEstimator:
    """Apply the density assumptions of section 5.7."""

    def __init__(
        self,
        density_flat_with_rs: float = 0.70,
        density_usage_with_rs: float = 0.60,
        density_without_rs: float = 0.50,
        density_north_america: float = 0.40,
        density_cap: Optional[float] = None,
    ) -> None:
        self.density_flat_with_rs = density_flat_with_rs
        self.density_usage_with_rs = density_usage_with_rs
        self.density_without_rs = density_without_rs
        self.density_north_america = density_north_america
        #: Optional conservative cap (the paper's 60%-everywhere variant).
        self.density_cap = density_cap

    # -- densities -----------------------------------------------------------------------

    def density_for(self, estimate: IXPEstimate) -> float:
        """Peering density assumed for *estimate*."""
        if estimate.region == "north-america":
            density = self.density_north_america
        elif not estimate.has_route_server:
            density = self.density_without_rs
        elif estimate.pricing == "usage":
            density = self.density_usage_with_rs
        else:
            density = self.density_flat_with_rs
        if self.density_cap is not None:
            density = min(density, self.density_cap)
        return density

    # -- estimation ----------------------------------------------------------------------

    def estimate(self, ixps: Iterable[IXPEstimate]) -> EstimationReport:
        """Estimate global and unique IXP peering counts."""
        report = EstimationReport()
        for estimate in ixps:
            estimate.density = self.density_for(estimate)
            estimate.estimated_links = int(round(
                estimate.possible_links() * estimate.density))
            report.estimates.append(estimate)
        report.total_ixp_peerings = sum(e.estimated_links for e in report.estimates)
        report.unique_peerings = self._unique_links(report.estimates)
        return report

    def _unique_links(self, estimates: Sequence[IXPEstimate]) -> int:
        """Discount the maximal possible overlap between co-located members.

        When member ASNs are known the overlap is computed exactly as the
        densest-IXP coverage of each shared pair; otherwise a pairwise
        upper bound on overlap is subtracted (the paper's 'highest possible
        link overlap' assumption).
        """
        if all(e.member_asns for e in estimates):
            covered: Dict[Tuple[int, int], float] = {}
            for estimate in estimates:
                members = sorted(estimate.member_asns or ())
                for i, a in enumerate(members):
                    for b in members[i + 1:]:
                        pair = (a, b)
                        covered[pair] = max(covered.get(pair, 0.0), estimate.density)
            return int(round(sum(covered.values())))

        total = sum(e.estimated_links for e in estimates)
        overlap = 0
        ordered = sorted(estimates, key=lambda e: -e.members)
        for i, first in enumerate(ordered):
            for second in ordered[i + 1:]:
                shared_members = min(first.members, second.members) // 2
                shared_possible = shared_members * (shared_members - 1) // 2
                overlap += int(shared_possible *
                               min(first.density, second.density) * 0.5)
        # The pairwise bound over-counts when many IXPs share members; the
        # paper's own estimate keeps roughly three quarters of the links, so
        # cap the discount at 40% of the total.
        overlap = min(overlap, int(total * 0.4))
        return max(0, total - overlap)
