"""Repeller analysis (section 5.5, figure 13).

A *repeller* is an RS member blocked by other members' EXCLUDE
communities.  The paper finds 570 of 1,363 members blocked at least once,
that global networks are the most-blocked (more potential blockers), that
77% of EXCLUDEs target an AS inside the blocker's customer cone or a
content hypergiant reached over private peering, and that Google's AS is
the single most blocked network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.reachability import MemberReachability
from repro.registries.peeringdb import PeeringDB
from repro.topology.as_graph import GeographicScope


@dataclass
class RepellerReport:
    """Blocking statistics across all route servers."""

    #: blocked ASN -> number of (blocker, IXP) pairs excluding it
    blocking_frequency: Dict[int, int] = field(default_factory=dict)
    #: blocked ASN -> set of distinct blockers
    blockers: Dict[int, Set[int]] = field(default_factory=dict)
    #: total number of EXCLUDE applications observed
    total_exclusions: int = 0
    #: exclusions where the blocked AS is in the blocker's customer cone
    customer_cone_exclusions: int = 0
    #: exclusions where the blocker is a provider of the blocked AS
    provider_blocks_customer: int = 0

    @property
    def num_repellers(self) -> int:
        """Number of ASes blocked at least once."""
        return len(self.blocking_frequency)

    def top_repellers(self, count: int = 10) -> List[Tuple[int, int]]:
        """The most-blocked ASes as (asn, times blocked)."""
        ranked = sorted(self.blocking_frequency.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:count]

    def fraction_customer_cone(self) -> float:
        """Fraction of EXCLUDEs targeting an AS in the blocker's cone (77%)."""
        if not self.total_exclusions:
            return 0.0
        return self.customer_cone_exclusions / self.total_exclusions

    def fraction_provider_blocks_customer(self) -> float:
        """Fraction of EXCLUDEs set by a provider against a direct customer
        co-located at the same route server (12%)."""
        if not self.total_exclusions:
            return 0.0
        return self.provider_blocks_customer / self.total_exclusions

    def by_geographic_scope(self, peeringdb: PeeringDB) -> Dict[str, List[int]]:
        """Figure 13: blocking frequencies grouped by the repeller's scope."""
        result: Dict[str, List[int]] = {}
        for asn, frequency in self.blocking_frequency.items():
            scope = peeringdb.scope_of(asn)
            result.setdefault(scope.value, []).append(frequency)
        for values in result.values():
            values.sort(reverse=True)
        return result


class RepellerAnalysis:
    """Derive repeller statistics from reconstructed reachabilities."""

    def __init__(
        self,
        customer_cone: Optional[Callable[[int], Set[int]]] = None,
        direct_customers: Optional[Callable[[int], Set[int]]] = None,
    ) -> None:
        self.customer_cone = customer_cone
        self.direct_customers = direct_customers

    def analyse(
        self,
        reachabilities_by_ixp: Mapping[str, Mapping[int, MemberReachability]],
        rs_members_by_ixp: Mapping[str, Iterable[int]],
    ) -> RepellerReport:
        """Count EXCLUDE applications across every route server."""
        report = RepellerReport()
        for ixp_name, per_member in reachabilities_by_ixp.items():
            members = set(rs_members_by_ixp.get(ixp_name, ()))
            per_blocker = ((blocker, reachability.mode, reachability.listed)
                           for blocker, reachability in per_member.items())
            self._count_exclusions(report, per_blocker, members)
        return report

    def analyse_matrix(
        self,
        matrix,
        rs_members_by_ixp: Optional[Mapping[str, Iterable[int]]] = None,
    ) -> RepellerReport:
        """Repeller statistics from the shared
        :class:`~repro.runtime.reachmatrix.ReachabilityMatrix` artifact.

        Each plane carries the exact merged ``(mode, listed)`` policy
        per covered member, so with an explicit *rs_members_by_ixp* the
        counting is identical to :meth:`analyse` over the inference
        result's reachability objects.  Without it, the population
        defaults to each plane's member universe — which can be a
        superset of a ground-truth RS-member list when the
        looking-glass summary surfaced additional members.
        """
        report = RepellerReport()
        for ixp_name in sorted(matrix.planes):
            plane = matrix.planes[ixp_name]
            if rs_members_by_ixp is not None:
                members = set(rs_members_by_ixp.get(ixp_name, ()))
            else:
                members = set(plane.index.universe)
            universe = plane.index.universe
            per_blocker = ((universe[bit], mode, listed)
                           for bit, (mode, listed)
                           in plane.policies.items())
            self._count_exclusions(report, per_blocker, members)
        return report

    def _count_exclusions(self, report: RepellerReport, per_blocker,
                          members: Set[int]) -> None:
        """Fold (blocker, mode, listed) rows into the report."""
        for blocker, mode, listed in per_blocker:
            if mode != "all-except":
                continue
            blocked_members = set(listed) & members
            for blocked in blocked_members:
                report.total_exclusions += 1
                report.blocking_frequency[blocked] = \
                    report.blocking_frequency.get(blocked, 0) + 1
                report.blockers.setdefault(blocked, set()).add(blocker)
                if self.customer_cone is not None and \
                        blocked in self.customer_cone(blocker):
                    report.customer_cone_exclusions += 1
                if self.direct_customers is not None and \
                        blocked in self.direct_customers(blocker):
                    report.provider_blocks_customer += 1
