"""Customer-degree distributions of the inferred links (figure 7).

For every inferred p2p link the analysis looks at the customer degrees of
the two endpoints and reports, per link, the smaller and the larger of
the two.  The paper's findings: 12.4% of links are between two stubs,
55.6% involve at least one stub, and 58.1% involve an AS with at most 10
customers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

Link = Tuple[int, int]


@dataclass
class LinkDegreeStats:
    """Aggregate degree statistics over a set of links."""

    smallest_degrees: List[int] = field(default_factory=list)
    largest_degrees: List[int] = field(default_factory=list)

    @property
    def num_links(self) -> int:
        """Number of links analysed."""
        return len(self.smallest_degrees)

    def fraction_stub_stub(self) -> float:
        """Fraction of links between two stub ASes (both degrees zero)."""
        if not self.num_links:
            return 0.0
        count = sum(1 for degree in self.largest_degrees if degree == 0)
        return count / self.num_links

    def fraction_with_stub(self) -> float:
        """Fraction of links involving at least one stub AS."""
        if not self.num_links:
            return 0.0
        count = sum(1 for degree in self.smallest_degrees if degree == 0)
        return count / self.num_links

    def fraction_small_degree(self, threshold: int = 10) -> float:
        """Fraction of links involving an AS with at most *threshold* customers."""
        if not self.num_links:
            return 0.0
        count = sum(1 for degree in self.smallest_degrees if degree <= threshold)
        return count / self.num_links

    def cdf(self, which: str = "smallest",
            points: Sequence[int] = (0, 1, 2, 5, 10, 20, 50, 100, 500, 1000)
            ) -> List[Tuple[int, float]]:
        """CDF of the chosen degree series at the given evaluation points."""
        series = self.smallest_degrees if which == "smallest" else self.largest_degrees
        if not series:
            return [(point, 0.0) for point in points]
        total = len(series)
        return [(point, sum(1 for d in series if d <= point) / total)
                for point in points]

    def summary(self) -> Dict[str, float]:
        """The three headline fractions of figure 7."""
        return {
            "links": float(self.num_links),
            "stub_stub": self.fraction_stub_stub(),
            "involves_stub": self.fraction_with_stub(),
            "small_degree": self.fraction_small_degree(10),
        }


class DegreeAnalysis:
    """Compute figure 7 from a link set and a customer-degree function."""

    def __init__(self, customer_degree: Callable[[int], int]) -> None:
        self.customer_degree = customer_degree

    @classmethod
    def from_mapping(cls, degrees: Mapping[int, int]) -> "DegreeAnalysis":
        """Build from a plain ASN -> degree mapping (unknown ASes get 0)."""
        return cls(lambda asn: degrees.get(asn, 0))

    def analyse(self, links: Iterable[Link]) -> LinkDegreeStats:
        """Compute per-link smallest/largest customer degrees."""
        stats = LinkDegreeStats()
        for a, b in links:
            degree_a = self.customer_degree(a)
            degree_b = self.customer_degree(b)
            stats.smallest_degrees.append(min(degree_a, degree_b))
            stats.largest_degrees.append(max(degree_a, degree_b))
        return stats

    def analyse_matrix(self, matrix) -> LinkDegreeStats:
        """Figure 7 from the shared
        :class:`~repro.runtime.reachmatrix.ReachabilityMatrix` artifact
        (its memoised de-duplicated global link set)."""
        return self.analyse(matrix.all_links())
