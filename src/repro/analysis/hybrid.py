"""Hybrid relationship detection (section 5.6).

1,230 of the RS links visible in passive BGP data are inferred as
provider-customer by the CAIDA relationship algorithm; the paper
cross-checks relationship-tagging communities to conclude that many are
genuine location-specific hybrid p2p/p2c relationships.  This module
finds the candidate pairs (an inferred MLP link whose endpoints also have
a c2p relationship) and classifies them with whatever relationship
evidence is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.bgp.policy import Relationship

Link = Tuple[int, int]


@dataclass
class HybridCandidate:
    """An inferred MLP link whose endpoints also have a transit relationship."""

    link: Link
    customer: int
    provider: int
    ixps: Tuple[str, ...] = ()
    confirmed_hybrid: bool = False


@dataclass
class HybridReport:
    """Outcome of the hybrid-relationship analysis."""

    candidates: List[HybridCandidate] = field(default_factory=list)

    @property
    def num_candidates(self) -> int:
        """Number of MLP links that overlap a c2p relationship."""
        return len(self.candidates)

    @property
    def confirmed(self) -> List[HybridCandidate]:
        """Candidates confirmed as location-specific hybrid relationships."""
        return [c for c in self.candidates if c.confirmed_hybrid]

    @property
    def num_confirmed(self) -> int:
        """Number of confirmed hybrid relationships."""
        return len(self.confirmed)

    def summary(self) -> Dict[str, int]:
        """Compact summary for reports."""
        return {
            "candidates": self.num_candidates,
            "confirmed": self.num_confirmed,
        }


class HybridRelationshipAnalysis:
    """Find MLP links that coexist with provider-customer relationships."""

    def __init__(
        self,
        relationship: Callable[[int, int], Optional[Relationship]],
        hybrid_evidence: Optional[Callable[[Link], bool]] = None,
    ) -> None:
        #: relationship(local, remote) -> how *local* sees *remote*.
        self.relationship = relationship
        #: Optional oracle standing in for relationship-tagging communities.
        self.hybrid_evidence = hybrid_evidence

    def analyse_matrix(self, matrix) -> HybridReport:
        """Section 5.6 from the shared
        :class:`~repro.runtime.reachmatrix.ReachabilityMatrix` artifact:
        the memoised global link set plus its per-link IXP provenance
        (no per-figure rebuild of the link -> IXPs mapping)."""
        return self.analyse(matrix.all_links(), matrix.link_ixps())

    def analyse(
        self,
        mlp_links: Iterable[Link],
        link_ixps: Optional[Mapping[Link, Iterable[str]]] = None,
    ) -> HybridReport:
        """Classify every MLP link that overlaps a c2p relationship."""
        link_ixps = dict(link_ixps or {})
        report = HybridReport()
        for link in sorted({(min(l), max(l)) for l in mlp_links}):
            a, b = link
            rel_ab = self.relationship(a, b)
            if rel_ab is Relationship.CUSTOMER:
                customer, provider = b, a
            elif rel_ab is Relationship.PROVIDER:
                customer, provider = a, b
            else:
                continue
            candidate = HybridCandidate(
                link=link,
                customer=customer,
                provider=provider,
                ixps=tuple(sorted(link_ixps.get(link, ()))),
            )
            if self.hybrid_evidence is not None:
                candidate.confirmed_hybrid = bool(self.hybrid_evidence(link))
            report.candidates.append(candidate)
        return report
