"""Prefix announcement multiplicity (figure 5).

Figure 5 plots the CCDF of the number of RS members advertising a given
prefix to the DE-CIX route server; 48.4% of prefixes were announced by
more than one member, which is what makes the shared-prefix query
optimisation of section 4.3 effective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.bgp.prefix import Prefix
from repro.ixp.route_server import RouteServer


@dataclass
class PrefixStats:
    """Multiplicity distribution of prefixes at one route server."""

    ixp_name: str
    #: prefix -> number of members announcing it
    multiplicity: Dict[Prefix, int] = field(default_factory=dict)

    @property
    def num_prefixes(self) -> int:
        """Number of distinct prefixes."""
        return len(self.multiplicity)

    def fraction_multi_member(self) -> float:
        """Fraction of prefixes announced by more than one member."""
        if not self.multiplicity:
            return 0.0
        multi = sum(1 for count in self.multiplicity.values() if count > 1)
        return multi / len(self.multiplicity)

    def ccdf(self, max_members: int = 10) -> List[Tuple[int, float]]:
        """CCDF points: (k, fraction of prefixes announced by > k members)."""
        if not self.multiplicity:
            return [(k, 0.0) for k in range(max_members + 1)]
        total = len(self.multiplicity)
        points = []
        for k in range(max_members + 1):
            above = sum(1 for count in self.multiplicity.values() if count > k)
            points.append((k, above / total))
        return points

    def histogram(self) -> Dict[int, int]:
        """Number of prefixes per multiplicity value."""
        result: Dict[int, int] = {}
        for count in self.multiplicity.values():
            result[count] = result.get(count, 0) + 1
        return result


def prefix_stats_for_route_server(route_server: RouteServer) -> PrefixStats:
    """Compute the multiplicity distribution of a route server's RIB."""
    stats = PrefixStats(ixp_name=route_server.ixp_name)
    for prefix in route_server.prefixes():
        stats.multiplicity[prefix] = len(route_server.members_announcing(prefix))
    return stats


def prefix_multiplicity_ccdf(
    announced_prefixes: Mapping[int, Sequence[Prefix]],
    ixp_name: str = "",
    max_members: int = 10,
) -> List[Tuple[int, float]]:
    """CCDF from a member -> announced prefixes mapping (figure 5)."""
    stats = PrefixStats(ixp_name=ixp_name)
    for prefixes in announced_prefixes.values():
        for prefix in set(prefixes):
            stats.multiplicity[prefix] = stats.multiplicity.get(prefix, 0) + 1
    return stats.ccdf(max_members)
