"""Evaluation-section analyses (section 5 of the paper).

Each module reproduces one figure or analysis: prefix-announcement CCDF
(figure 5), visibility comparison against passive/active topology data
(figure 6), customer-degree distributions (figure 7), peering-policy
joins (figures 9-11), peering density (figure 12), repellers (figure 13),
hybrid relationships (section 5.6) and the global peering estimation
(section 5.7).
"""

from repro.analysis.prefix_stats import prefix_multiplicity_ccdf, PrefixStats
from repro.analysis.visibility import VisibilityAnalysis, VisibilityReport
from repro.analysis.degrees import DegreeAnalysis, LinkDegreeStats
from repro.analysis.policies import PolicyAnalysis, ParticipationByPolicy, MultiIXPMatrix
from repro.analysis.density import density_per_ixp, DensityReport
from repro.analysis.repellers import RepellerAnalysis, RepellerReport
from repro.analysis.hybrid import HybridRelationshipAnalysis, HybridReport
from repro.analysis.estimation import GlobalEstimator, IXPEstimate, EstimationReport

__all__ = [
    "prefix_multiplicity_ccdf",
    "PrefixStats",
    "VisibilityAnalysis",
    "VisibilityReport",
    "DegreeAnalysis",
    "LinkDegreeStats",
    "PolicyAnalysis",
    "ParticipationByPolicy",
    "MultiIXPMatrix",
    "density_per_ixp",
    "DensityReport",
    "RepellerAnalysis",
    "RepellerReport",
    "HybridRelationshipAnalysis",
    "HybridReport",
    "GlobalEstimator",
    "IXPEstimate",
    "EstimationReport",
]
