"""IPv4 prefix model.

A small, hashable, allocation-friendly prefix type.  The library allocates
hundreds of thousands of route objects when simulating collector feeds, so
the prefix is a slotted immutable object built around a packed integer
network address rather than :mod:`ipaddress` objects.
"""

from __future__ import annotations

from typing import Iterator, Tuple


def _parse_ipv4(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"invalid IPv4 address {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"invalid IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


def _format_ipv4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class Prefix:
    """An IPv4 prefix such as ``192.0.2.0/24``.

    Instances are immutable, hashable and totally ordered (by network
    address, then by prefix length), which makes them usable as dictionary
    keys throughout RIBs, route servers and collectors.
    """

    __slots__ = ("_network", "_length")

    def __init__(self, network: int, length: int) -> None:
        if not 0 <= length <= 32:
            raise ValueError(f"invalid prefix length {length}")
        if not 0 <= network <= 0xFFFFFFFF:
            raise ValueError(f"invalid network address {network}")
        mask = self._mask(length)
        object.__setattr__(self, "_network", network & mask)
        object.__setattr__(self, "_length", length)

    # -- constructors ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` (or a bare address, meaning /32)."""
        text = text.strip()
        if "/" in text:
            addr, _, length_text = text.partition("/")
            if not length_text.isdigit():
                raise ValueError(f"invalid prefix {text!r}")
            length = int(length_text)
        else:
            addr, length = text, 32
        return cls(_parse_ipv4(addr), length)

    @classmethod
    def from_octets(cls, a: int, b: int, c: int, d: int, length: int) -> "Prefix":
        """Build a prefix from four octets and a length."""
        for octet in (a, b, c, d):
            if not 0 <= octet <= 255:
                raise ValueError("octet out of range")
        return cls((a << 24) | (b << 16) | (c << 8) | d, length)

    # -- accessors ---------------------------------------------------------

    @property
    def network(self) -> int:
        """Packed 32-bit network address (host bits zeroed)."""
        return self._network

    @property
    def length(self) -> int:
        """Prefix length in bits."""
        return self._length

    @property
    def network_address(self) -> str:
        """Dotted-quad network address."""
        return _format_ipv4(self._network)

    @property
    def broadcast(self) -> int:
        """Packed address of the last host in the prefix."""
        return self._network | (0xFFFFFFFF >> self._length if self._length else 0xFFFFFFFF)

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self._length)

    @staticmethod
    def _mask(length: int) -> int:
        if length == 0:
            return 0
        return (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF

    # -- relations ---------------------------------------------------------

    def contains(self, other: "Prefix") -> bool:
        """Return True if *other* is equal to or more specific than self."""
        if other._length < self._length:
            return False
        return (other._network & self._mask(self._length)) == self._network

    def contains_address(self, address: int) -> bool:
        """Return True if the packed *address* falls inside the prefix."""
        return (address & self._mask(self._length)) == self._network

    def overlaps(self, other: "Prefix") -> bool:
        """Return True if the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def supernet(self) -> "Prefix":
        """Return the immediately covering prefix (one bit shorter)."""
        if self._length == 0:
            raise ValueError("0.0.0.0/0 has no supernet")
        return Prefix(self._network, self._length - 1)

    def subnets(self) -> Tuple["Prefix", "Prefix"]:
        """Split into the two immediately more-specific prefixes."""
        if self._length >= 32:
            raise ValueError("/32 cannot be subdivided")
        length = self._length + 1
        low = Prefix(self._network, length)
        high = Prefix(self._network | (1 << (32 - length)), length)
        return low, high

    def hosts(self, limit: int = 256) -> Iterator[str]:
        """Yield up to *limit* dotted-quad host addresses inside the prefix."""
        count = min(limit, self.num_addresses)
        for offset in range(count):
            yield _format_ipv4(self._network + offset)

    # -- dunder ------------------------------------------------------------

    def __str__(self) -> str:
        return f"{self.network_address}/{self._length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __hash__(self) -> int:
        return hash((self._network, self._length))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self._network == other._network and self._length == other._length

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._network, self._length) < (other._network, other._length)

    def __le__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._network, self._length) <= (other._network, other._length)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix is immutable")

    def __reduce__(self):
        # __setattr__ is blocked, so slot-state pickling cannot restore
        # instances; rebuild through the constructor instead.
        return (Prefix, (self._network, self._length))
