"""BGP substrate: the protocol-level building blocks used by the paper.

This package provides the data-plane-free model of BGP that everything
else is built on: ASNs, IPv4 prefixes, the community attribute, routes,
RIBs with the BGP decision process, Gao-Rexford import/export policies,
and a valley-free propagation engine that produces the AS paths (with
transitive communities) observed by route collectors and looking glasses.
"""

from repro.bgp.asn import (
    AS_TRANS,
    PRIVATE_ASN_RANGE,
    PRIVATE_ASN_32BIT_RANGE,
    is_private_asn,
    is_reserved_asn,
    is_routable_asn,
    is_32bit_asn,
    Private16BitMapper,
)
from repro.bgp.prefix import Prefix
from repro.bgp.communities import Community
from repro.bgp.attributes import ASPath, Origin
from repro.bgp.route import Route
from repro.bgp.rib import AdjRIBIn, LocRIB, RIB
from repro.bgp.policy import (
    Relationship,
    export_allowed,
    default_local_pref,
    ImportPolicy,
    ExportPolicy,
)
from repro.bgp.session import Session, SessionType
from repro.bgp.messages import UpdateMessage, WithdrawMessage
from repro.bgp.propagation import PropagationEngine, PropagationResult

__all__ = [
    "AS_TRANS",
    "PRIVATE_ASN_RANGE",
    "PRIVATE_ASN_32BIT_RANGE",
    "is_private_asn",
    "is_reserved_asn",
    "is_routable_asn",
    "is_32bit_asn",
    "Private16BitMapper",
    "Prefix",
    "Community",
    "ASPath",
    "Origin",
    "Route",
    "AdjRIBIn",
    "LocRIB",
    "RIB",
    "Relationship",
    "export_allowed",
    "default_local_pref",
    "ImportPolicy",
    "ExportPolicy",
    "Session",
    "SessionType",
    "UpdateMessage",
    "WithdrawMessage",
    "PropagationEngine",
    "PropagationResult",
]
