"""BGP UPDATE / WITHDRAW message objects.

Collectors archive both periodic table dumps and streams of update
messages; the paper accumulates "daily BGP table dumps and update
messages ... for 1-7 May 2013" and filters transient paths.  These light
message objects carry the timestamp needed for that filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.bgp.attributes import ASPath
from repro.bgp.communities import Community
from repro.bgp.prefix import Prefix


@dataclass(frozen=True)
class UpdateMessage:
    """A BGP announcement observed by a collector.

    ``peer_asn`` is the vantage point (the collector's direct neighbour),
    ``timestamp`` is in seconds since the start of the measurement window.
    """

    timestamp: float
    peer_asn: int
    prefix: Prefix
    as_path: ASPath
    communities: FrozenSet[Community] = frozenset()
    collector: Optional[str] = None

    @property
    def origin_asn(self) -> int:
        """Origin AS of the announced route."""
        return self.as_path.origin_asn

    def is_clean(self) -> bool:
        """True if the AS path passes the reserved-ASN and cycle filters."""
        return self.as_path.is_clean()


@dataclass(frozen=True)
class WithdrawMessage:
    """A BGP withdrawal observed by a collector."""

    timestamp: float
    peer_asn: int
    prefix: Prefix
    collector: Optional[str] = None


@dataclass(frozen=True)
class RibEntry:
    """One row of a collector RIB dump (MRT TABLE_DUMP_V2 equivalent)."""

    peer_asn: int
    prefix: Prefix
    as_path: ASPath
    communities: FrozenSet[Community] = frozenset()
    collector: Optional[str] = None
    timestamp: float = 0.0

    @property
    def origin_asn(self) -> int:
        """Origin AS of the dumped route."""
        return self.as_path.origin_asn

    def is_clean(self) -> bool:
        """True if the AS path passes the reserved-ASN and cycle filters."""
        return self.as_path.is_clean()

    def key(self) -> Tuple[int, Prefix]:
        """(vantage point, prefix) identity of the entry."""
        return (self.peer_asn, self.prefix)
