"""Routing Information Bases and the BGP decision process.

Three views are modelled, matching what the paper's measurement targets
expose:

* :class:`AdjRIBIn` — all routes received from neighbours, per prefix and
  per neighbour.  Looking glasses configured to *display all paths* show
  this view (figure 8's circles).
* :class:`LocRIB` — only the best route per prefix after the decision
  process.  Looking glasses that *display only the best path* show this
  view (figure 8's triangles), which is why some genuine links fail
  validation.
* :class:`RIB` — the combination used by BGP speakers in the propagation
  engine and by route servers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.bgp.prefix import Prefix
from repro.bgp.route import Route


class AdjRIBIn:
    """All routes learned from neighbours, keyed by (prefix, neighbour)."""

    def __init__(self) -> None:
        self._routes: Dict[Prefix, Dict[int, Route]] = {}

    def add(self, route: Route) -> None:
        """Insert or replace the route from ``route.learned_from``."""
        neighbour = route.learned_from if route.learned_from is not None else -1
        self._routes.setdefault(route.prefix, {})[neighbour] = route

    def withdraw(self, prefix: Prefix, neighbour: int) -> bool:
        """Remove the route for *prefix* learned from *neighbour*."""
        per_prefix = self._routes.get(prefix)
        if not per_prefix or neighbour not in per_prefix:
            return False
        del per_prefix[neighbour]
        if not per_prefix:
            del self._routes[prefix]
        return True

    def routes_for(self, prefix: Prefix) -> List[Route]:
        """All routes for *prefix*, best first."""
        per_prefix = self._routes.get(prefix, {})
        return sorted(per_prefix.values(), key=Route.selection_key)

    def prefixes(self) -> List[Prefix]:
        """All prefixes with at least one route."""
        return list(self._routes)

    def __len__(self) -> int:
        return sum(len(per_prefix) for per_prefix in self._routes.values())

    def __iter__(self) -> Iterator[Route]:
        for per_prefix in self._routes.values():
            yield from per_prefix.values()


class LocRIB:
    """Best route per prefix (the Loc-RIB)."""

    def __init__(self) -> None:
        self._best: Dict[Prefix, Route] = {}

    def install(self, route: Route) -> None:
        """Install *route* as the best route for its prefix."""
        self._best[route.prefix] = route

    def remove(self, prefix: Prefix) -> None:
        """Remove the best route for *prefix* if present."""
        self._best.pop(prefix, None)

    def best(self, prefix: Prefix) -> Optional[Route]:
        """The best route for *prefix*, or None."""
        return self._best.get(prefix)

    def prefixes(self) -> List[Prefix]:
        """All prefixes with an installed best route."""
        return list(self._best)

    def __len__(self) -> int:
        return len(self._best)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._best.values())

    def items(self) -> Iterator[Tuple[Prefix, Route]]:
        """Iterate over (prefix, best route) pairs."""
        return iter(self._best.items())


class RIB:
    """A full RIB: Adj-RIB-In plus a Loc-RIB kept consistent on update."""

    def __init__(self) -> None:
        self.adj_rib_in = AdjRIBIn()
        self.loc_rib = LocRIB()

    def update(self, route: Route) -> bool:
        """Insert *route*; returns True if the best path for the prefix
        changed (i.e. the route should be re-advertised downstream)."""
        previous = self.loc_rib.best(route.prefix)
        self.adj_rib_in.add(route)
        best = self._decide(route.prefix)
        if best is None:
            return False
        self.loc_rib.install(best)
        return previous is None or best != previous

    def withdraw(self, prefix: Prefix, neighbour: int) -> bool:
        """Withdraw the route from *neighbour*; returns True if the best
        path changed or disappeared."""
        removed = self.adj_rib_in.withdraw(prefix, neighbour)
        if not removed:
            return False
        previous = self.loc_rib.best(prefix)
        best = self._decide(prefix)
        if best is None:
            self.loc_rib.remove(prefix)
            return previous is not None
        self.loc_rib.install(best)
        return best != previous

    def _decide(self, prefix: Prefix) -> Optional[Route]:
        candidates = self.adj_rib_in.routes_for(prefix)
        if not candidates:
            return None
        return candidates[0]

    def best(self, prefix: Prefix) -> Optional[Route]:
        """Best route for *prefix*."""
        return self.loc_rib.best(prefix)

    def all_paths(self, prefix: Prefix) -> List[Route]:
        """All known routes for *prefix*, best first."""
        return self.adj_rib_in.routes_for(prefix)

    def prefixes(self) -> List[Prefix]:
        """Prefixes present in the Adj-RIB-In."""
        return self.adj_rib_in.prefixes()

    def __len__(self) -> int:
        return len(self.adj_rib_in)
