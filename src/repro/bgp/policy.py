"""Routing policies: business relationships and the Gao-Rexford rules.

This module defines the relationship taxonomy the paper uses (c2p, p2p,
sibling, plus the route-server peering flavour of p2p), the valley-free
export rule, and configurable import/export policy objects attached to
BGP sessions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Set

from repro.bgp.communities import Community
from repro.bgp.prefix import Prefix


class Relationship(enum.Enum):
    """Business relationship of a neighbour *from the local AS's view*.

    ``CUSTOMER`` means the neighbour is our customer, ``PROVIDER`` means
    the neighbour is our provider.  ``RS_PEER`` is a peer reached through
    an IXP route server: economically identical to ``PEER`` but kept
    distinct so analyses can separate bilateral from multilateral peering.
    """

    CUSTOMER = "customer"
    PROVIDER = "provider"
    PEER = "peer"
    RS_PEER = "rs-peer"
    SIBLING = "sibling"

    def inverse(self) -> "Relationship":
        """The relationship as seen from the other side of the link."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return self

    @property
    def is_peering(self) -> bool:
        """True for settlement-free peering (bilateral or via route server)."""
        return self in (Relationship.PEER, Relationship.RS_PEER)


#: Default LOCAL_PREF values implementing 'prefer customer > peer > provider'.
_DEFAULT_LOCAL_PREF = {
    Relationship.CUSTOMER: 100,
    Relationship.SIBLING: 95,
    Relationship.PEER: 90,
    Relationship.RS_PEER: 85,
    Relationship.PROVIDER: 80,
}


def default_local_pref(relationship: Relationship) -> int:
    """LOCAL_PREF assigned on import for a route learned over *relationship*.

    Customers are preferred over peers, bilateral peers over route-server
    peers (the paper found 14 of 70 validation ASes assign bilateral peers
    a higher preference than RS peers), and peers over providers.
    """
    return _DEFAULT_LOCAL_PREF[relationship]


def export_allowed(learned_from: Relationship, export_to: Relationship) -> bool:
    """The Gao-Rexford / valley-free export rule.

    A route learned from a customer (or originated locally, which callers
    model as ``CUSTOMER``) may be exported to anyone; a route learned from
    a peer or provider may only be exported to customers.  Sibling links
    are transparent in both directions.
    """
    if export_to is Relationship.SIBLING:
        return True
    if learned_from in (Relationship.CUSTOMER, Relationship.SIBLING):
        return True
    return export_to is Relationship.CUSTOMER


@dataclass
class ImportPolicy:
    """Per-session import policy.

    ``local_pref`` overrides the relationship-derived default;
    ``blocked_asns`` drops any route whose origin AS is listed (AS-path
    inbound filtering, the counterpart of the paper's export filters);
    ``blocked_prefixes`` drops exact-match prefixes.
    """

    local_pref: Optional[int] = None
    blocked_asns: Set[int] = field(default_factory=set)
    blocked_prefixes: Set[Prefix] = field(default_factory=set)

    def accepts(self, prefix: Prefix, origin_asn: int) -> bool:
        """Return True if a route for *prefix* originated by *origin_asn*
        passes the import filter."""
        if origin_asn in self.blocked_asns:
            return False
        if prefix in self.blocked_prefixes:
            return False
        return True

    def effective_local_pref(self, relationship: Relationship) -> int:
        """LOCAL_PREF to assign for a route accepted on this session."""
        if self.local_pref is not None:
            return self.local_pref
        return default_local_pref(relationship)


@dataclass
class ExportPolicy:
    """Per-session export policy.

    ``announce_all`` short-circuits the valley-free restriction (used for
    sessions towards route collectors configured as customer-like full
    feeds); ``blocked_asns`` suppresses routes originated by the listed
    ASes; ``added_communities`` are attached to every exported route
    (this is how RS members tag their announcements with RS communities).
    """

    announce_all: bool = False
    blocked_asns: Set[int] = field(default_factory=set)
    blocked_prefixes: Set[Prefix] = field(default_factory=set)
    added_communities: Set[Community] = field(default_factory=set)
    strip_communities: bool = False

    def allows(
        self,
        prefix: Prefix,
        origin_asn: int,
        learned_from: Relationship,
        export_to: Relationship,
    ) -> bool:
        """Return True if the route may be exported on this session."""
        if origin_asn in self.blocked_asns:
            return False
        if prefix in self.blocked_prefixes:
            return False
        if self.announce_all:
            return True
        return export_allowed(learned_from, export_to)

    def communities_for(self, existing: Iterable[Community]) -> frozenset:
        """Community set attached to the exported route."""
        base: Set[Community] = set() if self.strip_communities else set(existing)
        base.update(self.added_communities)
        return frozenset(base)
