"""Autonomous System Number (ASN) handling.

ASNs are plain integers throughout the library.  This module provides the
classification helpers the paper relies on:

* filtering of reserved / private ASNs from AS paths (section 5 removes
  AS 23456 and the 63488-131071 block before running inference);
* detection of 32-bit ASNs, which cannot be encoded in the 16-bit
  ``peer-asn`` half of an RS community and therefore require the IXP to
  map them onto private 16-bit ASNs (section 3);
* :class:`Private16BitMapper`, the per-IXP mapping between 32-bit member
  ASNs and private 16-bit placeholder ASNs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

#: AS_TRANS, the placeholder ASN used by old BGP speakers for 32-bit ASNs.
AS_TRANS = 23456

#: 16-bit private ASN range (RFC 6996).
PRIVATE_ASN_RANGE: Tuple[int, int] = (64512, 65534)

#: 32-bit private ASN range (RFC 6996).
PRIVATE_ASN_32BIT_RANGE: Tuple[int, int] = (4200000000, 4294967294)

#: Block the paper filters out: unassigned/reserved 16-bit-adjacent space.
_RESERVED_BLOCK: Tuple[int, int] = (63488, 131071)

#: Largest valid ASN (32-bit).
MAX_ASN = 2**32 - 1


def is_32bit_asn(asn: int) -> bool:
    """Return True if *asn* does not fit in 16 bits."""
    return asn > 0xFFFF


def is_private_asn(asn: int) -> bool:
    """Return True if *asn* falls in a private-use range (RFC 6996)."""
    lo16, hi16 = PRIVATE_ASN_RANGE
    lo32, hi32 = PRIVATE_ASN_32BIT_RANGE
    return lo16 <= asn <= hi16 or lo32 <= asn <= hi32


def is_reserved_asn(asn: int) -> bool:
    """Return True if *asn* is reserved, unassigned, or otherwise should
    not appear in a public BGP AS path.

    This mirrors the paper's filtering step (section 5): AS 0, AS_TRANS
    (23456), the 63488-131071 block, 65535, 4294967295 and anything outside
    the 32-bit space are treated as reserved.
    """
    if asn <= 0 or asn > MAX_ASN:
        return True
    if asn == AS_TRANS:
        return True
    if asn == 0xFFFF or asn == MAX_ASN:
        return True
    lo, hi = _RESERVED_BLOCK
    if lo <= asn <= hi:
        return True
    return False


def is_routable_asn(asn: int) -> bool:
    """Return True if *asn* may legitimately appear in a public AS path."""
    return not is_reserved_asn(asn) and not is_private_asn(asn)


class Private16BitMapper:
    """Map 32-bit member ASNs onto private 16-bit ASNs.

    The ``peer-asn`` half of an RS community is 16 bits wide, so IXP
    operators that want their 32-bit members to be filterable allocate a
    private 16-bit ASN per such member (section 3 of the paper).  The
    mapping is bidirectional and stable for the lifetime of the mapper.
    """

    def __init__(self, start: int = PRIVATE_ASN_RANGE[0]) -> None:
        lo, hi = PRIVATE_ASN_RANGE
        if not lo <= start <= hi:
            raise ValueError(f"start {start} outside private 16-bit range")
        self._next = start
        self._forward: Dict[int, int] = {}
        self._reverse: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._forward)

    def __contains__(self, asn: int) -> bool:
        return asn in self._forward

    def __iter__(self) -> Iterator[int]:
        return iter(self._forward)

    def register(self, asn: int) -> int:
        """Register a 32-bit *asn* and return its private 16-bit alias.

        Registering the same ASN twice returns the same alias.  16-bit
        ASNs are returned unchanged (no alias needed).
        """
        if not is_32bit_asn(asn):
            return asn
        if asn in self._forward:
            return self._forward[asn]
        if self._next > PRIVATE_ASN_RANGE[1]:
            raise OverflowError("private 16-bit ASN space exhausted")
        alias = self._next
        self._next += 1
        self._forward[asn] = alias
        self._reverse[alias] = asn
        return alias

    def register_all(self, asns: Iterable[int]) -> None:
        """Register every 32-bit ASN in *asns*."""
        for asn in asns:
            self.register(asn)

    def alias_for(self, asn: int) -> int:
        """Return the alias for *asn* (identity for 16-bit ASNs).

        Raises KeyError for an unregistered 32-bit ASN.
        """
        if not is_32bit_asn(asn):
            return asn
        return self._forward[asn]

    def resolve(self, alias: int) -> int:
        """Resolve a community-encoded ASN back to the real member ASN.

        If *alias* is a registered private alias the mapped 32-bit ASN is
        returned, otherwise *alias* itself is returned (it already names
        the member directly).
        """
        return self._reverse.get(alias, alias)

    def mapping(self) -> Dict[int, int]:
        """Return a copy of the 32-bit ASN -> alias mapping."""
        return dict(self._forward)

    def try_alias_for(self, asn: int) -> Optional[int]:
        """Like :meth:`alias_for` but returns None when unregistered."""
        if not is_32bit_asn(asn):
            return asn
        return self._forward.get(asn)
