"""BGP path attributes: AS_PATH and ORIGIN.

The AS path is the primary source of AS-link data for the public
collectors the paper mines, and the attribute whose cycles / reserved
ASNs must be filtered before inference (section 5).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, List, Sequence, Set, Tuple

from repro.bgp.asn import is_routable_asn


class Origin(enum.Enum):
    """BGP ORIGIN attribute."""

    IGP = "igp"
    EGP = "egp"
    INCOMPLETE = "incomplete"


class ASPath:
    """An AS_PATH: the sequence of ASNs a route traversed.

    The first element is the AS closest to the observer (the neighbour the
    route was learned from) and the last element is the origin AS, i.e. the
    same order used in ``show ip bgp`` output and MRT dumps.
    """

    __slots__ = ("_asns", "_clean")

    def __init__(self, asns: Sequence[int] = ()) -> None:
        object.__setattr__(self, "_asns", tuple(int(a) for a in asns))
        object.__setattr__(self, "_clean", None)

    @classmethod
    def parse(cls, text: str) -> "ASPath":
        """Parse a whitespace-separated AS path string."""
        tokens = text.split()
        return cls([int(token) for token in tokens])

    @classmethod
    def from_tuple(cls, asns: Tuple[int, ...]) -> "ASPath":
        """Wrap an already-validated tuple of ints without re-coercing.

        The columnar observation plane materialises paths from interned
        column tuples whose elements are Python ints by construction;
        skipping the per-element ``int()`` pass there is measurable at
        RIB-dump scale.
        """
        path = cls.__new__(cls)
        object.__setattr__(path, "_asns", asns)
        object.__setattr__(path, "_clean", None)
        return path

    # -- accessors ---------------------------------------------------------

    @property
    def asns(self) -> Tuple[int, ...]:
        """The raw ASN sequence (observer-side first, origin last)."""
        return self._asns

    @property
    def origin_asn(self) -> int:
        """The origin AS (last element)."""
        if not self._asns:
            raise ValueError("empty AS path has no origin")
        return self._asns[-1]

    @property
    def first_hop(self) -> int:
        """The neighbour AS the route was learned from (first element)."""
        if not self._asns:
            raise ValueError("empty AS path has no first hop")
        return self._asns[0]

    def __len__(self) -> int:
        return len(self._asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self._asns)

    def __contains__(self, asn: int) -> bool:
        return asn in self._asns

    def __getitem__(self, index: int) -> int:
        return self._asns[index]

    # -- derived properties -------------------------------------------------

    def unique_asns(self) -> Set[int]:
        """Set of distinct ASNs on the path."""
        return set(self._asns)

    def deduplicated(self) -> "ASPath":
        """Collapse consecutive duplicate ASNs (AS-path prepending)."""
        collapsed: List[int] = []
        for asn in self._asns:
            if not collapsed or collapsed[-1] != asn:
                collapsed.append(asn)
        return ASPath(collapsed)

    def has_cycle(self) -> bool:
        """True if a non-consecutive ASN repetition exists (a routing loop
        or path poisoning artefact, as opposed to benign prepending)."""
        if len(set(self._asns)) == len(self._asns):
            return False
        deduped = self.deduplicated()
        return len(deduped.unique_asns()) != len(deduped)

    def has_reserved_asn(self) -> bool:
        """True if the path contains a reserved, unassigned or private ASN."""
        return any(not is_routable_asn(asn) for asn in self._asns)

    def is_clean(self) -> bool:
        """True if the path passes the paper's sanity filters: non-empty,
        no reserved/private ASNs, no cycles.

        Memoised per path object: paths are shared across RIB entries and
        days by the observation plane (one ``ASPath`` per interned path
        id), so repeated cleanliness checks are dict-free cache hits."""
        cached = self._clean
        if cached is None:
            cached = bool(self._asns) and not self.has_reserved_asn() \
                and not self.has_cycle()
            object.__setattr__(self, "_clean", cached)
        return cached

    def links(self) -> List[Tuple[int, int]]:
        """Adjacent AS pairs on the (deduplicated) path, as sorted tuples."""
        deduped = self.deduplicated()._asns
        pairs: List[Tuple[int, int]] = []
        for left, right in zip(deduped, deduped[1:]):
            if left != right:
                pairs.append((min(left, right), max(left, right)))
        return pairs

    def prepend(self, asn: int, count: int = 1) -> "ASPath":
        """Return a new path with *asn* prepended *count* times."""
        if count < 1:
            raise ValueError("prepend count must be >= 1")
        return ASPath((asn,) * count + self._asns)

    def without(self, asn: int) -> "ASPath":
        """Return a copy of the path with every occurrence of *asn* removed.

        Used to model route servers that strip their own ASN from the path
        (and, conversely, to test the 'RS ASN not removed' artefact the
        paper observed in 3 validation cases).
        """
        return ASPath(tuple(a for a in self._asns if a != asn))

    def index_of(self, asn: int) -> int:
        """Index of the first occurrence of *asn* (ValueError if absent)."""
        return self._asns.index(asn)

    # -- dunder ------------------------------------------------------------

    def __str__(self) -> str:
        return " ".join(str(a) for a in self._asns)

    def __repr__(self) -> str:
        return f"ASPath({str(self)!r})"

    def __hash__(self) -> int:
        return hash(self._asns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASPath):
            return NotImplemented
        return self._asns == other._asns

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ASPath is immutable")

    def __reduce__(self):
        # __setattr__ is blocked, so slot-state pickling cannot restore
        # instances; rebuild through the constructor instead.
        return (ASPath, (self._asns,))


def common_links(paths: Iterable[ASPath]) -> Set[Tuple[int, int]]:
    """Union of the AS links present in *paths* (sorted endpoint tuples)."""
    result: Set[Tuple[int, int]] = set()
    for path in paths:
        result.update(path.links())
    return result
