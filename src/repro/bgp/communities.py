"""The BGP community attribute (RFC 1997).

A community is a 32-bit value conventionally written ``high:low`` where
both halves are 16 bits.  Route-server communities (the paper's key data
source) encode an action in one half and a peer ASN in the other, e.g.
``0:5410`` ("do not announce to AS5410 at DE-CIX") or ``6695:8359``
("announce to AS8359 at DE-CIX").
"""

from __future__ import annotations

from typing import FrozenSet, Iterable


class Community:
    """A single ``high:low`` BGP community value."""

    __slots__ = ("_high", "_low")

    #: Well-known communities (RFC 1997).
    NO_EXPORT_VALUE = 0xFFFFFF01
    NO_ADVERTISE_VALUE = 0xFFFFFF02

    def __init__(self, high: int, low: int) -> None:
        if not 0 <= high <= 0xFFFF:
            raise ValueError(f"community high half out of range: {high}")
        if not 0 <= low <= 0xFFFF:
            raise ValueError(f"community low half out of range: {low}")
        object.__setattr__(self, "_high", high)
        object.__setattr__(self, "_low", low)

    # -- constructors ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Community":
        """Parse the canonical ``high:low`` representation."""
        text = text.strip()
        high_text, sep, low_text = text.partition(":")
        if not sep or not high_text.isdigit() or not low_text.isdigit():
            raise ValueError(f"invalid community {text!r}")
        return cls(int(high_text), int(low_text))

    @classmethod
    def from_int(cls, value: int) -> "Community":
        """Build a community from its packed 32-bit integer form."""
        if not 0 <= value <= 0xFFFFFFFF:
            raise ValueError(f"community value out of range: {value}")
        return cls(value >> 16, value & 0xFFFF)

    @classmethod
    def no_export(cls) -> "Community":
        """The well-known NO_EXPORT community."""
        return cls.from_int(cls.NO_EXPORT_VALUE)

    @classmethod
    def no_advertise(cls) -> "Community":
        """The well-known NO_ADVERTISE community."""
        return cls.from_int(cls.NO_ADVERTISE_VALUE)

    # -- accessors ---------------------------------------------------------

    @property
    def high(self) -> int:
        """Upper 16 bits (conventionally the operator's ASN)."""
        return self._high

    @property
    def low(self) -> int:
        """Lower 16 bits (conventionally an operator-defined value)."""
        return self._low

    @property
    def value(self) -> int:
        """Packed 32-bit integer form."""
        return (self._high << 16) | self._low

    def is_well_known(self) -> bool:
        """Return True for RFC 1997 well-known communities (0xFFFF high)."""
        return self._high == 0xFFFF

    # -- dunder ------------------------------------------------------------

    def __str__(self) -> str:
        return f"{self._high}:{self._low}"

    def __repr__(self) -> str:
        return f"Community({str(self)!r})"

    def __hash__(self) -> int:
        return hash((self._high, self._low))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Community):
            return NotImplemented
        return self._high == other._high and self._low == other._low

    def __lt__(self, other: "Community") -> bool:
        if not isinstance(other, Community):
            return NotImplemented
        return (self._high, self._low) < (other._high, other._low)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Community is immutable")

    def __reduce__(self):
        # __setattr__ is blocked, so slot-state pickling cannot restore
        # instances; rebuild through the constructor instead.
        return (Community, (self._high, self._low))


def parse_community_set(text: str) -> FrozenSet[Community]:
    """Parse a whitespace-separated list of ``high:low`` values."""
    return frozenset(Community.parse(token) for token in text.split())


def format_community_set(communities: Iterable[Community]) -> str:
    """Render a community set in sorted ``high:low`` form."""
    return " ".join(str(c) for c in sorted(communities))
