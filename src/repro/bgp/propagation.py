"""Valley-free BGP route propagation engine.

The engine answers the question every measurement substrate needs
answered: *given a policy-annotated AS-level topology, which AS paths
(and which transitive BGP communities) does each AS end up with for each
origin?*  Route collectors, looking glasses and the traceroute
synthesiser all read their views out of a :class:`PropagationResult`.

The algorithm is the standard three-phase breadth-first computation used
in BGP simulation studies:

1. **customer routes** — the origin's announcement climbs customer->provider
   links; every AS on the way learns the route from a customer;
2. **peer routes** — every AS holding a customer (or own) route offers it
   across its peering links (bilateral and route-server) exactly one hop;
3. **provider routes** — every AS holding any route propagates it down
   provider->customer links recursively.

Within a phase, shorter AS paths win; across phases, earlier phases win
(customer > peer > provider), reproducing the default LOCAL_PREF policy.
Ties break on the lowest neighbour ASN, which makes propagation fully
deterministic.

The computation itself runs on the :mod:`repro.runtime` substrate: a
CSR adjacency index built once per topology, per-AS best-route state in
parallel integer arrays, and paths/community bags interned in shared
stores (see :class:`~repro.runtime.frontier.FrontierPropagator`).
Routes are only materialised into tuples/frozensets for the ASes
actually recorded.  The original object-graph engine survives as
:class:`~repro.bgp.reference_propagation.ReferencePropagationEngine`
and the two are property-tested for equivalence.

Route-server peering is modelled with directed :class:`Adjacency` entries
carrying the RS communities the exporting member attached, so the
communities show up — transitively — in collector feeds exactly as the
paper describes in section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

try:  # optional: the columnar fragment plane needs numpy, the engine doesn't
    import numpy as np
except ImportError:  # pragma: no cover - numpy is present in CI
    np = None  # type: ignore[assignment]

from repro.bgp.communities import Community
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.runtime.fragments import (
    ObservationIndex,
    PathTable,
    RouteBlock,
    block_from_columns,
    fragments_available,
)
from repro.runtime.frontier import (
    CLASS_CUSTOMER,
    CLASS_ORIGIN,
    CLASS_PEER,
    CLASS_PROVIDER,
    REL_CUSTOMER,
    REL_PEER,
    REL_PROVIDER,
    REL_RS_PEER,
    REL_SIBLING,
    OriginState,
)

__all__ = [
    "Adjacency",
    "BACKENDS",
    "BATCH_SIZE",
    "CLASS_CUSTOMER",
    "CLASS_ORIGIN",
    "CLASS_PEER",
    "CLASS_PROVIDER",
    "DEFAULT_BACKEND",
    "OriginSpec",
    "PropagatedRoute",
    "PropagationEngine",
    "PropagationResult",
    "RouteBlock",
    "adjacencies_from_index",
    "bidirectional_adjacencies",
]

#: The selectable propagation backends: the per-origin frontier BFS
#: (default, dependency-free), the vectorized batched multi-origin
#: engine (numpy), the fused compiled kernel (numpy, numba-accelerated
#: where installed) and the object-graph reference oracle.
BACKENDS = ("frontier", "batched", "compiled", "reference")
DEFAULT_BACKEND = "frontier"

#: Origins propagated per vectorized sweep by the batched backend; caps
#: the (origins x nodes) state arrays (6 int64 planes plus scratch) at
#: tens of MB per batch on large topologies.
BATCH_SIZE = 128

_CLASS_NAMES = {
    CLASS_ORIGIN: "origin",
    CLASS_CUSTOMER: "customer",
    CLASS_PEER: "peer",
    CLASS_PROVIDER: "provider",
}


@dataclass(frozen=True)
class Adjacency:
    """A directed route-flow edge: *target* can learn routes from *source*.

    ``relationship`` is the relationship of *source* as seen by *target*
    (the importing AS): a route flowing customer->provider is represented
    with ``relationship=Relationship.CUSTOMER`` because the provider
    (target) learned it from a customer.

    ``communities`` are attached to any route crossing the edge — this is
    how RS members' export-policy communities become visible downstream.
    If ``rs_transparent`` is False, ``via_rs_asn`` is inserted into the AS
    path (the 'route server does not strip its ASN' artefact).
    """

    source: int
    target: int
    relationship: Relationship
    communities: FrozenSet[Community] = frozenset()
    via_rs_asn: Optional[int] = None
    rs_transparent: bool = True
    ixp: Optional[str] = None


class PropagatedRoute:
    """The route an AS ends up holding for one origin."""

    __slots__ = ("asn", "path", "communities", "provenance", "learned_from")

    def __init__(
        self,
        asn: int,
        path: Tuple[int, ...],
        communities: FrozenSet[Community],
        provenance: int,
        learned_from: Optional[int],
    ) -> None:
        self.asn = asn
        #: AS path as the AS would announce it: [self, ..., origin].
        self.path = path
        self.communities = communities
        #: one of CLASS_ORIGIN / CLASS_CUSTOMER / CLASS_PEER / CLASS_PROVIDER
        self.provenance = provenance
        self.learned_from = learned_from

    @property
    def received_path(self) -> Tuple[int, ...]:
        """The AS path as received (without the local ASN prepended)."""
        return self.path[1:] if len(self.path) > 1 else self.path

    @property
    def provenance_name(self) -> str:
        """Human-readable provenance class."""
        return _CLASS_NAMES[self.provenance]

    def exportable_to_peer_or_provider(self) -> bool:
        """Valley-free: only own/customer routes go to peers and providers."""
        return self.provenance <= CLASS_CUSTOMER

    def __repr__(self) -> str:
        return (
            f"PropagatedRoute(asn={self.asn}, path={list(self.path)}, "
            f"provenance={self.provenance_name})"
        )


@dataclass
class OriginSpec:
    """An origin AS together with the prefixes it announces."""

    asn: int
    prefixes: Sequence[Prefix] = field(default_factory=list)
    #: Communities attached by the origin itself to all its announcements.
    communities: FrozenSet[Community] = frozenset()


class PropagationResult:
    """Routes recorded at the requested observation ASes.

    The result maps ``(observer_asn, origin_asn)`` to the
    :class:`PropagatedRoute` the observer selected as best, plus — for
    observers registered with ``record_alternatives`` — the list of all
    candidate routes offered to them (their Adj-RIB-In).

    Fragments arrive columnar (:class:`~repro.runtime.fragments.
    RouteBlock`) from the engine and stay columnar until an object-level
    accessor is called: the per-observer dicts are folded lazily, in
    recording order, so bulk consumers (``visible_links``, the
    collector/inference fast paths) never build per-route objects at
    all.
    """

    def __init__(self) -> None:
        self._best: Dict[int, Dict[int, PropagatedRoute]] = {}
        self._alternatives: Dict[int, Dict[int, List[PropagatedRoute]]] = {}
        self._origins: Dict[int, OriginSpec] = {}
        #: recorded fragments not yet folded into the dicts, in
        #: recording order: (origin, best, offered) triples.
        self._pending: List[Tuple[int, Sequence, Sequence]] = []
        #: every block-backed recording, kept after indexing so the
        #: columnar fast paths survive object-level access.
        self._block_records: List[Tuple[int, RouteBlock, RouteBlock]] = []
        #: origin -> (best, offered) exactly as recorded, kept for the
        #: delta-propagation plane (unaffected fragments are reused
        #: byte-for-byte when an event timeline patches a result).
        self._fragment_records: Dict[int, Tuple[Sequence, Sequence]] = {}
        #: False once routes were recorded outside the fragment
        #: protocol (``_record_best``/``_record_alternative``) — such
        #: results cannot serve as a delta-patching baseline.
        self._fragments_complete = True
        #: True while every recorded fragment is a RouteBlock (the
        #: precondition for the columnar fast paths).
        self._columnar = True
        #: (record count, ObservationIndex) — the per-(observer, origin)
        #: CSR index over the block records, built on first use.
        self._obs_index: Optional[Tuple[int, ObservationIndex]] = None
        #: ((record count, origin count), origin -> position, aligned)
        self._origin_pos: Optional[Tuple[Tuple[int, int],
                                         Optional[Dict[int, int]], bool]] = None

    # -- population (used by the engine) ------------------------------------

    def _record_fragments(self, origin: int, best: Sequence,
                          offered: Sequence) -> None:
        """Record one origin's (best, offered) fragments.

        RouteBlocks stay columnar; folding into the per-observer dicts
        is deferred to the first object-level read.
        """
        self._pending.append((origin, best, offered))
        self._fragment_records[origin] = (best, offered)
        if isinstance(best, RouteBlock) and isinstance(offered, RouteBlock):
            self._block_records.append((origin, best, offered))
        else:
            self._columnar = False

    def _record_best(self, origin: int, route: PropagatedRoute) -> None:
        self._ensure_indexed()
        self._columnar = False
        self._fragments_complete = False
        self._best.setdefault(route.asn, {})[origin] = route

    def _record_alternative(self, origin: int, route: PropagatedRoute) -> None:
        self._ensure_indexed()
        self._columnar = False
        self._fragments_complete = False
        per_as = self._alternatives.setdefault(route.asn, {})
        per_as.setdefault(origin, []).append(route)

    def _record_origin(self, spec: OriginSpec) -> None:
        self._origins[spec.asn] = spec

    def _ensure_indexed(self) -> None:
        """Fold pending fragments into the per-observer dicts.

        Rows are materialised in recording order, so observer/origin
        dict insertion orders are identical to the eager path.  Runs of
        block-backed recordings are folded with one grouped pass per
        side (sort by observer, visit groups in first-appearance order)
        instead of a ``dict.setdefault`` per route; list-backed
        recordings fall back to the route-by-route fold, flushing any
        accumulated blocks first so overall recording order holds.
        """
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        best_index = self._best
        alt_index = self._alternatives
        batch: List[Tuple[int, RouteBlock, RouteBlock]] = []
        for origin, best, offered in pending:
            if np is not None and isinstance(best, RouteBlock) \
                    and isinstance(offered, RouteBlock):
                batch.append((origin, best, offered))
                continue
            if batch:
                self._fold_block_batch(batch)
                batch = []
            for route in best:
                best_index.setdefault(route.asn, {})[origin] = route
            for route in offered:
                alt_index.setdefault(route.asn, {}).setdefault(
                    origin, []).append(route)
        if batch:
            self._fold_block_batch(batch)

    def _fold_block_batch(
            self, batch: List[Tuple[int, RouteBlock, RouteBlock]]) -> None:
        """Grouped dict fold of consecutive block-backed recordings.

        Equivalent to the route-by-route fold: per side, rows are
        grouped by observer with one stable sort over the concatenated
        ``asn`` columns, observers are visited in first-appearance
        (concatenation) order, and each group's rows arrive in
        ``(record, row)`` order — reproducing every dict insertion
        order, including last-write-wins on duplicate keys.
        """
        origins = [origin for origin, _best, _offered in batch]
        for side, target in ((1, self._best), (2, self._alternatives)):
            blocks = [record[side] for record in batch]
            parts = [i for i, block in enumerate(blocks) if len(block.asn)]
            if not parts:
                continue
            routes = {i: blocks[i].routes_list() for i in parts}
            asn = np.concatenate([blocks[i].asn for i in parts])
            pos = np.repeat(np.asarray(parts, dtype=np.int64),
                            [len(blocks[i].asn) for i in parts])
            row = np.concatenate([np.arange(len(blocks[i].asn),
                                            dtype=np.int64) for i in parts])
            order = np.argsort(asn, kind="stable")
            asn_s = asn[order].tolist()
            pos_s = pos[order].tolist()
            row_s = row[order].tolist()
            change = np.nonzero(asn[order][1:] != asn[order][:-1])[0] + 1
            starts = np.concatenate(([0], change))
            ends = np.concatenate((change, [len(asn_s)]))
            visit = np.argsort(order[starts], kind="stable")
            if side == 1:
                for g in visit.tolist():
                    observer = asn_s[starts[g]]
                    inner = target.get(observer)
                    if inner is None:
                        inner = target[observer] = {}
                    for i in range(starts[g], ends[g]):
                        p = pos_s[i]
                        inner[origins[p]] = routes[p][row_s[i]]
            else:
                for g in visit.tolist():
                    observer = asn_s[starts[g]]
                    inner = target.get(observer)
                    if inner is None:
                        inner = target[observer] = {}
                    for i in range(starts[g], ends[g]):
                        p = pos_s[i]
                        candidates = inner.get(origins[p])
                        if candidates is None:
                            candidates = inner[origins[p]] = []
                        candidates.append(routes[p][row_s[i]])

    # -- read API ------------------------------------------------------------

    def origins(self) -> List[int]:
        """All origin ASNs that were propagated."""
        return list(self._origins)

    def origin_spec(self, origin_asn: int) -> OriginSpec:
        """The :class:`OriginSpec` for *origin_asn*."""
        return self._origins[origin_asn]

    def recorded_fragments(self) -> Dict[int, Tuple[Sequence, Sequence]]:
        """Origin -> (best, offered) fragments exactly as recorded.

        This is the delta-propagation baseline: when an event timeline
        patches a result, unaffected origins' fragments are taken from
        here unchanged (block identity preserved) and only affected
        origins are recomputed.  Raises when routes were ever recorded
        outside the fragment protocol — such a result has no complete
        per-origin fragment decomposition to patch.
        """
        if not self._fragments_complete:
            raise ValueError(
                "result mixes fragment and per-route recordings; "
                "it cannot serve as a delta-propagation baseline")
        return dict(self._fragment_records)

    def observers(self) -> List[int]:
        """All ASes with recorded routes."""
        self._ensure_indexed()
        return list(self._best)

    def _observation_index(self) -> Optional[ObservationIndex]:
        """The per-(observer, origin) CSR index over the block records,
        built once per record-count and rebuilt only when more
        fragments arrive.  None when the result is not fully
        block-backed (callers fall back to the dict fold)."""
        if np is None or not self._columnar or not self._block_records:
            return None
        cached = self._obs_index
        if cached is not None and cached[0] == len(self._block_records):
            return cached[1]
        index = ObservationIndex(
            [best for _origin, best, _offered in self._block_records],
            [offered for _origin, _best, offered in self._block_records])
        self._obs_index = (len(self._block_records), index)
        return index

    def _origin_positions(self) -> Tuple[Optional[Dict[int, int]], bool]:
        """Origin -> block-record position, plus whether the records
        align 1:1 with ``origins()`` order.  The mapping is None when an
        origin was recorded twice (no unique position exists)."""
        key = (len(self._block_records), len(self._origins))
        cached = self._origin_pos
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        positions: Optional[Dict[int, int]] = {}
        for pos, (origin, _best, _offered) in enumerate(self._block_records):
            if origin in positions:
                positions = None
                break
            positions[origin] = pos
        aligned = positions is not None and \
            list(positions) == list(self._origins)
        self._origin_pos = (key, positions, aligned)
        return positions, aligned

    def best_route(self, observer_asn: int, origin_asn: int) -> Optional[PropagatedRoute]:
        """Best route held by *observer_asn* towards *origin_asn*."""
        index = self._observation_index()
        if index is not None:
            positions, _aligned = self._origin_positions()
            if positions is not None:
                pos = positions.get(origin_asn)
                if pos is None:
                    return None
                row = index.best_row(observer_asn, pos)
                if row is None:
                    return None
                return self._block_records[pos][1].route(row)
        self._ensure_indexed()
        return self._best.get(observer_asn, {}).get(origin_asn)

    def routes_at(self, observer_asn: int) -> Dict[int, PropagatedRoute]:
        """Mapping origin ASN -> best route at *observer_asn*."""
        self._ensure_indexed()
        return dict(self._best.get(observer_asn, {}))

    def iter_routes_at(self, observer_asn: int) -> Iterable[Tuple[int, PropagatedRoute]]:
        """Iterate ``(origin ASN, best route)`` pairs at *observer_asn*
        without copying the underlying mapping."""
        self._ensure_indexed()
        return self._best.get(observer_asn, {}).items()

    def iter_best_columns_at(self, observer_asn: int):
        """Columnar fast path for per-observer consumers.

        Returns ``(origin_asn, block, row)`` triples in recording order
        — the same pairs :meth:`iter_routes_at` yields, without
        materialising route objects — or ``None`` when the result is
        not fully block-backed (callers then fall back to the object
        API).
        """
        index = self._observation_index()
        if index is None:
            return None
        records = self._block_records
        return [(records[pos][0], records[pos][1], row)
                for pos, row in index.best_refs(observer_asn)]

    def observation_groups_at(self, observer_asn: int):
        """The observer's full view as columnar groups, one per origin.

        Returns ``(origin_asn, block, rows)`` triples in origin
        recording order — ``rows`` indexes *block* and is sorted the
        way :meth:`all_paths` sorts, so ``rows[0]`` is the group's best
        path.  Groups come from the offered block where the observer
        holds offered routes, with the same best-route fallback as
        ``all_paths``.  None when the result is not fully block-backed
        or block records don't map 1:1 onto ``origins()`` (callers
        fall back to the object API).
        """
        index = self._observation_index()
        if index is None:
            return None
        positions, aligned = self._origin_positions()
        if positions is None or not aligned:
            return None
        records = self._block_records
        groups = []
        for pos, rows, from_offers in index.merged_groups(observer_asn):
            origin, best, offered = records[pos]
            groups.append((origin, offered if from_offers else best, rows))
        return groups

    def all_paths(self, observer_asn: int, origin_asn: int) -> List[PropagatedRoute]:
        """All candidate routes offered to *observer_asn* for *origin_asn*
        (best first).  Falls back to the best route only when alternatives
        were not recorded for this observer."""
        index = self._observation_index()
        if index is not None:
            positions, _aligned = self._origin_positions()
            if positions is not None:
                pos = positions.get(origin_asn)
                if pos is None:
                    return []
                rows = index.offered_rows(observer_asn, pos)
                if rows is not None:
                    offered = self._block_records[pos][2]
                    return [offered.route(row) for row in rows]
                row = index.best_row(observer_asn, pos)
                return [self._block_records[pos][1].route(row)] \
                    if row is not None else []
        self._ensure_indexed()
        alternatives = self._alternatives.get(observer_asn, {}).get(origin_asn)
        if alternatives:
            ordered = sorted(
                alternatives,
                key=lambda r: (r.provenance, len(r.path), r.learned_from or -1),
            )
            return ordered
        best = self.best_route(observer_asn, origin_asn)
        return [best] if best is not None else []

    def visible_links(self, observer_asns: Optional[Iterable[int]] = None) -> Set[Tuple[int, int]]:
        """AS links appearing in the best paths of the given observers
        (all recorded observers by default)."""
        if observer_asns is None and self._columnar and self._block_records:
            return self._links_from_blocks()
        self._ensure_indexed()
        observers = list(observer_asns) if observer_asns is not None else self.observers()
        links: Set[Tuple[int, int]] = set()
        for observer in observers:
            for route in self._best.get(observer, {}).values():
                path = route.path
                for left, right in zip(path, path[1:]):
                    if left != right:
                        links.add((min(left, right), max(left, right)))
        return links

    def _links_from_blocks(self) -> Set[Tuple[int, int]]:
        """Columnar ``visible_links``: adjacent pairs straight from the
        CSR path columns, deduplicated as packed uint64 keys."""
        packed_chunks = []
        links: Set[Tuple[int, int]] = set()
        for _origin, best, _offered in self._block_records:
            lo, hi = best.link_pairs()
            if not len(lo):
                continue
            if int(hi.max()) < (1 << 32):
                packed_chunks.append(
                    (lo.astype(np.uint64) << np.uint64(32))
                    | hi.astype(np.uint64))
            else:  # ASNs beyond 32 bits: packing would collide
                links.update(zip(lo.tolist(), hi.tolist()))
        if packed_chunks:
            packed = np.unique(np.concatenate(packed_chunks))
            los = (packed >> np.uint64(32)).astype(np.int64).tolist()
            his = (packed & np.uint64(0xFFFFFFFF)).astype(np.int64).tolist()
            links.update(zip(los, his))
        return links

    def __getstate__(self):
        # The observation index and origin-position caches are cheap to
        # rebuild and would otherwise bloat persisted/shipped artifacts.
        state = self.__dict__.copy()
        state["_obs_index"] = None
        state["_origin_pos"] = None
        return state

    def __setstate__(self, state) -> None:
        state.setdefault("_obs_index", None)
        state.setdefault("_origin_pos", None)
        # Dropped cache of pre-index versions of this class.
        state.pop("_observer_rows", None)
        self.__dict__.update(state)


class PropagationEngine:
    """Propagate origins over a policy-annotated adjacency set.

    Parameters
    ----------
    adjacencies:
        Directed :class:`Adjacency` entries.  For an ordinary undirected
        link both directions must be supplied (use
        :func:`bidirectional_adjacencies` for convenience).  May be
        omitted when *context* carries a pre-built index.
    record_at:
        ASes whose resulting routes should be kept in the result.  If
        None, every AS is recorded (only advisable for small topologies).
    record_alternatives_at:
        Subset of observers for which all offered candidate routes (the
        Adj-RIB-In) are retained, not just the best one.
    context:
        Optional :class:`~repro.runtime.context.PipelineContext`.  When
        given, the engine shares the context's CSR index, path/bag
        stores, scratch arrays and per-origin route memoisation with
        every other engine created from the same context; when omitted a
        private context is built from *adjacencies*.
    backend:
        Which propagation data plane answers queries: ``"frontier"``
        (per-origin bucket-queue BFS, the default), ``"batched"`` (the
        vectorized multi-origin engine of
        :mod:`repro.runtime.batched`), ``"compiled"`` (the fused kernel
        of :mod:`repro.runtime.compiled`, numba-accelerated where
        installed) or ``"reference"`` (the object-graph oracle).
        ``None`` inherits the context's backend.  All backends produce
        equivalent routes; memoised fragments are keyed per backend so
        they never alias.
    """

    def __init__(
        self,
        adjacencies: Optional[Iterable[Adjacency]] = None,
        record_at: Optional[Iterable[int]] = None,
        record_alternatives_at: Optional[Iterable[int]] = None,
        context=None,
        backend: Optional[str] = None,
    ) -> None:
        if context is None:
            if adjacencies is None:
                raise ValueError(
                    "adjacencies are required when no context is given")
            from repro.runtime.context import PipelineContext
            context = PipelineContext.from_adjacencies(adjacencies)
        elif adjacencies is not None:
            raise ValueError(
                "pass either adjacencies or a context with a built index, "
                "not both")
        if backend is None:
            backend = getattr(context, "backend", DEFAULT_BACKEND)
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown propagation backend {backend!r} "
                f"(choose from {BACKENDS})")
        self._ctx = context
        self._index = context.index
        self._bags = context.bags
        self._paths = context.paths
        self._backend = backend
        self._batched = None
        self._reference = None
        self._record_mask = None
        self._asn_array = None
        self._record_at = set(record_at) if record_at is not None else None
        self._record_alt_at = set(record_alternatives_at or ())
        id_of = self._index.id_of
        self._alt_nodes = frozenset(
            id_of[asn] for asn in self._record_alt_at if asn in id_of)
        #: memoisation signature: same record config *and backend* ->
        #: shareable fragments (backends never alias cache entries).
        self._record_sig = (
            frozenset(self._record_at) if self._record_at is not None else None,
            frozenset(self._record_alt_at),
            backend,
        )

    # -- public API ----------------------------------------------------------

    @property
    def context(self):
        """The :class:`PipelineContext` the engine runs on."""
        return self._ctx

    @property
    def backend(self) -> str:
        """The propagation backend this engine answers with."""
        return self._backend

    def nodes(self) -> Set[int]:
        """All ASNs known to the engine."""
        return set(self._index.node_asns)

    def propagate(self, origins: Iterable[OriginSpec]) -> PropagationResult:
        """Propagate every origin and return the recorded routes."""
        origins = list(origins)
        result = PropagationResult()
        for spec, (best_routes, offered_routes) in zip(
                origins, self.batch_fragments(origins)):
            result._record_origin(spec)
            result._record_fragments(spec.asn, best_routes, offered_routes)
        return result

    def propagate_origin(self, spec: OriginSpec) -> PropagationResult:
        """Propagate a single origin (convenience wrapper)."""
        return self.propagate([spec])

    # -- internals -----------------------------------------------------------

    def origin_fragments(
        self, spec: OriginSpec
    ) -> Tuple[List[PropagatedRoute], List[PropagatedRoute]]:
        """The recorded (best, offered) routes for one origin."""
        return self.batch_fragments([spec])[0]

    def batch_fragments(
        self, specs: Sequence[OriginSpec]
    ) -> List[Tuple[Sequence[PropagatedRoute], Sequence[PropagatedRoute]]]:
        """The recorded (best, offered) fragments for a batch of origins.

        This is the unit of work the sharded pipeline distributes across
        worker processes.  With numpy present each fragment is a
        :class:`~repro.runtime.fragments.RouteBlock` — columnar, cheap
        to pickle (a handful of arrays instead of thousands of route
        tuples) and iterable as lazy ``PropagatedRoute`` views; without
        numpy (and under the reference oracle) fragments are plain route
        lists with identical contents.  Under the batched backend the
        cache misses of the whole batch are propagated together in
        :data:`BATCH_SIZE` groups of vectorized sweeps; the frontier and
        reference backends resolve them one origin at a time.
        """
        specs = list(specs)
        results: List[Optional[Tuple]] = [None] * len(specs)
        blocks = fragments_available() and self._backend != "reference"

        # Memoise per-origin fragments only when recording is bounded to
        # explicit observers: a record-everything engine would pin
        # O(origins x nodes) materialised routes to the shared context.
        memoizable = self._record_at is not None
        cache = self._ctx.route_cache
        # Mutation epoch of the underlying graph/route-server state:
        # salting it into the key means a lookup after a policy or
        # membership change can never return a pre-mutation block.
        epoch = self._ctx.mutation_epoch() if memoizable else None
        recordable = self._record_at
        pending: List[Tuple[int, int, int, Tuple]] = []
        for position, spec in enumerate(specs):
            origin = spec.asn
            origin_bag = self._bags.intern(frozenset(spec.communities)) \
                if spec.communities else self._bags.EMPTY
            origin_node = self._index.id_of.get(origin)
            if origin_node is None:
                # Origin is isolated; it still holds its own route.
                if recordable is None or origin in recordable:
                    own = [PropagatedRoute(
                        asn=origin,
                        path=(origin,),
                        communities=self._bags.value(origin_bag),
                        provenance=CLASS_ORIGIN,
                        learned_from=None,
                    )]
                else:
                    own = []
                results[position] = (
                    (RouteBlock.from_routes(own), RouteBlock.empty())
                    if blocks else (own, []))
                continue
            key = (origin, origin_bag, self._record_sig, epoch)
            fragments = cache.get(key) if memoizable else None
            if fragments is not None:
                results[position] = fragments
            else:
                pending.append((position, origin_node, origin_bag, key))

        if pending:
            computed = self._compute_fragments(
                [entry[1] for entry in pending],
                [entry[2] for entry in pending],
                [specs[entry[0]] for entry in pending])
            for (position, _node, _bag, key), fragments in zip(
                    pending, computed):
                results[position] = fragments
                if memoizable:
                    cache[key] = fragments
        return results

    def _compute_fragments(self, origin_nodes, origin_bags,
                           pending_specs) -> List[Tuple]:
        """Run the selected backend over the uncached origins (the
        three argument lists are parallel, cache hits and isolated
        origins already filtered out)."""
        if self._backend in ("batched", "compiled"):
            mask = self._record_node_mask()
            propagator = self._batched_propagator()
            if self._backend == "compiled":
                # Wider batches amortise per-level round cost; the
                # helper caps the (origins x nodes) planes by memory.
                from repro.runtime.compiled import compiled_batch_size
                batch_size = compiled_batch_size(self._ctx.plan)
            else:
                batch_size = BATCH_SIZE
            fragments: List[Tuple] = []
            for start in range(0, len(origin_nodes), batch_size):
                batch = propagator.run_batch(
                    origin_nodes[start:start + batch_size],
                    origin_bags[start:start + batch_size],
                    self._alt_nodes)
                fragments.extend(self._batch_blocks(batch, mask))
            return fragments
        if self._backend == "reference":
            return [self._reference_fragments(spec)
                    for spec in pending_specs]
        propagator = self._ctx.propagator
        if fragments_available():
            mask = self._record_node_mask()
            return [self._frontier_block(
                        propagator.run(node, bag, self._alt_nodes), mask)
                    for node, bag in zip(origin_nodes, origin_bags)]
        return [self._materialize(propagator.run(node, bag, self._alt_nodes))
                for node, bag in zip(origin_nodes, origin_bags)]

    def _node_asn_array(self):
        """Node id -> ASN as an int64 array (built once per engine)."""
        if self._asn_array is None:
            self._asn_array = np.asarray(self._index.node_asns,
                                         dtype=np.int64)
        return self._asn_array

    def _batch_blocks(self, batch, mask) -> List[Tuple]:
        """All (best, offered) :class:`RouteBlock`s of one vectorized
        batch.

        ONE chain walk (:class:`PathTable`) covers every recorded path
        id — touched and offered — and recorded-observer filtering is
        the boolean *mask* applied to the column arrays, not a
        per-route membership test.
        """
        node_asns = self._node_asn_array()
        bag_value = self._bags.value
        (off_to, off_cls, _off_len, off_frm, off_pid, off_bag), bounds = \
            batch.offer_columns()
        touched = [batch.touched_array(row, mask)
                   for row in range(batch.num_origins)]
        pid_chunks = [batch.pid[row][nodes]
                      for row, nodes in enumerate(touched)]
        if len(off_pid):
            pid_chunks.append(off_pid)
        heads, parents = batch.paths.columns()
        table = PathTable(heads, parents, np.concatenate(pid_chunks))
        blocks: List[Tuple] = []
        for row in range(batch.num_origins):
            nodes = touched[row]
            frm = batch.frm[row][nodes]
            best = block_from_columns(
                asns=node_asns[nodes],
                provenance=batch.cls[row][nodes],
                learned_from=np.where(
                    frm >= 0, node_asns[np.maximum(frm, 0)], -1),
                pids=batch.pid[row][nodes],
                bag_ids=batch.bag[row][nodes],
                bag_value=bag_value,
                path_table=table)
            row_slice = slice(int(bounds[row]), int(bounds[row + 1]))
            o_to = off_to[row_slice]
            o_cls = off_cls[row_slice]
            o_frm = off_frm[row_slice]
            o_pid = off_pid[row_slice]
            o_bag = off_bag[row_slice]
            if mask is not None and len(o_to):
                keep = mask[o_to]
                o_to, o_cls, o_frm, o_pid, o_bag = (
                    o_to[keep], o_cls[keep], o_frm[keep], o_pid[keep],
                    o_bag[keep])
            offered = block_from_columns(
                asns=node_asns[o_to],
                provenance=o_cls,
                learned_from=node_asns[o_frm],
                pids=o_pid,
                bag_ids=o_bag,
                bag_value=bag_value,
                path_table=table)
            blocks.append((best, offered))
        return blocks

    def _frontier_block(self, state: OriginState, mask) -> Tuple:
        """One frontier origin's state as (best, offered) RouteBlocks.

        The frontier propagator keeps full per-node python lists; they
        convert to arrays once per origin (C-speed) and are then
        gathered columnar, with the per-origin path store walked once.
        """
        node_asns = self._node_asn_array()
        bag_value = self._bags.value
        nodes = np.asarray(state.touched, dtype=np.int64)
        if mask is not None and len(nodes):
            nodes = nodes[mask[nodes]]
        cls_plane = np.asarray(state.cls, dtype=np.int64)
        frm_plane = np.asarray(state.frm, dtype=np.int64)
        pid_plane = np.asarray(state.pid, dtype=np.int64)
        bag_plane = np.asarray(state.bag, dtype=np.int64)
        if state.offers:
            offer_columns = np.asarray(state.offers, dtype=np.int64)
            if mask is not None:
                offer_columns = offer_columns[mask[offer_columns[:, 0]]]
        else:
            offer_columns = np.empty((0, 6), dtype=np.int64)
        heads, parents = self._paths.columns()
        best_pids = pid_plane[nodes]
        table = PathTable(heads, parents,
                          np.concatenate((best_pids, offer_columns[:, 4])))
        frm = frm_plane[nodes]
        best = block_from_columns(
            asns=node_asns[nodes],
            provenance=cls_plane[nodes],
            learned_from=np.where(
                frm >= 0, node_asns[np.maximum(frm, 0)], -1),
            pids=best_pids,
            bag_ids=bag_plane[nodes],
            bag_value=bag_value,
            path_table=table)
        offered = block_from_columns(
            asns=node_asns[offer_columns[:, 0]],
            provenance=offer_columns[:, 1],
            learned_from=node_asns[offer_columns[:, 3]],
            pids=offer_columns[:, 4],
            bag_ids=offer_columns[:, 5],
            bag_value=bag_value,
            path_table=table)
        return best, offered

    def _batched_propagator(self):
        if self._batched is None:
            if self._backend == "compiled":
                from repro.runtime.compiled import CompiledPropagator
                self._batched = CompiledPropagator(self._ctx.plan,
                                                   self._bags)
            else:
                from repro.runtime.batched import BatchedPropagator
                self._batched = BatchedPropagator(self._ctx.plan, self._bags)
        return self._batched

    def _record_node_mask(self):
        """Boolean node mask of the recorded observers (None = all)."""
        if self._record_at is None:
            return None
        if self._record_mask is None:
            mask = np.zeros(self._index.num_nodes, dtype=bool)
            id_of = self._index.id_of
            for asn in self._record_at:
                node = id_of.get(asn)
                if node is not None:
                    mask[node] = True
            self._record_mask = mask
        return self._record_mask

    def _reference_fragments(self, spec: OriginSpec) -> Tuple:
        """One origin through the object-graph oracle, as fragments."""
        if self._reference is None:
            from repro.bgp.reference_propagation import (
                ReferencePropagationEngine,
            )
            self._reference = ReferencePropagationEngine(
                adjacencies_from_index(self._index),
                record_at=self._record_at,
                record_alternatives_at=self._record_alt_at)
        result = self._reference.propagate_origin(spec)
        origin = spec.asn
        best = [routes[origin] for routes in result._best.values()
                if origin in routes]
        offered = [route for routes in result._alternatives.values()
                   for route in routes.get(origin, ())]
        return best, offered

    def _materialize(
        self, state: OriginState, paths=None
    ) -> Tuple[List[PropagatedRoute], List[PropagatedRoute]]:
        """Convert interned per-node state into routes for the recorded
        observers — the only place ids become ASNs/tuples again."""
        node_asns = self._index.node_asns
        materialize = (paths if paths is not None else self._paths).materialize
        bag_value = self._bags.value
        recordable = self._record_at

        best: List[PropagatedRoute] = []
        cls_, frm, pid, bag = state.cls, state.frm, state.pid, state.bag
        for node in state.touched:
            asn = node_asns[node]
            if recordable is not None and asn not in recordable:
                continue
            learned = frm[node]
            best.append(PropagatedRoute(
                asn=asn,
                path=materialize(pid[node]),
                communities=bag_value(bag[node]),
                provenance=int(cls_[node]),
                learned_from=node_asns[learned] if learned >= 0 else None,
            ))

        offered: List[PropagatedRoute] = []
        for node, ccls, _clen, exporter, path_id, bag_id in state.offers:
            asn = node_asns[node]
            if recordable is not None and asn not in recordable:
                continue
            offered.append(PropagatedRoute(
                asn=asn,
                path=materialize(path_id),
                communities=bag_value(bag_id),
                provenance=ccls,
                learned_from=node_asns[exporter],
            ))
        return best, offered


def bidirectional_adjacencies(
    asn_a: int,
    asn_b: int,
    relationship_of_b_seen_from_a: Relationship,
) -> List[Adjacency]:
    """Build the two directed adjacencies of an ordinary AS link.

    ``relationship_of_b_seen_from_a`` follows the :class:`Relationship`
    convention: ``CUSTOMER`` means *b* is *a*'s customer.
    """
    rel_ab = relationship_of_b_seen_from_a
    # Route flow a->b: b learns from a, so b sees a as the inverse.
    return [
        Adjacency(source=asn_a, target=asn_b, relationship=rel_ab.inverse()),
        Adjacency(source=asn_b, target=asn_a, relationship=rel_ab),
    ]


_REL_OF_CODE = {
    REL_CUSTOMER: Relationship.CUSTOMER,
    REL_PROVIDER: Relationship.PROVIDER,
    REL_PEER: Relationship.PEER,
    REL_RS_PEER: Relationship.RS_PEER,
    REL_SIBLING: Relationship.SIBLING,
}


def adjacencies_from_index(index) -> List[Adjacency]:
    """Reconstruct directed :class:`Adjacency` records from a CSR index.

    The semantic inverse of
    :meth:`~repro.runtime.csr.CSRIndex.from_adjacencies`, used to hand a
    context-built topology to the object-graph reference backend (which
    consumes adjacency records, not indices).  Sibling edges appear in
    both the customer and provider phase blocks and are emitted once; a
    transparent route server is reconstructed as ``via_rs_asn=None``,
    which is indistinguishable in propagation semantics.
    """
    node_asns = index.node_asns
    bag_value = index.bags.value
    adjacencies: List[Adjacency] = []
    # Customer + peer phases cover every relationship except PROVIDER
    # (siblings are deduplicated out of the provider phase).
    for phase, skip_siblings in ((index.customer_edges, False),
                                 (index.peer_edges, False),
                                 (index.provider_edges, True)):
        indptr, targets, rels, bags, vias = phase
        for source in range(index.num_nodes):
            for edge in range(indptr[source], indptr[source + 1]):
                rel = rels[edge]
                if skip_siblings and rel == REL_SIBLING:
                    continue
                via = vias[edge]
                adjacencies.append(Adjacency(
                    source=node_asns[source],
                    target=node_asns[targets[edge]],
                    relationship=_REL_OF_CODE[rel],
                    communities=bag_value(bags[edge]),
                    via_rs_asn=via if via >= 0 else None,
                    rs_transparent=via < 0,
                ))
    return adjacencies
