"""Valley-free BGP route propagation engine.

The engine answers the question every measurement substrate needs
answered: *given a policy-annotated AS-level topology, which AS paths
(and which transitive BGP communities) does each AS end up with for each
origin?*  Route collectors, looking glasses and the traceroute
synthesiser all read their views out of a :class:`PropagationResult`.

The algorithm is the standard three-phase breadth-first computation used
in BGP simulation studies:

1. **customer routes** — the origin's announcement climbs customer->provider
   links; every AS on the way learns the route from a customer;
2. **peer routes** — every AS holding a customer (or own) route offers it
   across its peering links (bilateral and route-server) exactly one hop;
3. **provider routes** — every AS holding any route propagates it down
   provider->customer links recursively.

Within a phase, shorter AS paths win; across phases, earlier phases win
(customer > peer > provider), reproducing the default LOCAL_PREF policy.
Ties break on the lowest neighbour ASN, which makes propagation fully
deterministic.

The computation itself runs on the :mod:`repro.runtime` substrate: a
CSR adjacency index built once per topology, per-AS best-route state in
parallel integer arrays, and paths/community bags interned in shared
stores (see :class:`~repro.runtime.frontier.FrontierPropagator`).
Routes are only materialised into tuples/frozensets for the ASes
actually recorded.  The original object-graph engine survives as
:class:`~repro.bgp.reference_propagation.ReferencePropagationEngine`
and the two are property-tested for equivalence.

Route-server peering is modelled with directed :class:`Adjacency` entries
carrying the RS communities the exporting member attached, so the
communities show up — transitively — in collector feeds exactly as the
paper describes in section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.communities import Community
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.runtime.frontier import (
    CLASS_CUSTOMER,
    CLASS_ORIGIN,
    CLASS_PEER,
    CLASS_PROVIDER,
    OriginState,
)

__all__ = [
    "Adjacency",
    "CLASS_CUSTOMER",
    "CLASS_ORIGIN",
    "CLASS_PEER",
    "CLASS_PROVIDER",
    "OriginSpec",
    "PropagatedRoute",
    "PropagationEngine",
    "PropagationResult",
    "bidirectional_adjacencies",
]

_CLASS_NAMES = {
    CLASS_ORIGIN: "origin",
    CLASS_CUSTOMER: "customer",
    CLASS_PEER: "peer",
    CLASS_PROVIDER: "provider",
}


@dataclass(frozen=True)
class Adjacency:
    """A directed route-flow edge: *target* can learn routes from *source*.

    ``relationship`` is the relationship of *source* as seen by *target*
    (the importing AS): a route flowing customer->provider is represented
    with ``relationship=Relationship.CUSTOMER`` because the provider
    (target) learned it from a customer.

    ``communities`` are attached to any route crossing the edge — this is
    how RS members' export-policy communities become visible downstream.
    If ``rs_transparent`` is False, ``via_rs_asn`` is inserted into the AS
    path (the 'route server does not strip its ASN' artefact).
    """

    source: int
    target: int
    relationship: Relationship
    communities: FrozenSet[Community] = frozenset()
    via_rs_asn: Optional[int] = None
    rs_transparent: bool = True
    ixp: Optional[str] = None


class PropagatedRoute:
    """The route an AS ends up holding for one origin."""

    __slots__ = ("asn", "path", "communities", "provenance", "learned_from")

    def __init__(
        self,
        asn: int,
        path: Tuple[int, ...],
        communities: FrozenSet[Community],
        provenance: int,
        learned_from: Optional[int],
    ) -> None:
        self.asn = asn
        #: AS path as the AS would announce it: [self, ..., origin].
        self.path = path
        self.communities = communities
        #: one of CLASS_ORIGIN / CLASS_CUSTOMER / CLASS_PEER / CLASS_PROVIDER
        self.provenance = provenance
        self.learned_from = learned_from

    @property
    def received_path(self) -> Tuple[int, ...]:
        """The AS path as received (without the local ASN prepended)."""
        return self.path[1:] if len(self.path) > 1 else self.path

    @property
    def provenance_name(self) -> str:
        """Human-readable provenance class."""
        return _CLASS_NAMES[self.provenance]

    def exportable_to_peer_or_provider(self) -> bool:
        """Valley-free: only own/customer routes go to peers and providers."""
        return self.provenance <= CLASS_CUSTOMER

    def __repr__(self) -> str:
        return (
            f"PropagatedRoute(asn={self.asn}, path={list(self.path)}, "
            f"provenance={self.provenance_name})"
        )


@dataclass
class OriginSpec:
    """An origin AS together with the prefixes it announces."""

    asn: int
    prefixes: Sequence[Prefix] = field(default_factory=list)
    #: Communities attached by the origin itself to all its announcements.
    communities: FrozenSet[Community] = frozenset()


class PropagationResult:
    """Routes recorded at the requested observation ASes.

    The result maps ``(observer_asn, origin_asn)`` to the
    :class:`PropagatedRoute` the observer selected as best, plus — for
    observers registered with ``record_alternatives`` — the list of all
    candidate routes offered to them (their Adj-RIB-In).
    """

    def __init__(self) -> None:
        self._best: Dict[int, Dict[int, PropagatedRoute]] = {}
        self._alternatives: Dict[int, Dict[int, List[PropagatedRoute]]] = {}
        self._origins: Dict[int, OriginSpec] = {}

    # -- population (used by the engine) ------------------------------------

    def _record_best(self, origin: int, route: PropagatedRoute) -> None:
        self._best.setdefault(route.asn, {})[origin] = route

    def _record_alternative(self, origin: int, route: PropagatedRoute) -> None:
        per_as = self._alternatives.setdefault(route.asn, {})
        per_as.setdefault(origin, []).append(route)

    def _record_origin(self, spec: OriginSpec) -> None:
        self._origins[spec.asn] = spec

    # -- read API ------------------------------------------------------------

    def origins(self) -> List[int]:
        """All origin ASNs that were propagated."""
        return list(self._origins)

    def origin_spec(self, origin_asn: int) -> OriginSpec:
        """The :class:`OriginSpec` for *origin_asn*."""
        return self._origins[origin_asn]

    def observers(self) -> List[int]:
        """All ASes with recorded routes."""
        return list(self._best)

    def best_route(self, observer_asn: int, origin_asn: int) -> Optional[PropagatedRoute]:
        """Best route held by *observer_asn* towards *origin_asn*."""
        return self._best.get(observer_asn, {}).get(origin_asn)

    def routes_at(self, observer_asn: int) -> Dict[int, PropagatedRoute]:
        """Mapping origin ASN -> best route at *observer_asn*."""
        return dict(self._best.get(observer_asn, {}))

    def iter_routes_at(self, observer_asn: int) -> Iterable[Tuple[int, PropagatedRoute]]:
        """Iterate ``(origin ASN, best route)`` pairs at *observer_asn*
        without copying the underlying mapping."""
        return self._best.get(observer_asn, {}).items()

    def all_paths(self, observer_asn: int, origin_asn: int) -> List[PropagatedRoute]:
        """All candidate routes offered to *observer_asn* for *origin_asn*
        (best first).  Falls back to the best route only when alternatives
        were not recorded for this observer."""
        alternatives = self._alternatives.get(observer_asn, {}).get(origin_asn)
        if alternatives:
            ordered = sorted(
                alternatives,
                key=lambda r: (r.provenance, len(r.path), r.learned_from or -1),
            )
            return ordered
        best = self.best_route(observer_asn, origin_asn)
        return [best] if best is not None else []

    def visible_links(self, observer_asns: Optional[Iterable[int]] = None) -> Set[Tuple[int, int]]:
        """AS links appearing in the best paths of the given observers
        (all recorded observers by default)."""
        observers = list(observer_asns) if observer_asns is not None else self.observers()
        links: Set[Tuple[int, int]] = set()
        for observer in observers:
            for route in self._best.get(observer, {}).values():
                path = route.path
                for left, right in zip(path, path[1:]):
                    if left != right:
                        links.add((min(left, right), max(left, right)))
        return links


class PropagationEngine:
    """Propagate origins over a policy-annotated adjacency set.

    Parameters
    ----------
    adjacencies:
        Directed :class:`Adjacency` entries.  For an ordinary undirected
        link both directions must be supplied (use
        :func:`bidirectional_adjacencies` for convenience).  May be
        omitted when *context* carries a pre-built index.
    record_at:
        ASes whose resulting routes should be kept in the result.  If
        None, every AS is recorded (only advisable for small topologies).
    record_alternatives_at:
        Subset of observers for which all offered candidate routes (the
        Adj-RIB-In) are retained, not just the best one.
    context:
        Optional :class:`~repro.runtime.context.PipelineContext`.  When
        given, the engine shares the context's CSR index, path/bag
        stores, scratch arrays and per-origin route memoisation with
        every other engine created from the same context; when omitted a
        private context is built from *adjacencies*.
    """

    def __init__(
        self,
        adjacencies: Optional[Iterable[Adjacency]] = None,
        record_at: Optional[Iterable[int]] = None,
        record_alternatives_at: Optional[Iterable[int]] = None,
        context=None,
    ) -> None:
        if context is None:
            if adjacencies is None:
                raise ValueError(
                    "adjacencies are required when no context is given")
            from repro.runtime.context import PipelineContext
            context = PipelineContext.from_adjacencies(adjacencies)
        elif adjacencies is not None:
            raise ValueError(
                "pass either adjacencies or a context with a built index, "
                "not both")
        self._ctx = context
        self._index = context.index
        self._bags = context.bags
        self._paths = context.paths
        self._record_at = set(record_at) if record_at is not None else None
        self._record_alt_at = set(record_alternatives_at or ())
        id_of = self._index.id_of
        self._alt_nodes = frozenset(
            id_of[asn] for asn in self._record_alt_at if asn in id_of)
        #: memoisation signature: same record config -> shareable fragments.
        self._record_sig = (
            frozenset(self._record_at) if self._record_at is not None else None,
            frozenset(self._record_alt_at),
        )

    # -- public API ----------------------------------------------------------

    @property
    def context(self):
        """The :class:`PipelineContext` the engine runs on."""
        return self._ctx

    def nodes(self) -> Set[int]:
        """All ASNs known to the engine."""
        return set(self._index.node_asns)

    def propagate(self, origins: Iterable[OriginSpec]) -> PropagationResult:
        """Propagate every origin and return the recorded routes."""
        result = PropagationResult()
        for spec in origins:
            result._record_origin(spec)
            self._propagate_one(spec, result)
        return result

    def propagate_origin(self, spec: OriginSpec) -> PropagationResult:
        """Propagate a single origin (convenience wrapper)."""
        return self.propagate([spec])

    # -- internals -----------------------------------------------------------

    def _propagate_one(self, spec: OriginSpec, result: PropagationResult) -> None:
        best_routes, offered_routes = self.origin_fragments(spec)
        origin = spec.asn
        for route in best_routes:
            result._record_best(origin, route)
        for route in offered_routes:
            result._record_alternative(origin, route)

    def origin_fragments(
        self, spec: OriginSpec
    ) -> Tuple[List[PropagatedRoute], List[PropagatedRoute]]:
        """The recorded (best, offered) routes for one origin.

        This is the unit of work the sharded pipeline distributes across
        worker processes: fragments are plain materialised routes, safe
        to pickle and to merge into a :class:`PropagationResult` in any
        process.
        """
        origin = spec.asn
        origin_bag = self._bags.intern(frozenset(spec.communities)) \
            if spec.communities else self._bags.EMPTY
        recordable = self._record_at
        origin_node = self._index.id_of.get(origin)

        if origin_node is None:
            # Origin is isolated; it still holds its own route.
            if recordable is None or origin in recordable:
                return [PropagatedRoute(
                    asn=origin,
                    path=(origin,),
                    communities=self._bags.value(origin_bag),
                    provenance=CLASS_ORIGIN,
                    learned_from=None,
                )], []
            return [], []

        # Memoise per-origin fragments only when recording is bounded to
        # explicit observers: a record-everything engine would pin
        # O(origins x nodes) materialised routes to the shared context.
        memoizable = self._record_at is not None
        cache = self._ctx.route_cache
        key = (origin, origin_bag, self._record_sig)
        fragments = cache.get(key) if memoizable else None
        if fragments is None:
            state = self._ctx.propagator.run(
                origin_node, origin_bag, self._alt_nodes)
            fragments = self._materialize(state)
            if memoizable:
                cache[key] = fragments
        return fragments

    def _materialize(
        self, state: OriginState
    ) -> Tuple[List[PropagatedRoute], List[PropagatedRoute]]:
        """Convert interned per-node state into routes for the recorded
        observers — the only place ids become ASNs/tuples again."""
        node_asns = self._index.node_asns
        materialize = self._paths.materialize
        bag_value = self._bags.value
        recordable = self._record_at

        best: List[PropagatedRoute] = []
        cls_, frm, pid, bag = state.cls, state.frm, state.pid, state.bag
        for node in state.touched:
            asn = node_asns[node]
            if recordable is not None and asn not in recordable:
                continue
            learned = frm[node]
            best.append(PropagatedRoute(
                asn=asn,
                path=materialize(pid[node]),
                communities=bag_value(bag[node]),
                provenance=cls_[node],
                learned_from=node_asns[learned] if learned >= 0 else None,
            ))

        offered: List[PropagatedRoute] = []
        for node, ccls, _clen, exporter, path_id, bag_id in state.offers:
            asn = node_asns[node]
            if recordable is not None and asn not in recordable:
                continue
            offered.append(PropagatedRoute(
                asn=asn,
                path=materialize(path_id),
                communities=bag_value(bag_id),
                provenance=ccls,
                learned_from=node_asns[exporter],
            ))
        return best, offered


def bidirectional_adjacencies(
    asn_a: int,
    asn_b: int,
    relationship_of_b_seen_from_a: Relationship,
) -> List[Adjacency]:
    """Build the two directed adjacencies of an ordinary AS link.

    ``relationship_of_b_seen_from_a`` follows the :class:`Relationship`
    convention: ``CUSTOMER`` means *b* is *a*'s customer.
    """
    rel_ab = relationship_of_b_seen_from_a
    # Route flow a->b: b learns from a, so b sees a as the inverse.
    return [
        Adjacency(source=asn_a, target=asn_b, relationship=rel_ab.inverse()),
        Adjacency(source=asn_b, target=asn_a, relationship=rel_ab),
    ]
