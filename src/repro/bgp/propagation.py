"""Valley-free BGP route propagation engine.

The engine answers the question every measurement substrate needs
answered: *given a policy-annotated AS-level topology, which AS paths
(and which transitive BGP communities) does each AS end up with for each
origin?*  Route collectors, looking glasses and the traceroute
synthesiser all read their views out of a :class:`PropagationResult`.

The algorithm is the standard three-phase breadth-first computation used
in BGP simulation studies:

1. **customer routes** — the origin's announcement climbs customer->provider
   links; every AS on the way learns the route from a customer;
2. **peer routes** — every AS holding a customer (or own) route offers it
   across its peering links (bilateral and route-server) exactly one hop;
3. **provider routes** — every AS holding any route propagates it down
   provider->customer links recursively.

Within a phase, shorter AS paths win; across phases, earlier phases win
(customer > peer > provider), reproducing the default LOCAL_PREF policy.
Ties break on the lowest neighbour ASN, which makes propagation fully
deterministic.

Route-server peering is modelled with directed :class:`Adjacency` entries
carrying the RS communities the exporting member attached, so the
communities show up — transitively — in collector feeds exactly as the
paper describes in section 4.2.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.communities import Community
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix

#: Provenance classes, in decreasing preference.
CLASS_ORIGIN = 0
CLASS_CUSTOMER = 1
CLASS_PEER = 2
CLASS_PROVIDER = 3

_CLASS_NAMES = {
    CLASS_ORIGIN: "origin",
    CLASS_CUSTOMER: "customer",
    CLASS_PEER: "peer",
    CLASS_PROVIDER: "provider",
}


@dataclass(frozen=True)
class Adjacency:
    """A directed route-flow edge: *target* can learn routes from *source*.

    ``relationship`` is the relationship of *source* as seen by *target*
    (the importing AS): a route flowing customer->provider is represented
    with ``relationship=Relationship.CUSTOMER`` because the provider
    (target) learned it from a customer.

    ``communities`` are attached to any route crossing the edge — this is
    how RS members' export-policy communities become visible downstream.
    If ``rs_transparent`` is False, ``via_rs_asn`` is inserted into the AS
    path (the 'route server does not strip its ASN' artefact).
    """

    source: int
    target: int
    relationship: Relationship
    communities: FrozenSet[Community] = frozenset()
    via_rs_asn: Optional[int] = None
    rs_transparent: bool = True
    ixp: Optional[str] = None


class PropagatedRoute:
    """The route an AS ends up holding for one origin."""

    __slots__ = ("asn", "path", "communities", "provenance", "learned_from")

    def __init__(
        self,
        asn: int,
        path: Tuple[int, ...],
        communities: FrozenSet[Community],
        provenance: int,
        learned_from: Optional[int],
    ) -> None:
        self.asn = asn
        #: AS path as the AS would announce it: [self, ..., origin].
        self.path = path
        self.communities = communities
        #: one of CLASS_ORIGIN / CLASS_CUSTOMER / CLASS_PEER / CLASS_PROVIDER
        self.provenance = provenance
        self.learned_from = learned_from

    @property
    def received_path(self) -> Tuple[int, ...]:
        """The AS path as received (without the local ASN prepended)."""
        return self.path[1:] if len(self.path) > 1 else self.path

    @property
    def provenance_name(self) -> str:
        """Human-readable provenance class."""
        return _CLASS_NAMES[self.provenance]

    def exportable_to_peer_or_provider(self) -> bool:
        """Valley-free: only own/customer routes go to peers and providers."""
        return self.provenance <= CLASS_CUSTOMER

    def __repr__(self) -> str:
        return (
            f"PropagatedRoute(asn={self.asn}, path={list(self.path)}, "
            f"provenance={self.provenance_name})"
        )


@dataclass
class OriginSpec:
    """An origin AS together with the prefixes it announces."""

    asn: int
    prefixes: Sequence[Prefix] = field(default_factory=list)
    #: Communities attached by the origin itself to all its announcements.
    communities: FrozenSet[Community] = frozenset()


class PropagationResult:
    """Routes recorded at the requested observation ASes.

    The result maps ``(observer_asn, origin_asn)`` to the
    :class:`PropagatedRoute` the observer selected as best, plus — for
    observers registered with ``record_alternatives`` — the list of all
    candidate routes offered to them (their Adj-RIB-In).
    """

    def __init__(self) -> None:
        self._best: Dict[int, Dict[int, PropagatedRoute]] = {}
        self._alternatives: Dict[int, Dict[int, List[PropagatedRoute]]] = {}
        self._origins: Dict[int, OriginSpec] = {}

    # -- population (used by the engine) ------------------------------------

    def _record_best(self, origin: int, route: PropagatedRoute) -> None:
        self._best.setdefault(route.asn, {})[origin] = route

    def _record_alternative(self, origin: int, route: PropagatedRoute) -> None:
        per_as = self._alternatives.setdefault(route.asn, {})
        per_as.setdefault(origin, []).append(route)

    def _record_origin(self, spec: OriginSpec) -> None:
        self._origins[spec.asn] = spec

    # -- read API ------------------------------------------------------------

    def origins(self) -> List[int]:
        """All origin ASNs that were propagated."""
        return list(self._origins)

    def origin_spec(self, origin_asn: int) -> OriginSpec:
        """The :class:`OriginSpec` for *origin_asn*."""
        return self._origins[origin_asn]

    def observers(self) -> List[int]:
        """All ASes with recorded routes."""
        return list(self._best)

    def best_route(self, observer_asn: int, origin_asn: int) -> Optional[PropagatedRoute]:
        """Best route held by *observer_asn* towards *origin_asn*."""
        return self._best.get(observer_asn, {}).get(origin_asn)

    def routes_at(self, observer_asn: int) -> Dict[int, PropagatedRoute]:
        """Mapping origin ASN -> best route at *observer_asn*."""
        return dict(self._best.get(observer_asn, {}))

    def all_paths(self, observer_asn: int, origin_asn: int) -> List[PropagatedRoute]:
        """All candidate routes offered to *observer_asn* for *origin_asn*
        (best first).  Falls back to the best route only when alternatives
        were not recorded for this observer."""
        alternatives = self._alternatives.get(observer_asn, {}).get(origin_asn)
        if alternatives:
            ordered = sorted(
                alternatives,
                key=lambda r: (r.provenance, len(r.path), r.learned_from or -1),
            )
            return ordered
        best = self.best_route(observer_asn, origin_asn)
        return [best] if best is not None else []

    def visible_links(self, observer_asns: Optional[Iterable[int]] = None) -> Set[Tuple[int, int]]:
        """AS links appearing in the best paths of the given observers
        (all recorded observers by default)."""
        observers = list(observer_asns) if observer_asns is not None else self.observers()
        links: Set[Tuple[int, int]] = set()
        for observer in observers:
            for route in self._best.get(observer, {}).values():
                path = route.path
                for left, right in zip(path, path[1:]):
                    if left != right:
                        links.add((min(left, right), max(left, right)))
        return links


class PropagationEngine:
    """Propagate origins over a policy-annotated adjacency set.

    Parameters
    ----------
    adjacencies:
        Directed :class:`Adjacency` entries.  For an ordinary undirected
        link both directions must be supplied (use
        :func:`bidirectional_adjacencies` for convenience).
    record_at:
        ASes whose resulting routes should be kept in the result.  If
        None, every AS is recorded (only advisable for small topologies).
    record_alternatives_at:
        Subset of observers for which all offered candidate routes (the
        Adj-RIB-In) are retained, not just the best one.
    """

    def __init__(
        self,
        adjacencies: Iterable[Adjacency],
        record_at: Optional[Iterable[int]] = None,
        record_alternatives_at: Optional[Iterable[int]] = None,
    ) -> None:
        self._out: Dict[int, List[Adjacency]] = {}
        self._nodes: Set[int] = set()
        for adj in adjacencies:
            self._out.setdefault(adj.source, []).append(adj)
            self._nodes.add(adj.source)
            self._nodes.add(adj.target)
        for edges in self._out.values():
            edges.sort(key=lambda a: a.target)
        self._record_at = set(record_at) if record_at is not None else None
        self._record_alt_at = set(record_alternatives_at or ())

    # -- public API ----------------------------------------------------------

    def nodes(self) -> Set[int]:
        """All ASNs known to the engine."""
        return set(self._nodes)

    def propagate(self, origins: Iterable[OriginSpec]) -> PropagationResult:
        """Propagate every origin and return the recorded routes."""
        result = PropagationResult()
        for spec in origins:
            result._record_origin(spec)
            self._propagate_one(spec, result)
        return result

    def propagate_origin(self, spec: OriginSpec) -> PropagationResult:
        """Propagate a single origin (convenience wrapper)."""
        return self.propagate([spec])

    # -- internals -----------------------------------------------------------

    def _propagate_one(self, spec: OriginSpec, result: PropagationResult) -> None:
        origin = spec.asn
        if origin not in self._nodes and origin not in self._out:
            # Origin is isolated; it still holds its own route.
            pass

        #: asn -> (provenance, pathlen, learned_from, path, communities)
        state: Dict[int, PropagatedRoute] = {}
        offers: Dict[int, List[PropagatedRoute]] = {}

        origin_route = PropagatedRoute(
            asn=origin,
            path=(origin,),
            communities=frozenset(spec.communities),
            provenance=CLASS_ORIGIN,
            learned_from=None,
        )
        state[origin] = origin_route

        # Phase 1: customer routes climb provider chains (and sibling links).
        self._run_phase(
            state,
            offers,
            frontier=[origin],
            allowed_relationships=(Relationship.CUSTOMER, Relationship.SIBLING),
            provenance=CLASS_CUSTOMER,
            export_requires=CLASS_CUSTOMER,
        )

        # Phase 2: one hop across peering links (bilateral and route-server).
        peer_sources = [asn for asn, route in state.items()
                        if route.provenance <= CLASS_CUSTOMER]
        self._run_single_hop(
            state,
            offers,
            sources=peer_sources,
            allowed_relationships=(Relationship.PEER, Relationship.RS_PEER),
            provenance=CLASS_PEER,
        )

        # Phase 3: everything propagates down to customers.
        provider_sources = list(state.keys())
        self._run_phase(
            state,
            offers,
            frontier=provider_sources,
            allowed_relationships=(Relationship.PROVIDER, Relationship.SIBLING),
            provenance=CLASS_PROVIDER,
            export_requires=CLASS_PROVIDER,
        )

        self._record(spec, state, offers, result)

    def _run_phase(
        self,
        state: Dict[int, PropagatedRoute],
        offers: Dict[int, List[PropagatedRoute]],
        frontier: List[int],
        allowed_relationships: Tuple[Relationship, ...],
        provenance: int,
        export_requires: int,
    ) -> None:
        """Breadth-first propagation along the given relationship classes.

        ``export_requires`` caps the provenance class an AS must hold to
        keep exporting inside this phase (customer phase: only own/customer
        routes climb; provider phase: anything flows down).
        """
        heap: List[Tuple[int, int, int]] = []
        counter = 0
        for asn in frontier:
            route = state.get(asn)
            if route is None:
                continue
            heapq.heappush(heap, (len(route.path), asn, counter))
            counter += 1

        while heap:
            _, source, _ = heapq.heappop(heap)
            source_route = state.get(source)
            if source_route is None:
                continue
            if source_route.provenance > export_requires:
                continue
            for adj in self._out.get(source, ()):
                if adj.relationship not in allowed_relationships:
                    continue
                candidate = self._build_candidate(adj, source_route, provenance)
                self._offer(offers, adj.target, candidate)
                if self._better(candidate, state.get(adj.target)):
                    state[adj.target] = candidate
                    heapq.heappush(heap, (len(candidate.path), adj.target, counter))
                    counter += 1

    def _run_single_hop(
        self,
        state: Dict[int, PropagatedRoute],
        offers: Dict[int, List[PropagatedRoute]],
        sources: List[int],
        allowed_relationships: Tuple[Relationship, ...],
        provenance: int,
    ) -> None:
        """One-hop propagation used for the peering phase."""
        updates: Dict[int, PropagatedRoute] = {}
        for source in sorted(sources):
            source_route = state.get(source)
            if source_route is None or source_route.provenance > CLASS_CUSTOMER:
                continue
            for adj in self._out.get(source, ()):
                if adj.relationship not in allowed_relationships:
                    continue
                candidate = self._build_candidate(adj, source_route, provenance)
                self._offer(offers, adj.target, candidate)
                current = state.get(adj.target)
                pending = updates.get(adj.target)
                best_existing = pending if self._better_or_equal(pending, current) else current
                if self._better(candidate, best_existing):
                    updates[adj.target] = candidate
        for asn, candidate in updates.items():
            if self._better(candidate, state.get(asn)):
                state[asn] = candidate

    def _build_candidate(
        self,
        adj: Adjacency,
        source_route: PropagatedRoute,
        provenance: int,
    ) -> PropagatedRoute:
        received = source_route.path
        if adj.via_rs_asn is not None and not adj.rs_transparent:
            received = (adj.via_rs_asn,) + received
        path = (adj.target,) + received
        communities = source_route.communities
        if adj.communities:
            communities = communities | adj.communities
        # Sibling links are transparent: they keep the exporter's provenance.
        if adj.relationship is Relationship.SIBLING:
            new_provenance = source_route.provenance
        else:
            new_provenance = max(provenance, source_route.provenance) \
                if provenance == CLASS_PROVIDER else provenance
        if provenance == CLASS_PROVIDER and adj.relationship is Relationship.PROVIDER:
            new_provenance = CLASS_PROVIDER
        return PropagatedRoute(
            asn=adj.target,
            path=path,
            communities=communities,
            provenance=new_provenance,
            learned_from=adj.source,
        )

    @staticmethod
    def _key(route: PropagatedRoute) -> Tuple[int, int, int]:
        return (route.provenance, len(route.path),
                route.learned_from if route.learned_from is not None else -1)

    def _better(self, candidate: PropagatedRoute, current: Optional[PropagatedRoute]) -> bool:
        if candidate is None:
            return False
        if current is None:
            return True
        return self._key(candidate) < self._key(current)

    def _better_or_equal(
        self, candidate: Optional[PropagatedRoute], current: Optional[PropagatedRoute]
    ) -> bool:
        if candidate is None:
            return False
        if current is None:
            return True
        return self._key(candidate) <= self._key(current)

    def _offer(
        self,
        offers: Dict[int, List[PropagatedRoute]],
        target: int,
        candidate: PropagatedRoute,
    ) -> None:
        if target in self._record_alt_at:
            offers.setdefault(target, []).append(candidate)

    def _record(
        self,
        spec: OriginSpec,
        state: Dict[int, PropagatedRoute],
        offers: Dict[int, List[PropagatedRoute]],
        result: PropagationResult,
    ) -> None:
        recordable = self._record_at
        for asn, route in state.items():
            if recordable is None or asn in recordable:
                result._record_best(spec.asn, route)
        for asn, candidates in offers.items():
            if recordable is None or asn in recordable:
                for candidate in candidates:
                    result._record_alternative(spec.asn, candidate)


def bidirectional_adjacencies(
    asn_a: int,
    asn_b: int,
    relationship_of_b_seen_from_a: Relationship,
) -> List[Adjacency]:
    """Build the two directed adjacencies of an ordinary AS link.

    ``relationship_of_b_seen_from_a`` follows the :class:`Relationship`
    convention: ``CUSTOMER`` means *b* is *a*'s customer.
    """
    rel_ab = relationship_of_b_seen_from_a
    # Route flow a->b: b learns from a, so b sees a as the inverse.
    return [
        Adjacency(source=asn_a, target=asn_b, relationship=rel_ab.inverse()),
        Adjacency(source=asn_b, target=asn_a, relationship=rel_ab),
    ]
