"""BGP session model.

Sessions tie together two ASNs, a relationship, and the import/export
policies applied on each side.  The :class:`SessionType` distinction lets
the analyses count bilateral versus multilateral (route-server) sessions,
which is the subject of the paper's figure 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.bgp.policy import ExportPolicy, ImportPolicy, Relationship


class SessionType(enum.Enum):
    """How the BGP session is realised."""

    TRANSIT = "transit"          #: customer-provider session
    BILATERAL = "bilateral"      #: direct peer-to-peer session
    ROUTE_SERVER = "route-server"  #: member <-> IXP route server session
    COLLECTOR = "collector"      #: vantage point -> route collector session
    SIBLING = "sibling"          #: intra-organisation session


@dataclass
class Session:
    """A BGP session between ``local_asn`` and ``remote_asn``.

    ``relationship`` is expressed from the local AS's point of view, e.g.
    ``Relationship.CUSTOMER`` means the remote AS is our customer.
    """

    local_asn: int
    remote_asn: int
    relationship: Relationship
    session_type: SessionType = SessionType.TRANSIT
    import_policy: ImportPolicy = field(default_factory=ImportPolicy)
    export_policy: ExportPolicy = field(default_factory=ExportPolicy)
    ixp: Optional[str] = None

    def reversed(self) -> "Session":
        """The same session seen from the remote AS (fresh default policies)."""
        return Session(
            local_asn=self.remote_asn,
            remote_asn=self.local_asn,
            relationship=self.relationship.inverse(),
            session_type=self.session_type,
            ixp=self.ixp,
        )

    @property
    def endpoints(self) -> tuple:
        """Sorted (asn, asn) endpoint tuple identifying the adjacency."""
        return (min(self.local_asn, self.remote_asn),
                max(self.local_asn, self.remote_asn))

    def __str__(self) -> str:
        return (
            f"{self.local_asn}->{self.remote_asn} "
            f"({self.relationship.value}, {self.session_type.value})"
        )


def bilateral_session_count(num_peers: int) -> int:
    """Number of BGP sessions needed for a full mesh of *num_peers* ASes
    peering bilaterally: n(n-1)/2 (figure 1a)."""
    if num_peers < 0:
        raise ValueError("number of peers must be non-negative")
    return num_peers * (num_peers - 1) // 2


def multilateral_session_count(num_peers: int, num_route_servers: int = 1) -> int:
    """Number of BGP sessions needed when the same ASes peer through
    *num_route_servers* route servers: c * n (figure 1b)."""
    if num_peers < 0 or num_route_servers < 0:
        raise ValueError("counts must be non-negative")
    return num_peers * num_route_servers
