"""Route objects: a prefix announcement with its BGP attributes."""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from repro.bgp.attributes import ASPath, Origin
from repro.bgp.communities import Community
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix


class Route:
    """A single BGP route: a prefix plus the attributes it carried.

    Routes are immutable; modifications (prepending the local ASN, adding
    communities on export, overriding LOCAL_PREF on import) produce new
    instances via :meth:`replace`.
    """

    __slots__ = (
        "_prefix",
        "_as_path",
        "_communities",
        "_local_pref",
        "_origin",
        "_learned_from",
        "_relationship",
        "_med",
    )

    def __init__(
        self,
        prefix: Prefix,
        as_path: ASPath,
        communities: Iterable[Community] = (),
        local_pref: int = 100,
        origin: Origin = Origin.IGP,
        learned_from: Optional[int] = None,
        relationship: Optional[Relationship] = None,
        med: int = 0,
    ) -> None:
        object.__setattr__(self, "_prefix", prefix)
        object.__setattr__(self, "_as_path", as_path)
        object.__setattr__(self, "_communities", frozenset(communities))
        object.__setattr__(self, "_local_pref", int(local_pref))
        object.__setattr__(self, "_origin", origin)
        object.__setattr__(self, "_learned_from", learned_from)
        object.__setattr__(self, "_relationship", relationship)
        object.__setattr__(self, "_med", int(med))

    # -- accessors ---------------------------------------------------------

    @property
    def prefix(self) -> Prefix:
        """The announced prefix."""
        return self._prefix

    @property
    def as_path(self) -> ASPath:
        """The AS_PATH attribute."""
        return self._as_path

    @property
    def communities(self) -> FrozenSet[Community]:
        """The community attribute (possibly empty)."""
        return self._communities

    @property
    def local_pref(self) -> int:
        """LOCAL_PREF assigned by the receiving AS."""
        return self._local_pref

    @property
    def origin(self) -> Origin:
        """The ORIGIN attribute."""
        return self._origin

    @property
    def learned_from(self) -> Optional[int]:
        """ASN of the neighbour the route was learned from (None if local)."""
        return self._learned_from

    @property
    def relationship(self) -> Optional[Relationship]:
        """Relationship of the session the route was learned on."""
        return self._relationship

    @property
    def med(self) -> int:
        """MULTI_EXIT_DISC attribute."""
        return self._med

    @property
    def origin_asn(self) -> int:
        """Origin AS of the route (last AS-path element, or the learned_from
        neighbour for an empty path)."""
        if len(self._as_path):
            return self._as_path.origin_asn
        if self._learned_from is not None:
            return self._learned_from
        raise ValueError("route has neither AS path nor neighbour")

    def is_local(self) -> bool:
        """True if the route was originated locally (empty AS path)."""
        return len(self._as_path) == 0

    # -- derived -----------------------------------------------------------

    def replace(self, **changes: object) -> "Route":
        """Return a copy with the given keyword fields replaced."""
        kwargs = {
            "prefix": self._prefix,
            "as_path": self._as_path,
            "communities": self._communities,
            "local_pref": self._local_pref,
            "origin": self._origin,
            "learned_from": self._learned_from,
            "relationship": self._relationship,
            "med": self._med,
        }
        kwargs.update(changes)
        return Route(**kwargs)  # type: ignore[arg-type]

    def selection_key(self) -> Tuple:
        """Sort key implementing the BGP decision process.

        Lower keys are preferred: higher LOCAL_PREF first, then shorter
        AS path, then lower MED, then lower neighbour ASN as a
        deterministic tie-breaker (standing in for router-id comparison).
        """
        neighbour = self._learned_from if self._learned_from is not None else -1
        return (-self._local_pref, len(self._as_path), self._med, neighbour,
                self._as_path.asns)

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Route(prefix={self._prefix}, path=[{self._as_path}], "
            f"lp={self._local_pref}, communities={len(self._communities)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Route):
            return NotImplemented
        return (
            self._prefix == other._prefix
            and self._as_path == other._as_path
            and self._communities == other._communities
            and self._local_pref == other._local_pref
            and self._learned_from == other._learned_from
        )

    def __hash__(self) -> int:
        return hash((self._prefix, self._as_path, self._communities,
                     self._local_pref, self._learned_from))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Route is immutable")
