"""The original object-graph propagation engine, kept as the oracle.

This is the seed implementation of the three-phase valley-free
computation, materialising a :class:`PropagatedRoute` (tuple path +
frozenset communities) for every candidate.  It is quadratic in memory
at scale and has been replaced by the array-based frontier engine in
:mod:`repro.bgp.propagation`; it is retained verbatim so the equivalence
property tests can check the rewrite against it on randomized
topologies, and as executable documentation of the algorithm.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bgp.policy import Relationship
from repro.bgp.propagation import (
    Adjacency,
    CLASS_CUSTOMER,
    CLASS_ORIGIN,
    CLASS_PEER,
    CLASS_PROVIDER,
    OriginSpec,
    PropagatedRoute,
    PropagationResult,
)


class ReferencePropagationEngine:
    """Propagate origins over a policy-annotated adjacency set.

    Same public API and identical routing semantics as
    :class:`~repro.bgp.propagation.PropagationEngine`; see that class
    for parameter documentation.
    """

    def __init__(
        self,
        adjacencies: Iterable[Adjacency],
        record_at: Optional[Iterable[int]] = None,
        record_alternatives_at: Optional[Iterable[int]] = None,
    ) -> None:
        self._out: Dict[int, List[Adjacency]] = {}
        self._nodes: Set[int] = set()
        for adj in adjacencies:
            self._out.setdefault(adj.source, []).append(adj)
            self._nodes.add(adj.source)
            self._nodes.add(adj.target)
        for edges in self._out.values():
            edges.sort(key=lambda a: a.target)
        self._record_at = set(record_at) if record_at is not None else None
        self._record_alt_at = set(record_alternatives_at or ())

    # -- public API ----------------------------------------------------------

    def nodes(self) -> Set[int]:
        """All ASNs known to the engine."""
        return set(self._nodes)

    def propagate(self, origins: Iterable[OriginSpec]) -> PropagationResult:
        """Propagate every origin and return the recorded routes."""
        result = PropagationResult()
        for spec in origins:
            result._record_origin(spec)
            self._propagate_one(spec, result)
        return result

    def propagate_origin(self, spec: OriginSpec) -> PropagationResult:
        """Propagate a single origin (convenience wrapper)."""
        return self.propagate([spec])

    # -- internals -----------------------------------------------------------

    def _propagate_one(self, spec: OriginSpec, result: PropagationResult) -> None:
        origin = spec.asn

        state: Dict[int, PropagatedRoute] = {}
        offers: Dict[int, List[PropagatedRoute]] = {}

        origin_route = PropagatedRoute(
            asn=origin,
            path=(origin,),
            communities=frozenset(spec.communities),
            provenance=CLASS_ORIGIN,
            learned_from=None,
        )
        state[origin] = origin_route

        # Phase 1: customer routes climb provider chains (and sibling links).
        self._run_phase(
            state,
            offers,
            frontier=[origin],
            allowed_relationships=(Relationship.CUSTOMER, Relationship.SIBLING),
            provenance=CLASS_CUSTOMER,
            export_requires=CLASS_CUSTOMER,
        )

        # Phase 2: one hop across peering links (bilateral and route-server).
        peer_sources = [asn for asn, route in state.items()
                        if route.provenance <= CLASS_CUSTOMER]
        self._run_single_hop(
            state,
            offers,
            sources=peer_sources,
            allowed_relationships=(Relationship.PEER, Relationship.RS_PEER),
            provenance=CLASS_PEER,
        )

        # Phase 3: everything propagates down to customers.
        provider_sources = list(state.keys())
        self._run_phase(
            state,
            offers,
            frontier=provider_sources,
            allowed_relationships=(Relationship.PROVIDER, Relationship.SIBLING),
            provenance=CLASS_PROVIDER,
            export_requires=CLASS_PROVIDER,
        )

        self._record(spec, state, offers, result)

    def _run_phase(
        self,
        state: Dict[int, PropagatedRoute],
        offers: Dict[int, List[PropagatedRoute]],
        frontier: List[int],
        allowed_relationships: Tuple[Relationship, ...],
        provenance: int,
        export_requires: int,
    ) -> None:
        """Breadth-first propagation along the given relationship classes.

        ``export_requires`` caps the provenance class an AS must hold to
        keep exporting inside this phase (customer phase: only own/customer
        routes climb; provider phase: anything flows down).
        """
        heap: List[Tuple[int, int, int]] = []
        counter = 0
        for asn in frontier:
            route = state.get(asn)
            if route is None:
                continue
            heapq.heappush(heap, (len(route.path), asn, counter))
            counter += 1

        while heap:
            _, source, _ = heapq.heappop(heap)
            source_route = state.get(source)
            if source_route is None:
                continue
            if source_route.provenance > export_requires:
                continue
            for adj in self._out.get(source, ()):
                if adj.relationship not in allowed_relationships:
                    continue
                candidate = self._build_candidate(adj, source_route, provenance)
                self._offer(offers, adj.target, candidate)
                if self._better(candidate, state.get(adj.target)):
                    state[adj.target] = candidate
                    heapq.heappush(heap, (len(candidate.path), adj.target, counter))
                    counter += 1

    def _run_single_hop(
        self,
        state: Dict[int, PropagatedRoute],
        offers: Dict[int, List[PropagatedRoute]],
        sources: List[int],
        allowed_relationships: Tuple[Relationship, ...],
        provenance: int,
    ) -> None:
        """One-hop propagation used for the peering phase."""
        updates: Dict[int, PropagatedRoute] = {}
        for source in sorted(sources):
            source_route = state.get(source)
            if source_route is None or source_route.provenance > CLASS_CUSTOMER:
                continue
            for adj in self._out.get(source, ()):
                if adj.relationship not in allowed_relationships:
                    continue
                candidate = self._build_candidate(adj, source_route, provenance)
                self._offer(offers, adj.target, candidate)
                current = state.get(adj.target)
                pending = updates.get(adj.target)
                best_existing = pending if self._better_or_equal(pending, current) else current
                if self._better(candidate, best_existing):
                    updates[adj.target] = candidate
        for asn, candidate in updates.items():
            if self._better(candidate, state.get(asn)):
                state[asn] = candidate

    def _build_candidate(
        self,
        adj: Adjacency,
        source_route: PropagatedRoute,
        provenance: int,
    ) -> PropagatedRoute:
        received = source_route.path
        if adj.via_rs_asn is not None and not adj.rs_transparent:
            received = (adj.via_rs_asn,) + received
        path = (adj.target,) + received
        communities = source_route.communities
        if adj.communities:
            communities = communities | adj.communities
        # Sibling links are transparent: they keep the exporter's provenance.
        if adj.relationship is Relationship.SIBLING:
            new_provenance = source_route.provenance
        else:
            new_provenance = max(provenance, source_route.provenance) \
                if provenance == CLASS_PROVIDER else provenance
        if provenance == CLASS_PROVIDER and adj.relationship is Relationship.PROVIDER:
            new_provenance = CLASS_PROVIDER
        return PropagatedRoute(
            asn=adj.target,
            path=path,
            communities=communities,
            provenance=new_provenance,
            learned_from=adj.source,
        )

    @staticmethod
    def _key(route: PropagatedRoute) -> Tuple[int, int, int]:
        return (route.provenance, len(route.path),
                route.learned_from if route.learned_from is not None else -1)

    def _better(self, candidate: PropagatedRoute, current: Optional[PropagatedRoute]) -> bool:
        if candidate is None:
            return False
        if current is None:
            return True
        return self._key(candidate) < self._key(current)

    def _better_or_equal(
        self, candidate: Optional[PropagatedRoute], current: Optional[PropagatedRoute]
    ) -> bool:
        if candidate is None:
            return False
        if current is None:
            return True
        return self._key(candidate) <= self._key(current)

    def _offer(
        self,
        offers: Dict[int, List[PropagatedRoute]],
        target: int,
        candidate: PropagatedRoute,
    ) -> None:
        if target in self._record_alt_at:
            offers.setdefault(target, []).append(candidate)

    def _record(
        self,
        spec: OriginSpec,
        state: Dict[int, PropagatedRoute],
        offers: Dict[int, List[PropagatedRoute]],
        result: PropagationResult,
    ) -> None:
        recordable = self._record_at
        for asn, route in state.items():
            if recordable is None or asn in recordable:
                result._record_best(spec.asn, route)
        for asn, candidates in offers.items():
            if recordable is None or asn in recordable:
                for candidate in candidates:
                    result._record_alternative(spec.asn, candidate)
