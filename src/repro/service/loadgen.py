"""Load generator for the query daemon (the ``query_matrix`` bench).

A minimal keep-alive HTTP/1.1 client over a plain socket — the point
is to measure the *daemon's* per-request latency, so the client must
not add connection setup or third-party-library overhead per request.
:func:`run_load` replays a list of request targets on one persistent
connection and returns a :class:`LoadReport` with p50/p99 latency
(microseconds) and throughput (queries/second).
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of *values*."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be within [0, 1], got {q}")
    ranked = sorted(values)
    index = max(0, min(len(ranked) - 1,
                       int(-(-q * len(ranked) // 1)) - 1))  # ceil - 1
    return ranked[index]


class HttpClient:
    """Blocking keep-alive client for one daemon connection."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._buffer = b""

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _read_line(self) -> bytes:
        while b"\r\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\r\n", 1)
        return line

    def _read_exact(self, count: int) -> bytes:
        while len(self._buffer) < count:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk
        body, self._buffer = self._buffer[:count], self._buffer[count:]
        return body

    def request(self, target: str) -> Tuple[int, Any]:
        """GET *target*; returns ``(status, decoded JSON payload)``."""
        self._sock.sendall(
            f"GET {target} HTTP/1.1\r\nHost: bench\r\n"
            f"Connection: keep-alive\r\n\r\n".encode("latin-1"))
        status = int(self._read_line().split()[1])
        length = 0
        while True:
            header = self._read_line()
            if not header:
                break
            name, _, value = header.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        return status, json.loads(self._read_exact(length))


@dataclass
class LoadReport:
    """Latency/throughput record of one endpoint's request batch."""

    endpoint: str
    latencies_us: List[float] = field(default_factory=list)
    seconds: float = 0.0
    errors: int = 0

    @property
    def requests(self) -> int:
        return len(self.latencies_us)

    @property
    def p50_us(self) -> float:
        return percentile(self.latencies_us, 0.50)

    @property
    def p99_us(self) -> float:
        return percentile(self.latencies_us, 0.99)

    @property
    def qps(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def row(self) -> dict:
        """The JSON-safe bench row for ``BENCH_<date>.json``."""
        return {
            "endpoint": self.endpoint,
            "requests": self.requests,
            "errors": self.errors,
            "p50_us": round(self.p50_us, 1),
            "p99_us": round(self.p99_us, 1),
            "qps": round(self.qps, 1),
        }


def run_load(host: str, port: int, endpoint: str,
             targets: Sequence[str], repeat: int = 1) -> LoadReport:
    """Replay *targets* (``repeat`` rounds) over one keep-alive
    connection, timing each request individually."""
    report = LoadReport(endpoint=endpoint)
    with HttpClient(host, port) as client:
        started = time.perf_counter()
        for _ in range(repeat):
            for target in targets:
                t0 = time.perf_counter()
                status, _payload = client.request(target)
                report.latencies_us.append(
                    (time.perf_counter() - t0) * 1e6)
                if status != 200:
                    report.errors += 1
        report.seconds = time.perf_counter() - started
    return report
