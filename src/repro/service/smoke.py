"""CI smoke check: boot the daemon, hit every endpoint, diff goldens.

Warms the requested scenario at the golden (tiny) size — which already
asserts bit-identity between the in-memory matrix and the mmap-loaded
artifact — then starts the HTTP server on an ephemeral port and drives
every public endpoint over a real socket:

- ``table2`` rows must equal the golden pin,
- the link set reconstructed from per-AS ``links_of`` responses must
  hash to the golden ``links_sha256`` (and match the pinned list),
- ``has_link`` must agree with the golden set on sampled members and
  non-members,
- ``peer_counts`` must be consistent with ``links_of`` lengths and sum
  to twice the link count,
- ``member_densities`` must match the direct artifact computation,
- ``health``/``scenarios``/``stats`` must report the scenario and the
  request counters.

Any mismatch raises, so the process exits non-zero — wire it into CI
as ``python -m repro.service.smoke``.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from pathlib import Path
from typing import Optional, Sequence

from repro.service.daemon import ServerThread, warm_service
from repro.service.loadgen import HttpClient

GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "goldens"


def links_digest(links) -> str:
    """sha256 over the canonical JSON link-list form (the golden pin)."""
    payload = json.dumps([[int(a), int(b)] for a, b in links],
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def run_smoke(scenario: str = "europe2013", size: str = "tiny",
              golden_dir: Path = GOLDEN_DIR,
              artifact_root: Optional[Path] = None) -> dict:
    """End-to-end daemon check against the goldens; returns a summary."""
    golden_path = golden_dir / f"{scenario}.json"
    _check(golden_path.is_file(), f"no golden pin at {golden_path}")
    golden = json.loads(golden_path.read_text())
    _check(golden.get("size", size) == size,
           f"golden pin is for size {golden.get('size')!r}, not {size!r}")
    golden_links = {(a, b) for a, b in golden["links"]}

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        root = artifact_root or Path(tmp) / "artifacts"
        service, _dirs = warm_service([scenario], size=size,
                                      artifact_root=root, verify=True)
        handle = service.handles[scenario]
        with ServerThread(service) as server, \
                HttpClient("127.0.0.1", server.port) as client:
            status, payload = client.request("/health")
            _check(status == 200 and scenario in payload["scenarios"],
                   f"/health: {status} {payload}")

            status, payload = client.request(f"/q/{scenario}/table2")
            _check(status == 200, f"table2: HTTP {status}")
            _check(payload["rows"] == golden["table2"],
                   "table2 rows diverge from the golden pin")

            status, payload = client.request(f"/q/{scenario}/peer_counts")
            _check(status == 200, f"peer_counts: HTTP {status}")
            counts = {int(asn): count
                      for asn, count in payload["counts"].items()}
            _check(sum(counts.values()) == 2 * len(golden_links),
                   "peer_counts do not sum to twice the golden link count")

            # Reconstruct the full link set through links_of and diff it
            # against the golden pin (list + sha256 digest).
            served = set()
            for asn in sorted(counts):
                status, payload = client.request(
                    f"/q/{scenario}/links_of?asn={asn}")
                _check(status == 200, f"links_of({asn}): HTTP {status}")
                _check(len(payload["peers"]) == counts[asn],
                       f"links_of({asn}) disagrees with peer_counts")
                served.update((min(asn, peer), max(asn, peer))
                              for peer in payload["peers"])
            ordered = sorted(served)
            _check(ordered == sorted(golden_links),
                   "link set served by links_of diverges from the golden")
            _check(links_digest(ordered) == golden["links_sha256"],
                   "served link-set digest diverges from links_sha256")

            # has_link on sampled members and guaranteed non-members.
            sample = ordered[:: max(1, len(ordered) // 50)]
            for a, b in sample:
                status, payload = client.request(
                    f"/q/{scenario}/has_link?a={a}&b={b}")
                _check(status == 200 and payload["has_link"] is True,
                       f"has_link({a},{b}) should be true")
                status, payload = client.request(
                    f"/q/{scenario}/has_link?a={b}&b={a}")
                _check(payload["has_link"] is True,
                       f"has_link must be symmetric for ({a},{b})")
            members = sorted(counts)
            non_links = [(a, b) for a in members[:20] for b in members[:20]
                         if a < b and (a, b) not in golden_links][:25]
            for a, b in non_links:
                status, payload = client.request(
                    f"/q/{scenario}/has_link?a={a}&b={b}")
                _check(payload["has_link"] is False,
                       f"has_link({a},{b}) should be false")

            status, payload = client.request(
                f"/q/{scenario}/member_densities")
            _check(status == 200, f"member_densities: HTTP {status}")
            direct = handle.member_densities()
            served_densities = {
                ixp: {int(asn): value for asn, value in per.items()}
                for ixp, per in payload["densities"].items()}
            _check(served_densities == direct,
                   "member_densities diverge from the direct computation")

            status, payload = client.request("/stats")
            _check(status == 200 and payload["counters"]["links_of"]
                   == len(counts), f"/stats counters wrong: {payload}")

    return {
        "scenario": scenario,
        "size": size,
        "links": len(golden_links),
        "ases": len(counts),
        "has_link_checked": 2 * len(sample) + len(non_links),
        "ixps": len(direct),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="europe2013")
    parser.add_argument("--size", default="tiny")
    parser.add_argument("--golden-dir", type=Path, default=GOLDEN_DIR)
    args = parser.parse_args(argv)
    summary = run_smoke(args.scenario, size=args.size,
                        golden_dir=args.golden_dir)
    print(f"[repro.service.smoke] OK: {summary}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
