"""Query service over mmap-able reachability artifacts.

Two layers:

- :mod:`repro.service.artifact` — a versioned on-disk schema for
  :class:`~repro.runtime.reachmatrix.ReachabilityMatrix` (packed uint64
  member x member planes, provenance masks, counts, link CSR) that
  loads back through ``np.load(..., mmap_mode="r")`` so N workers share
  one page-cache copy, with bit-identity checkable via
  :func:`verify_identity`.
- :mod:`repro.service.daemon` — the asyncio HTTP daemon serving
  ``has_link`` / ``links_of`` / ``peer_counts`` / ``member_densities``
  / ``table2`` per registered scenario, warmed through the pipeline's
  artifact cache.

:mod:`repro.service.loadgen` drives the daemon for the
``query_matrix`` benchmark section; :mod:`repro.service.smoke` is the
CI end-to-end check against the golden pins.
"""

from repro.service.artifact import (
    FORMAT_NAME,
    FORMAT_VERSION,
    ArtifactFormatError,
    ArtifactHandle,
    load_matrix,
    save_matrix,
    verify_identity,
)
from repro.service.daemon import (
    ENDPOINTS,
    QueryService,
    ServerThread,
    warm_service,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ArtifactFormatError",
    "ArtifactHandle",
    "load_matrix",
    "save_matrix",
    "verify_identity",
    "ENDPOINTS",
    "QueryService",
    "ServerThread",
    "warm_service",
]
