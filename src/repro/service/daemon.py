"""The reachability query daemon.

A long-lived service in front of the pipeline: at startup it *warms*
the artifact cache for the registered scenarios it is asked to serve
(building each scenario through :class:`~repro.pipeline.run.ScenarioRun`
on first boot, hitting the disk artifact cache afterwards), exports
each reachability matrix as the mmap-able artifact of
:mod:`repro.service.artifact`, re-loads it via ``mmap`` and — by
default — asserts bit-identity between the built matrix and the loaded
artifact before serving a single query.

The transport is a deliberately dependency-free HTTP/1.1 front over
``asyncio`` streams (GET + keep-alive only — exactly what a load
balancer health check and a JSON API client need).  Endpoints::

    GET /health                          liveness + scenario list
    GET /scenarios                       per-scenario artifact summaries
    GET /stats                           per-endpoint request counters
    GET /q/<scenario>/has_link?a=&b=     link membership (bool)
    GET /q/<scenario>/links_of?asn=      sorted MLP peers of one AS
    GET /q/<scenario>/peer_counts        per-AS distinct peer counts
    GET /q/<scenario>/member_densities   per-IXP per-member densities
    GET /q/<scenario>/table2             the paper's Table 2 rows
    GET /q/<scenario>/summary            headline artifact numbers

JSON object keys are strings (so ASN-keyed maps arrive as
``{"64500": 3}``); every payload echoes its inputs.

``workers > 1`` forks that many processes, each binding the same
address with ``SO_REUSEPORT`` and mmap-loading the same artifact
directories — the kernel load-balances accepts and the page cache
holds ONE copy of every plane regardless of worker count.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.service.artifact import ArtifactHandle, load_matrix

#: The per-scenario query endpoints (under ``/q/<scenario>/``).
ENDPOINTS = ("has_link", "links_of", "peer_counts", "member_densities",
             "table2", "summary")

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed"}


class QueryService:
    """Scenario-keyed artifact handles plus the dispatch table.

    Transport-free: :meth:`dispatch` maps a request target (path +
    query string) to ``(http status, JSON-safe payload)``, so tests and
    the load generator can drive the service without a socket, and the
    HTTP layer stays a thin wrapper.
    """

    def __init__(self) -> None:
        self.handles: Dict[str, ArtifactHandle] = {}
        self.counters: Dict[str, int] = {}
        self.started = time.time()

    # -- scenario management -------------------------------------------------

    def add_handle(self, name: str, handle: ArtifactHandle) -> None:
        self.handles[name] = handle

    def scenario_names(self) -> List[str]:
        return sorted(self.handles)

    @classmethod
    def from_artifacts(cls, directories: Iterable[Union[str, Path]],
                       mmap: bool = True) -> "QueryService":
        """A service over already-exported artifact directories (what
        forked workers run — no pipeline, just mmap loads)."""
        service = cls()
        for directory in directories:
            handle = load_matrix(directory, mmap=mmap)
            service.add_handle(
                str(handle.scenario or Path(directory).name), handle)
        return service

    # -- dispatch ------------------------------------------------------------

    def _count(self, key: str) -> None:
        self.counters[key] = self.counters.get(key, 0) + 1

    def dispatch(self, target: str) -> Tuple[int, dict]:
        """Resolve one request target to ``(status, payload)``."""
        parts = urlsplit(target)
        path = [p for p in parts.path.split("/") if p]
        params = parse_qs(parts.query)
        try:
            if not path or path == ["health"]:
                self._count("health")
                return 200, {"status": "ok",
                             "scenarios": self.scenario_names(),
                             "uptime_seconds": round(
                                 time.time() - self.started, 3)}
            if path == ["scenarios"]:
                self._count("scenarios")
                return 200, {"scenarios": {
                    name: handle.summary()
                    for name, handle in sorted(self.handles.items())}}
            if path == ["stats"]:
                self._count("stats")
                return 200, {"counters": dict(sorted(self.counters.items())),
                             "scenarios": self.scenario_names(),
                             "uptime_seconds": round(
                                 time.time() - self.started, 3)}
            if len(path) == 3 and path[0] == "q":
                return self._dispatch_query(path[1], path[2], params)
            self._count("not_found")
            return 404, {"error": f"unknown path {parts.path!r}",
                         "endpoints": list(ENDPOINTS)}
        except _BadRequest as error:
            self._count("bad_request")
            return 400, {"error": str(error)}

    def _dispatch_query(self, scenario: str, endpoint: str,
                        params: Dict[str, List[str]]) -> Tuple[int, dict]:
        handle = self.handles.get(scenario)
        if handle is None:
            self._count("not_found")
            return 404, {"error": f"unknown scenario {scenario!r}",
                         "scenarios": self.scenario_names()}
        if endpoint not in ENDPOINTS:
            self._count("not_found")
            return 404, {"error": f"unknown endpoint {endpoint!r}",
                         "endpoints": list(ENDPOINTS)}
        self._count(endpoint)
        if endpoint == "has_link":
            a = _int_param(params, "a")
            b = _int_param(params, "b")
            return 200, {"scenario": scenario, "a": a, "b": b,
                         "has_link": handle.has_link(a, b)}
        if endpoint == "links_of":
            asn = _int_param(params, "asn")
            peers = handle.links_of(asn)
            return 200, {"scenario": scenario, "asn": asn,
                         "count": len(peers), "peers": peers}
        if endpoint == "peer_counts":
            counts = handle.peer_counts()
            return 200, {"scenario": scenario, "ases": len(counts),
                         "counts": {str(asn): count
                                    for asn, count in counts.items()}}
        if endpoint == "member_densities":
            densities = handle.member_densities()
            return 200, {"scenario": scenario, "densities": {
                ixp: {str(asn): value for asn, value in sorted(per.items())}
                for ixp, per in sorted(densities.items())}}
        if endpoint == "table2":
            if handle.table2 is None:
                return 404, {"error": f"artifact for {scenario!r} was "
                                      "saved without Table 2 rows"}
            return 200, {"scenario": scenario, "rows": handle.table2}
        return 200, {"scenario": scenario, **handle.summary()}


class _BadRequest(ValueError):
    """A malformed query parameter (mapped to HTTP 400)."""


def _int_param(params: Dict[str, List[str]], name: str) -> int:
    values = params.get(name)
    if not values:
        raise _BadRequest(f"missing required parameter {name!r}")
    try:
        return int(values[0])
    except ValueError:
        raise _BadRequest(
            f"parameter {name!r} must be an integer, got {values[0]!r}")


# -- warm-up -------------------------------------------------------------------


def warm_service(scenarios: Sequence[str],
                 size: str = "tiny",
                 artifact_root: Union[str, Path] = "artifacts",
                 cache_dir: Optional[Union[str, Path]] = None,
                 verify: bool = True,
                 route_cache_max_bytes: Optional[int] = 64 * 1024 * 1024,
                 ) -> Tuple[QueryService, List[Path]]:
    """Build/export/load every requested scenario; returns the service.

    Per scenario: run the pipeline through
    :class:`~repro.pipeline.run.ScenarioRun` against a (optionally
    disk-backed) artifact cache — the warm-up that makes daemon
    restarts cheap — export the reachability matrix plus Table 2 as
    the mmap-able artifact under ``<artifact_root>/<name>-<size>``,
    mmap-load it back and (default) assert bit-identity between the
    built matrix and the loaded artifact before serving it.  The
    scenario context's route cache is bounded to
    *route_cache_max_bytes* so a daemon warming many scenarios cannot
    grow without limit.

    Returns ``(service, artifact_dirs)`` — the directories are what
    forked workers re-load via :meth:`QueryService.from_artifacts`.
    """
    from repro.pipeline import ArtifactCache, ScenarioRun
    from repro.scenarios.spec import get_scenario

    artifact_root = Path(artifact_root)
    service = QueryService()
    directories: List[Path] = []
    for name in scenarios:
        spec = get_scenario(name)
        run = ScenarioRun(spec.config(size), scenario=name,
                          cache=ArtifactCache(cache_dir))
        if route_cache_max_bytes is not None:
            run.scenario().context.route_cache.set_max_bytes(
                route_cache_max_bytes)
        directory = run.export_reachability(artifact_root / f"{name}-{size}",
                                            size=size)
        handle = load_matrix(directory, mmap=True)
        if verify:
            from repro.service.artifact import verify_identity
            problems = verify_identity(run.reachability(), handle,
                                       table2=run.table2())
            if problems:
                raise AssertionError(
                    f"artifact for {name!r} is not bit-identical to the "
                    f"in-memory matrix: {problems}")
        service.add_handle(name, handle)
        directories.append(directory)
    return service, directories


# -- HTTP front ----------------------------------------------------------------


async def _handle_connection(service: QueryService,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            request_line = await reader.readline()
            if not request_line or request_line in (b"\r\n", b"\n"):
                break
            try:
                method, target, _version = \
                    request_line.decode("latin-1").split(None, 2)
            except ValueError:
                break
            keep_alive = True
            while True:  # drain headers
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
                if header.lower().startswith(b"connection:") and \
                        b"close" in header.lower():
                    keep_alive = False
            if method.upper() != "GET":
                status, payload = 405, {"error": "only GET is supported"}
            else:
                status, payload = service.dispatch(target)
            body = json.dumps(payload).encode("utf-8")
            writer.write(
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n".encode("latin-1") + body)
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError):  # client went away
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_server(service: QueryService, host: str = "127.0.0.1",
                       port: int = 0,
                       reuse_port: bool = False) -> asyncio.AbstractServer:
    """Bind the asyncio server (``port=0`` picks an ephemeral port)."""

    async def handler(reader, writer):
        try:
            await _handle_connection(service, reader, writer)
        except asyncio.CancelledError:
            # Server shutdown cancels in-flight handlers; ending the
            # task cleanly keeps asyncio.streams' done-callback from
            # re-raising the cancellation into the closing loop.
            pass

    kwargs = {"reuse_port": True} if reuse_port else {}
    return await asyncio.start_server(handler, host=host, port=port,
                                      **kwargs)


def bound_port(server: asyncio.AbstractServer) -> int:
    return server.sockets[0].getsockname()[1]


class ServerThread:
    """Run one query server on a background thread (tests/benches).

    Context manager: entering starts an event loop + server on a daemon
    thread and publishes the bound ``port``; exiting stops the loop and
    joins the thread.
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._requested_port = port
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(start_server(
                self.service, self.host, self._requested_port))
        except BaseException as error:  # surface bind errors to the caller
            self._failure = error
            self._ready.set()
            loop.close()
            return
        self.port = bound_port(server)
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._failure is not None:
            raise self._failure
        if self.port is None:
            raise RuntimeError("server thread failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)


# -- multi-process serving -----------------------------------------------------


def _worker_main(directories: List[str], host: str, port: int) -> None:
    """One forked worker: mmap-load the artifacts, serve forever."""
    service = QueryService.from_artifacts(directories)

    async def _serve() -> None:
        server = await start_server(service, host, port, reuse_port=True)
        async with server:
            await server.serve_forever()

    asyncio.run(_serve())


def serve_forever(service: QueryService, directories: Sequence[Path],
                  host: str = "127.0.0.1", port: int = 8321,
                  workers: int = 1) -> None:
    """Serve until interrupted; ``workers > 1`` forks SO_REUSEPORT peers.

    Every worker process mmap-loads the same artifact directories, so
    the resident planes are shared through the page cache.  Falls back
    to a single in-process server where ``SO_REUSEPORT`` is missing.
    """
    if workers > 1 and hasattr(socket, "SO_REUSEPORT"):
        import multiprocessing
        context = multiprocessing.get_context("fork")
        children = [
            context.Process(
                target=_worker_main,
                args=([str(d) for d in directories], host, port),
                daemon=True)
            for _ in range(workers)]
        for child in children:
            child.start()
        try:
            for child in children:
                child.join()
        finally:
            for child in children:
                if child.is_alive():
                    child.terminate()
        return

    async def _serve() -> None:
        server = await start_server(service, host, port)
        print(f"[repro.service] serving {service.scenario_names()} "
              f"on {host}:{bound_port(server)}")
        async with server:
            await server.serve_forever()

    asyncio.run(_serve())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: warm the requested scenarios and serve them."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", action="append", default=None,
                        help="registered scenario to serve (repeatable; "
                             "default europe2013)")
    parser.add_argument("--size", default="tiny",
                        help="size-table row to build (default tiny)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes sharing the port "
                             "(SO_REUSEPORT)")
    parser.add_argument("--artifact-root", type=Path,
                        default=Path("artifacts"),
                        help="directory for exported artifacts")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="disk artifact cache for pipeline warm-up")
    parser.add_argument("--route-cache-max-bytes", type=int,
                        default=64 * 1024 * 1024,
                        help="LRU byte budget of each scenario context's "
                             "route cache (0 = unbounded)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the mmap-vs-in-memory bit-identity "
                             "assertion at warm-up")
    args = parser.parse_args(argv)

    scenarios = args.scenario or ["europe2013"]
    service, directories = warm_service(
        scenarios, size=args.size, artifact_root=args.artifact_root,
        cache_dir=args.cache_dir, verify=not args.no_verify,
        route_cache_max_bytes=args.route_cache_max_bytes or None)
    for name in service.scenario_names():
        print(f"[repro.service] warmed {name}: "
              f"{service.handles[name].summary()}")
    serve_forever(service, directories, host=args.host, port=args.port,
                  workers=args.workers)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
