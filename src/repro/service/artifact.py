"""The mmap-able on-disk reachability artifact (schema version 1).

The query daemon must serve has_link / peer-count / density queries
from N worker processes without N copies of the reachability matrix.
That forces a stable on-disk schema: every large structure is a plain
``.npy`` array written in explicit little-endian dtypes and loaded back
with ``np.load(..., mmap_mode="r")``, so all workers share one
page-cache copy; everything irregular (policies, provenance sets,
Table 2 rows) lives in a JSON header small enough to parse per worker.

One artifact is a *directory*::

    header.json               # versioned header — written last (commit)
    plane_<i>_members.npy     # (M,)   <i8  ascending member ASNs
    plane_<i>_allow.npy       # (M, W) <u8  packed ALLOW rows (bit b of
                              #             member j's mask = bit b%64
                              #             of word b//64, little-endian)
    plane_<i>_masks.npy       # (4, W) <u8  covered/passive/active/
                              #             third-party member masks
    plane_<i>_counts.npy      # (M, 3) <i8  prefixes_observed,
                              #             inconsistent (-1 = absent),
                              #             observation_counts (0 = absent)
    plane_<i>_links.npy       # (L, 2) <i8  the IXP's inferred links
    links.npy                 # (L, 2) <i8  de-duplicated union, ascending
    peer_asns.npy             # (P,)   <i8  ASNs with >= 1 link, ascending
    peer_offsets.npy          # (P+1,) <i8  CSR offsets into neighbors
    peer_neighbors.npy        # (E,)   <i8  per-AS sorted peer lists

``header.json`` carries ``format``/``version``/``endianness`` plus the
per-IXP metadata needed to rebuild a bit-identical
:class:`~repro.runtime.reachmatrix.ReachabilityPlane` (merged policies,
source/provenance sets, looking-glass query spend) and, optionally, the
scenario's Table 2 rows so the daemon can answer ``table2`` without the
pipeline.  The header is written *last* via an atomic rename: a
directory without a parseable header is not an artifact, so a crashed
writer can never be mistaken for a complete one.

:func:`verify_identity` asserts bit-identity between an in-memory
matrix and a loaded artifact — links, per-plane rows, provenance,
peer counts and Table 2 — and is run by the service warm-up for every
registered scenario it loads.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.runtime.bitset import BitsetIndex, iter_bits
from repro.runtime.reachmatrix import (
    PACKED_DTYPE,
    PackedRows,
    ReachabilityMatrix,
    ReachabilityPlane,
    pack_mask,
    packed_words,
    unpack_mask,
)

try:  # pragma: no cover - exercised via numpy_available()
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

FORMAT_NAME = "repro-reachability-matrix"
FORMAT_VERSION = 1
ENDIANNESS = "little"

#: Index dtype of every non-mask array (links, members, CSR).
INDEX_DTYPE = "<i8"


class ArtifactFormatError(RuntimeError):
    """The directory is not a loadable reachability artifact."""


def _require_numpy() -> None:
    if _np is None:
        raise RuntimeError(
            "the service artifact requires numpy (install repro[numpy]); "
            "in-process queries remain available via ReachabilityMatrix")


# -- saving --------------------------------------------------------------------


def _link_csr(links) -> Tuple["_np.ndarray", "_np.ndarray", "_np.ndarray"]:
    """(peer_asns, peer_offsets, peer_neighbors) adjacency of a link set.

    Both directions of every undirected link, grouped by source ASN
    (ascending) with each group's peers ascending — so ``has_link`` and
    ``links_of`` are two ``searchsorted`` calls over mmap'd arrays.
    """
    if len(links) == 0:
        empty = _np.zeros(0, dtype=INDEX_DTYPE)
        return empty, _np.zeros(1, dtype=INDEX_DTYPE), empty
    src = _np.concatenate([links[:, 0], links[:, 1]])
    dst = _np.concatenate([links[:, 1], links[:, 0]])
    order = _np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    asns = _np.unique(src)
    offsets = _np.empty(len(asns) + 1, dtype=INDEX_DTYPE)
    offsets[:-1] = _np.searchsorted(src, asns, side="left")
    offsets[-1] = len(src)
    return (asns.astype(INDEX_DTYPE),
            offsets,
            dst.astype(INDEX_DTYPE))


def _plane_payload(plane: ReachabilityPlane) -> Dict[str, object]:
    """The JSON-safe metadata of one plane (everything non-columnar)."""
    return {
        "name": plane.ixp_name,
        "num_members": plane.num_members,
        "words": packed_words(plane.num_members),
        "active_queries": plane.active_queries,
        "policies": {str(bit): [mode, sorted(int(v) for v in listed)]
                     for bit, (mode, listed) in sorted(plane.policies.items())},
        "sources": {str(bit): sorted(plane.sources[bit])
                    for bit in sorted(plane.sources)},
        "passive_members": sorted(int(v) for v in plane.passive_members),
        "active_members": sorted(int(v) for v in plane.active_members),
    }


def save_matrix(matrix: ReachabilityMatrix,
                directory: Union[str, Path],
                *,
                scenario: Optional[str] = None,
                size: Optional[str] = None,
                table2: Optional[List[Dict[str, object]]] = None) -> Path:
    """Write *matrix* as a version-1 artifact directory; returns its path.

    ``header.json`` is written last (atomic rename), so a reader that
    finds a parseable header is guaranteed complete column files.
    Existing artifact files in the directory are overwritten.
    """
    _require_numpy()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    ixp_names = sorted(matrix.planes)
    ixps: List[Dict[str, object]] = []
    for i, name in enumerate(ixp_names):
        plane = matrix.planes[name]
        size_m = plane.num_members
        words = packed_words(size_m)
        members = _np.array(plane.index.universe, dtype=INDEX_DTYPE)
        allow = _np.zeros((size_m, words), dtype=PACKED_DTYPE)
        packed = plane.packed()
        if packed is not None:
            allow[:] = packed
        masks = _np.stack([
            pack_mask(plane.covered_mask, size_m),
            pack_mask(plane.passive_mask, size_m),
            pack_mask(plane.active_mask, size_m),
            pack_mask(plane.third_party_mask, size_m),
        ])
        counts = _np.full((size_m, 3), -1, dtype=INDEX_DTYPE)
        counts[:, 2] = 0
        for bit, value in plane.prefixes_observed.items():
            counts[bit, 0] = value
        for bit, value in plane.inconsistent.items():
            counts[bit, 1] = value
        for bit, value in plane.observation_counts.items():
            counts[bit, 2] = value
        plane_links = _np.array(
            matrix.links_of(name), dtype=INDEX_DTYPE).reshape(-1, 2)
        _np.save(directory / f"plane_{i:02d}_members.npy", members)
        _np.save(directory / f"plane_{i:02d}_allow.npy", allow)
        _np.save(directory / f"plane_{i:02d}_masks.npy", masks)
        _np.save(directory / f"plane_{i:02d}_counts.npy", counts)
        _np.save(directory / f"plane_{i:02d}_links.npy", plane_links)
        ixps.append(_plane_payload(plane))

    all_links = _np.array(
        matrix.all_links(), dtype=INDEX_DTYPE).reshape(-1, 2)
    peer_asns, peer_offsets, peer_neighbors = _link_csr(all_links)
    _np.save(directory / "links.npy", all_links)
    _np.save(directory / "peer_asns.npy", peer_asns)
    _np.save(directory / "peer_offsets.npy", peer_offsets)
    _np.save(directory / "peer_neighbors.npy", peer_neighbors)

    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "endianness": ENDIANNESS,
        "packed_dtype": PACKED_DTYPE,
        "index_dtype": INDEX_DTYPE,
        "built_by": matrix.built_by,
        "scenario": scenario,
        "size": size,
        "num_links": int(len(all_links)),
        "table2": table2,
        "ixps": ixps,
    }
    header_path = directory / "header.json"
    tmp = header_path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(header, indent=1, sort_keys=True) + "\n")
    os.replace(tmp, header_path)
    return directory


# -- loading -------------------------------------------------------------------


def _load_array(directory: Path, name: str, mmap: bool):
    path = directory / name
    if not path.is_file():
        raise ArtifactFormatError(f"missing artifact column {name}")
    return _np.load(path, mmap_mode="r" if mmap else None)


def _load_plane(directory: Path, i: int, payload: Dict[str, object],
                mmap: bool) -> ReachabilityPlane:
    members = _load_array(directory, f"plane_{i:02d}_members.npy", mmap)
    allow = _load_array(directory, f"plane_{i:02d}_allow.npy", mmap)
    masks = _load_array(directory, f"plane_{i:02d}_masks.npy", mmap)
    counts = _load_array(directory, f"plane_{i:02d}_counts.npy", mmap)
    size = int(payload["num_members"])
    if members.shape != (size,) or allow.shape != (size,
                                                   packed_words(size)):
        raise ArtifactFormatError(
            f"plane {payload['name']!r} column shapes do not match header")
    index = BitsetIndex(int(asn) for asn in members)
    if index.universe != tuple(int(asn) for asn in members):
        raise ArtifactFormatError(
            f"plane {payload['name']!r} members are not sorted-unique")
    covered_mask = unpack_mask(masks[0])
    row_bits = tuple(iter_bits(covered_mask))
    prefixes = {int(bit): int(counts[bit, 0]) for bit in range(size)
                if counts[bit, 0] >= 0}
    inconsistent = {int(bit): int(counts[bit, 1]) for bit in range(size)
                    if counts[bit, 1] >= 0}
    observations = {int(bit): int(counts[bit, 2]) for bit in range(size)
                    if counts[bit, 2] > 0}
    return ReachabilityPlane(
        ixp_name=str(payload["name"]),
        index=index,
        allow_rows=PackedRows(allow, row_bits),
        policies={int(bit): (str(mode), frozenset(listed))
                  for bit, (mode, listed)
                  in dict(payload["policies"]).items()},
        sources={int(bit): frozenset(values)
                 for bit, values in dict(payload["sources"]).items()},
        prefixes_observed=prefixes,
        inconsistent=inconsistent,
        covered_mask=covered_mask,
        passive_mask=unpack_mask(masks[1]),
        active_mask=unpack_mask(masks[2]),
        third_party_mask=unpack_mask(masks[3]),
        passive_members=frozenset(int(v)
                                  for v in payload["passive_members"]),
        active_members=frozenset(int(v)
                                 for v in payload["active_members"]),
        active_queries=int(payload["active_queries"]),
        observation_counts=observations,
        _packed=allow,
    )


class ArtifactHandle:
    """One loaded artifact: the matrix plus mmap'd query indexes.

    ``has_link``/``links_of``/``peer_counts`` run off the CSR arrays
    (two ``searchsorted`` calls against the mmap), so N daemon workers
    answering them share one page-cache copy of every column; the
    density view is derived lazily from the matrix and memoised
    per process (it is a few hundred floats per IXP).
    """

    def __init__(self, directory: Path, header: Dict[str, object],
                 matrix: ReachabilityMatrix, all_links, peer_asns,
                 peer_offsets, peer_neighbors) -> None:
        self.directory = directory
        self.header = header
        self.matrix = matrix
        self.all_links = all_links
        self.peer_asns = peer_asns
        self.peer_offsets = peer_offsets
        self.peer_neighbors = peer_neighbors
        self.scenario = header.get("scenario")
        self.size = header.get("size")
        self.table2 = header.get("table2")
        self._densities: Optional[Dict[str, Dict[int, float]]] = None

    # -- queries -------------------------------------------------------------

    @property
    def num_links(self) -> int:
        return int(len(self.all_links))

    def _peer_slice(self, asn: int):
        i = int(_np.searchsorted(self.peer_asns, asn))
        if i >= len(self.peer_asns) or int(self.peer_asns[i]) != asn:
            return None
        return self.peer_neighbors[
            int(self.peer_offsets[i]):int(self.peer_offsets[i + 1])]

    def has_link(self, a: int, b: int) -> bool:
        """Whether the ordered/unordered pair (a, b) is an inferred link."""
        peers = self._peer_slice(int(a))
        if peers is None:
            return False
        j = int(_np.searchsorted(peers, int(b)))
        return j < len(peers) and int(peers[j]) == int(b)

    def links_of(self, asn: int) -> List[int]:
        """The sorted MLP peers of *asn* (empty when unknown)."""
        peers = self._peer_slice(int(asn))
        if peers is None:
            return []
        return [int(p) for p in peers]

    def peer_counts(self) -> Dict[int, int]:
        """Per-AS distinct peer counts, ascending ASN order."""
        degrees = _np.diff(self.peer_offsets)
        return {int(asn): int(degree)
                for asn, degree in zip(self.peer_asns, degrees)}

    def member_densities(self) -> Dict[str, Dict[int, float]]:
        """Per-IXP per-member peering densities (figure 12's raw data)."""
        if self._densities is None:
            from repro.analysis.density import member_densities
            self._densities = {
                name: member_densities(self.matrix.links_of(name),
                                       plane.index.universe)
                for name, plane in sorted(self.matrix.planes.items())}
        return self._densities

    def summary(self) -> Dict[str, object]:
        """Headline numbers for listings and smoke checks."""
        return {
            "scenario": self.scenario,
            "size": self.size,
            "ixps": len(self.matrix.planes),
            "links": self.num_links,
            "peer_ases": int(len(self.peer_asns)),
            "built_by": self.matrix.built_by,
            "has_table2": self.table2 is not None,
        }

    def __repr__(self) -> str:
        return (f"ArtifactHandle({self.scenario or self.directory.name}: "
                f"{self.num_links} links, {len(self.matrix.planes)} planes)")


def load_matrix(directory: Union[str, Path],
                mmap: bool = True) -> ArtifactHandle:
    """Load an artifact directory (mmap'd by default) into a handle.

    Raises :class:`ArtifactFormatError` on a missing/incompatible
    header or malformed columns, so a truncated artifact is a clean
    failure instead of silently wrong answers.
    """
    _require_numpy()
    directory = Path(directory)
    header_path = directory / "header.json"
    if not header_path.is_file():
        raise ArtifactFormatError(f"{directory} has no header.json")
    try:
        header = json.loads(header_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ArtifactFormatError(
            f"unreadable artifact header {header_path}: {error}") from error
    if header.get("format") != FORMAT_NAME:
        raise ArtifactFormatError(
            f"{directory} is not a {FORMAT_NAME} artifact "
            f"(format={header.get('format')!r})")
    if header.get("version") != FORMAT_VERSION:
        raise ArtifactFormatError(
            f"unsupported artifact version {header.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})")
    if header.get("endianness") != ENDIANNESS:
        raise ArtifactFormatError(
            f"unsupported endianness {header.get('endianness')!r}")

    planes: Dict[str, ReachabilityPlane] = {}
    links_by_ixp: Dict[str, Tuple[Tuple[int, int], ...]] = {}
    for i, payload in enumerate(header["ixps"]):
        plane = _load_plane(directory, i, payload, mmap)
        planes[plane.ixp_name] = plane
        plane_links = _load_array(directory, f"plane_{i:02d}_links.npy",
                                  mmap)
        links_by_ixp[plane.ixp_name] = tuple(
            (int(a), int(b)) for a, b in plane_links)
    matrix = ReachabilityMatrix(planes, links_by_ixp=links_by_ixp,
                                built_by=str(header.get("built_by",
                                                        "artifact")))
    return ArtifactHandle(
        directory=directory,
        header=header,
        matrix=matrix,
        all_links=_load_array(directory, "links.npy", mmap),
        peer_asns=_load_array(directory, "peer_asns.npy", mmap),
        peer_offsets=_load_array(directory, "peer_offsets.npy", mmap),
        peer_neighbors=_load_array(directory, "peer_neighbors.npy", mmap),
    )


# -- verification --------------------------------------------------------------


def verify_identity(matrix: ReachabilityMatrix, handle: ArtifactHandle,
                    table2: Optional[List[Dict[str, object]]] = None
                    ) -> List[str]:
    """Bit-identity check: built matrix vs loaded artifact.

    Returns a list of human-readable mismatch descriptions (empty ==
    identical).  Covers the acceptance surface: per-plane ALLOW rows,
    policies, provenance masks/sets, observation counts, per-IXP and
    global link sets, peer counts (both the matrix view and the CSR
    view) and — when the expected rows are supplied — Table 2.
    """
    problems: List[str] = []
    loaded = handle.matrix
    if sorted(matrix.planes) != sorted(loaded.planes):
        return [f"IXP sets differ: {sorted(matrix.planes)} vs "
                f"{sorted(loaded.planes)}"]
    for name in sorted(matrix.planes):
        mine, theirs = matrix.planes[name], loaded.planes[name]
        checks = [
            ("universe", mine.index.universe, theirs.index.universe),
            ("allow_rows", dict(mine.allow_rows), dict(theirs.allow_rows)),
            ("policies", mine.policies, theirs.policies),
            ("sources", mine.sources, theirs.sources),
            ("covered_mask", mine.covered_mask, theirs.covered_mask),
            ("passive_mask", mine.passive_mask, theirs.passive_mask),
            ("active_mask", mine.active_mask, theirs.active_mask),
            ("third_party_mask", mine.third_party_mask,
             theirs.third_party_mask),
            ("passive_members", mine.passive_members,
             theirs.passive_members),
            ("active_members", mine.active_members, theirs.active_members),
            ("prefixes_observed", mine.prefixes_observed,
             theirs.prefixes_observed),
            ("inconsistent", mine.inconsistent, theirs.inconsistent),
            ("observation_counts", mine.observation_counts,
             theirs.observation_counts),
            ("active_queries", mine.active_queries, theirs.active_queries),
            ("links", mine.links(), theirs.links()),
        ]
        problems.extend(f"plane {name}: {field} differs"
                        for field, a, b in checks if a != b)
    if matrix.links_by_ixp() != loaded.links_by_ixp():
        problems.append("links_by_ixp differs")
    if matrix.all_links() != loaded.all_links():
        problems.append("all_links differs")
    if matrix.all_links() != tuple((int(a), int(b))
                                   for a, b in handle.all_links):
        problems.append("links.npy differs from all_links")
    if matrix.multi_ixp_links() != loaded.multi_ixp_links():
        problems.append("multi_ixp_links differs")
    if matrix.link_ixps() != loaded.link_ixps():
        problems.append("link_ixps (provenance) differs")
    if matrix.peer_counts() != loaded.peer_counts():
        problems.append("peer_counts differs")
    if matrix.peer_counts() != handle.peer_counts():
        problems.append("CSR peer_counts differs")
    if table2 is not None and handle.table2 != table2:
        problems.append("table2 differs")
    return problems
