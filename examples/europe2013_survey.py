#!/usr/bin/env python3
"""Back-compat shim: the Europe-2013 survey via the generic runner.

The survey is now scenario-agnostic — see ``examples/survey.py`` (this
wrapper forwards to it with ``--scenario europe2013``).

Run with:  python examples/europe2013_survey.py [--scale SMALL|MEDIUM]
"""

import argparse
import importlib.util
from pathlib import Path

# The survey module is a sibling script, not an installed package;
# load it by path so the shim works under every invocation style.
_spec = importlib.util.spec_from_file_location(
    "_repro_example_survey", Path(__file__).with_name("survey.py"))
_survey = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_survey)
run_survey = _survey.run_survey


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "medium"], default="small",
                        help="size of the synthetic ecosystem")
    args = parser.parse_args()
    run_survey("europe2013", args.scale)


if __name__ == "__main__":
    main()
