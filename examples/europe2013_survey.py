#!/usr/bin/env python3
"""Reproduce the paper's measurement survey on the synthetic ecosystem.

Builds the "13 European IXPs, May 2013" scenario, runs the full passive +
active inference pipeline and prints the Table 2 rows, the visibility
headline numbers (figure 6) and the validation summary (Table 3).

Run with:  python examples/europe2013_survey.py [--scale SMALL|MEDIUM]
"""

import argparse

from repro.analysis.visibility import VisibilityAnalysis
from repro.core.validation import LinkValidator
from repro.scenarios.europe2013 import build_europe2013
from repro.scenarios.workloads import medium_scenario_config, small_scenario_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "medium"], default="small",
                        help="size of the synthetic ecosystem")
    args = parser.parse_args()

    config = small_scenario_config() if args.scale == "small" \
        else medium_scenario_config()
    print(f"building the europe-2013 scenario ({args.scale}) ...")
    scenario = build_europe2013(config)
    print(f"  {len(scenario.graph)} ASes, "
          f"{len(scenario.ground_truth_links())} ground-truth MLP pairs")

    print("running passive + active inference ...")
    result = scenario.run_inference()

    ixp_ases = {name: len(ixp.members) for name, ixp in scenario.ixps.items()}
    ixp_lg = {spec.name: spec.has_rs_lg for spec in scenario.internet.ixp_specs}
    print("\nTable 2 — inference results per IXP")
    print(f"  {'IXP':<10} {'LG':>3} {'ASes':>6} {'RS':>5} {'Pasv':>6} "
          f"{'Active':>7} {'Links':>8}")
    for row in result.table2(ixp_ases=ixp_ases, ixp_has_lg=ixp_lg):
        print(f"  {row['IXP']:<10} {row['LG']:>3} {row['ASes']:>6} {row['RS']:>5} "
              f"{row['Pasv']:>6} {row['Active']:>7} {row['Links']:>8}")

    inferred = set(result.all_links())
    truth = scenario.ground_truth_links()
    visibility = VisibilityAnalysis(
        inferred, scenario.public_bgp_links(), scenario.traceroute_links())
    print("\nheadline numbers")
    print(f"  inferred MLP links:        {len(inferred)}")
    print(f"  precision vs ground truth: {len(inferred & truth) / len(inferred):.3f}")
    print(f"  invisible in public BGP:   {visibility.report.fraction_invisible:.1%}"
          f"  (paper: 88%)")

    print("\nvalidating a sample of links against the public looking glasses ...")
    sample = sorted(inferred)[: min(3000, len(inferred))]
    validator = LinkValidator(scenario.validation_lgs,
                              scenario.origin_prefixes(),
                              geolocation=scenario.geolocation)
    report = validator.validate(sample)
    print(f"  tested {report.num_tested} links, confirmed "
          f"{report.num_confirmed} ({report.confirmation_rate:.1%}; paper: 98.4%)")


if __name__ == "__main__":
    main()
