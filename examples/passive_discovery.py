#!/usr/bin/env python3
"""Passive-only discovery: mine RS communities out of collector archives.

Demonstrates section 4.2 in isolation: no looking glass is queried; the
only inputs are the archived Route Views / RIPE RIS style table dumps of
the scenario.  Shows how many RS members (and links) each IXP yields from
passive data alone, and how the RS setter is pin-pointed.

Run with:  python examples/passive_discovery.py [--scenario NAME] [--size SIZE]
"""

import argparse
from collections import Counter

from repro.core.passive import PassiveInference
from repro.scenarios.workloads import scenario_run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="europe2013",
                        help="registered scenario family")
    parser.add_argument("--size", default="small",
                        help="size-table row (tiny/small/bench/medium/large/full)")
    args = parser.parse_args()

    scenario = scenario_run(args.size, scenario=args.scenario).scenario()
    entries = scenario.archive.clean_stable_entries()
    print(f"archived RIB entries after cleaning: {len(entries)}")

    engine = scenario.make_engine()
    passive = PassiveInference(engine.interpreter, scenario.relationship_map())
    observations = passive.extract(entries)

    print(f"entries with attributable RS communities: {len(observations)}")
    print(f"ambiguous-IXP entries skipped: {passive.stats.entries_ambiguous_ixp}")
    print(f"entries without an identifiable setter: "
          f"{passive.stats.entries_without_setter}")

    per_ixp_members = Counter()
    feeders = Counter()
    for observation in observations:
        per_ixp_members[observation.ixp_name] = per_ixp_members.get(
            observation.ixp_name, 0)
    members_by_ixp = passive.covered_members(observations)
    for observation in observations:
        feeders[(observation.ixp_name, observation.feeder_asn)] += 1

    print("\nRS members whose communities are visible passively, per IXP:")
    for ixp_name in sorted(members_by_ixp, key=lambda n: -len(members_by_ixp[n])):
        members = members_by_ixp[ixp_name]
        rs_feeders = {feeder for (name, feeder) in feeders if name == ixp_name}
        print(f"  {ixp_name:<10} members={len(members):>4}  "
              f"RS feeders={len(rs_feeders)}")

    print("\nrunning the full inference with passive data only ...")
    result = scenario.run_inference(use_active=False)
    print(f"  links inferred passively: {len(result.all_links())}")
    combined = scenario.run_inference()
    print(f"  links with active queries added: {len(combined.all_links())}")


if __name__ == "__main__":
    main()
