#!/usr/bin/env python3
"""Serve a reachability matrix and query it — end to end in one script.

Builds a scenario through the staged pipeline, exports its
reachability matrix as the mmap-able artifact, boots the query daemon
on an ephemeral port and asks it questions over real HTTP::

    python examples/query_service.py
    python examples/query_service.py --scenario hypergiant2016 --size small

For a long-running daemon use the CLI instead::

    python -m repro.service.daemon --scenario europe2013 --size small \
        --port 8321 --workers 4 --cache-dir .cache
"""

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.service import ServerThread, warm_service
from repro.service.loadgen import HttpClient, run_load


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="europe2013")
    parser.add_argument("--size", default="tiny")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-example-") as tmp:
        print(f"warming {args.scenario} ({args.size}) -- pipeline build, "
              "artifact export, mmap load, bit-identity check ...")
        service, directories = warm_service(
            [args.scenario], size=args.size, artifact_root=Path(tmp))
        handle = service.handles[args.scenario]
        print(f"artifact: {directories[0]}")
        print(f"summary:  {handle.summary()}")

        with ServerThread(service) as server, \
                HttpClient("127.0.0.1", server.port) as client:
            print(f"daemon listening on 127.0.0.1:{server.port}")

            a, b = (int(x) for x in handle.all_links[0])
            _, payload = client.request(
                f"/q/{args.scenario}/has_link?a={a}&b={b}")
            print(f"has_link({a}, {b}) -> {payload['has_link']}")

            _, payload = client.request(f"/q/{args.scenario}/links_of?asn={a}")
            print(f"links_of({a}) -> {payload['count']} peers, "
                  f"first few {payload['peers'][:5]}")

            _, payload = client.request(f"/q/{args.scenario}/table2")
            row = payload["rows"][0]
            print(f"table2 first row -> {row}")

            report = run_load("127.0.0.1", server.port, "has_link",
                              [f"/q/{args.scenario}/has_link?a={a}&b={b}"],
                              repeat=200)
            print(f"load: {report.requests} requests, "
                  f"p50 {report.p50_us:.0f}us, p99 {report.p99_us:.0f}us, "
                  f"{report.qps:.0f} q/s")

            _, payload = client.request("/stats")
            print(f"stats counters -> {payload['counters']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
