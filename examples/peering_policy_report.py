#!/usr/bin/env python3
"""Peering-policy report: sections 5.2-5.5 on the synthetic ecosystem.

Joins the inferred multilateral peering fabric with the PeeringDB-style
registry to reproduce the policy analyses: route-server participation by
policy (figure 9), multi-IXP behaviour (figure 10), export openness
(figure 11), peering density (figure 12) and the repeller analysis
(figure 13).

Run with:  python examples/peering_policy_report.py [--scenario NAME] [--size SIZE]
"""

import argparse

from repro.analysis.density import density_per_ixp
from repro.analysis.policies import PolicyAnalysis
from repro.analysis.repellers import RepellerAnalysis
from repro.scenarios.workloads import scenario_run
from repro.topology.customer_cone import customer_cone


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="europe2013",
                        help="registered scenario family")
    parser.add_argument("--size", default="small",
                        help="size-table row (tiny/small/bench/medium/large/full)")
    args = parser.parse_args()

    run = scenario_run(args.size, scenario=args.scenario)
    scenario = run.scenario()
    result = run.inference()
    graph = scenario.graph
    analysis = PolicyAnalysis(graph, scenario.peeringdb)

    print("figure 9 — route-server participation by self-reported policy")
    for row in analysis.participation_by_policy(list(scenario.ixps)).as_rows():
        print(f"  {row['policy']:<12} {row['participates']:>4} on a RS, "
              f"{row['does_not']:>4} not ({row['rate']:.0%})")

    matrix = analysis.multi_ixp_matrix(list(scenario.ixps))
    print("\nfigure 10 — IXP presences vs RS participation")
    print(f"  single IXP + its RS: {matrix.fraction_single_ixp_with_rs():.1%}")
    print(f"  no RS anywhere:      {matrix.fraction_no_rs():.1%}")

    reach = {name: inf.reachabilities for name, inf in result.per_ixp.items()}
    members = {name: graph.rs_members_of_ixp(name) for name in result.per_ixp}
    openness = analysis.export_openness_by_policy(reach, members)
    print("\nfigure 11 — mean export openness by policy")
    for policy, mean in sorted(PolicyAnalysis.mean_openness(openness).items()):
        print(f"  {policy:<12} {mean:.1%}")

    density = density_per_ixp(result.links_by_ixp(), members,
                              only_members_with_links=True)
    print("\nfigure 12 — mean RS peering density (IXPs with an RS LG)")
    for name in scenario.rs_looking_glasses:
        print(f"  {name:<10} {density.mean_density(name):.2f}")

    repellers = RepellerAnalysis(
        customer_cone=lambda asn: customer_cone(graph, asn),
        direct_customers=lambda asn: set(graph.customers(asn)))
    report = repellers.analyse(reach, members)
    hypergiants = set(scenario.internet.hypergiants)
    print("\nfigure 13 — most-excluded networks (repellers)")
    for asn, count in report.top_repellers(5):
        label = "hypergiant" if asn in hypergiants else graph.get_as(asn).name
        print(f"  AS{asn:<8} blocked {count:>3} times  ({label})")
    print(f"  EXCLUDEs targeting the blocker's own customer cone: "
          f"{report.fraction_customer_cone():.0%}")


if __name__ == "__main__":
    main()
