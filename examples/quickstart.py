#!/usr/bin/env python3
"""Quickstart: infer multilateral peering links at a toy IXP.

Builds a four-member route server by hand (the figure 3 example of the
paper), queries its looking glass, runs the active inference steps and
prints the inferred p2p links.

Run with:  python examples/quickstart.py
"""

from repro.bgp.prefix import Prefix
from repro.core.active import ActiveInference
from repro.core.communities import RSCommunityInterpreter
from repro.core.reachability import infer_links, merge_observations
from repro.ixp.community_schemes import CommunityScheme, SchemeRegistry
from repro.ixp.looking_glass import RouteServerLookingGlass
from repro.ixp.member import MemberExportPolicy
from repro.ixp.route_server import RouteServer


def main() -> None:
    # 1. The IXP's documented community grammar (Table 1, DE-CIX style).
    scheme = CommunityScheme.rs_asn_style("DE-CIX", rs_asn=6695)
    registry = SchemeRegistry([scheme])

    # 2. A route server with four members: A excludes C, everyone else is open.
    a, b, c, d = 64496, 64497, 64498, 64499
    route_server = RouteServer("DE-CIX", rs_asn=6695, scheme=scheme)
    route_server.add_member(a, MemberExportPolicy.all_except(a, "DE-CIX", {c}))
    route_server.add_member(b, MemberExportPolicy.announce_to_all(b, "DE-CIX"))
    route_server.add_member(c, MemberExportPolicy.announce_to_all(c, "DE-CIX"))
    route_server.add_member(d, MemberExportPolicy.announce_to_all(d, "DE-CIX"))
    for index, member in enumerate((a, b, c, d)):
        route_server.announce(member, Prefix.parse(f"198.51.{index}.0/24"))

    # 3. Drive the route-server looking glass through steps 1-3 of section 4.1.
    looking_glass = RouteServerLookingGlass(route_server)
    collection = ActiveInference(looking_glass).collect()
    print(f"route-server members (A_RS): {sorted(collection.members)}")
    print(f"looking-glass queries used:  {collection.total_queries}")

    # 4. Interpret the communities and build each member's N_a (step 4).
    interpreter = RSCommunityInterpreter(registry,
                                         {"DE-CIX": collection.members},
                                         mappers={"DE-CIX": route_server.mapper})
    observations = collection.policy_observations(interpreter)
    reachabilities = {}
    for member in collection.members:
        merged = merge_observations(
            [o for o in observations if o.member_asn == member],
            collection.members)
        if merged is not None:
            reachabilities[member] = merged
            allowed = sorted(merged.allowed_members(collection.members))
            print(f"  AS{member} ({merged.mode}) allows -> {allowed}")

    # 5. Reciprocal ALLOW => p2p link (step 5).
    links = infer_links(reachabilities, collection.members)
    print(f"\ninferred multilateral peering links ({len(links)}):")
    for left, right in sorted(links):
        print(f"  AS{left} -- AS{right}")
    print("\nnote: AS%d and AS%d have no link because A excludes C." % (a, c))


if __name__ == "__main__":
    main()
