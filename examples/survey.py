#!/usr/bin/env python3
"""Reproduce the paper's measurement survey on any registered scenario.

Builds the requested scenario through the staged pipeline, runs the full
passive + active inference and prints the Table 2 rows, the visibility
headline numbers (figure 6) and the validation summary (Table 3).

Run with:  python examples/survey.py [--scenario NAME] [--size SIZE]
           python examples/survey.py --events churn
           python examples/survey.py --list

Any family registered in the scenario registry works; `--list` shows
what is available.  `--events FAMILY` replays an event timeline (churn,
failover, flap-storm) on top of the scenario via incremental delta
recompute and prints the per-event affected-set statistics.
"""

import argparse

from repro.analysis.visibility import VisibilityAnalysis
from repro.core.validation import LinkValidator
from repro.scenarios import get_scenario, scenario_names
from repro.scenarios.workloads import scenario_run


def print_timeline(run) -> None:
    """Replay the run's event timeline and print per-event stats."""
    spec = run.spec
    print(f"\nreplaying the {spec.timeline.family!r} timeline "
          f"({spec.timeline.length} events, delta recompute) ...")
    report = run.timeline()
    print(f"  {'#':>2} {'event':<12} {'affected':>8} {'recomp':>6} "
          f"{'reused':>6} {'frac':>7} {'links':>5} {'ms':>8}")
    for index, row in enumerate(report.rows()):
        print(f"  {index:>2} {row['event']:<12} {row['affected']:>8} "
              f"{row['recomputed']:>6} {row['reused']:>6} "
              f"{row['affected_fraction']:>7.2%} {row['links_changed']:>5} "
              f"{row['seconds'] * 1e3:>8.1f}")
    total = sum(row["affected"] for row in report.rows())
    origins = report.reports[-1].total if report.reports else 0
    print(f"  {len(report.events)} events, {total} origin recomputes "
          f"over {origins} origins")


def run_survey(scenario_name: str, size: str, workers=None,
               backend=None, inference_backend=None, events=None) -> None:
    """Build one scenario, run inference, print the survey tables."""
    spec = get_scenario(scenario_name)
    if events is not None:
        from repro.scenarios.events import TimelineSpec
        spec = spec.with_overrides(
            name=f"{spec.name}+{events}",
            timeline=TimelineSpec(family=events, length=8,
                                  seed=spec.base_seed))
    print(f"building the {spec.name} scenario ({size}) ...")
    if spec.description:
        print(f"  {spec.description}")
    if events is not None:
        from repro.pipeline.run import ScenarioRun
        run = ScenarioRun(spec.config(size), scenario=spec, workers=workers,
                          backend=backend,
                          inference_backend=inference_backend)
    else:
        run = scenario_run(size, scenario=scenario_name, workers=workers,
                           backend=backend,
                           inference_backend=inference_backend)
    scenario = run.scenario()
    print(f"  {len(scenario.graph)} ASes, "
          f"{len(scenario.ground_truth_links())} ground-truth MLP pairs")

    print(f"running passive + active inference "
          f"({run.inference_backend} backend) ...")
    result = run.inference()

    ixp_ases = {name: len(ixp.members) for name, ixp in scenario.ixps.items()}
    ixp_lg = {s.name: s.has_rs_lg for s in scenario.internet.ixp_specs}
    print("\nTable 2 — inference results per IXP")
    print(f"  {'IXP':<12} {'LG':>3} {'ASes':>6} {'RS':>5} {'Pasv':>6} "
          f"{'Active':>7} {'Links':>8}")
    for row in result.table2(ixp_ases=ixp_ases, ixp_has_lg=ixp_lg):
        print(f"  {row['IXP']:<12} {row['LG']:>3} {row['ASes']:>6} "
              f"{row['RS']:>5} {row['Pasv']:>6} {row['Active']:>7} "
              f"{row['Links']:>8}")

    inferred = set(result.all_links())
    truth = scenario.ground_truth_links()
    visibility = VisibilityAnalysis(
        inferred, scenario.public_bgp_links(), scenario.traceroute_links())
    print("\nheadline numbers")
    print(f"  inferred MLP links:        {len(inferred)}")
    if inferred:
        print(f"  precision vs ground truth: "
              f"{len(inferred & truth) / len(inferred):.3f}")
    print(f"  invisible in public BGP:   {visibility.report.fraction_invisible:.1%}"
          f"  (paper: 88%)")

    print("\nvalidating a sample of links against the public looking glasses ...")
    sample = sorted(inferred)[: min(3000, len(inferred))]
    validator = LinkValidator(scenario.validation_lgs,
                              scenario.origin_prefixes(),
                              geolocation=scenario.geolocation)
    report = validator.validate(sample)
    print(f"  tested {report.num_tested} links, confirmed "
          f"{report.num_confirmed} ({report.confirmation_rate:.1%}; paper: 98.4%)")

    if run.spec.timeline is not None:
        print_timeline(run)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="europe2013",
                        help="registered scenario family (see --list)")
    parser.add_argument("--size", default="small",
                        help="size-table row (tiny/small/bench/medium/large/full)")
    parser.add_argument("--workers", type=int, default=None,
                        help="shard the parallel stages across N processes")
    parser.add_argument("--backend", default=None,
                        choices=["frontier", "batched", "compiled",
                                 "reference"],
                        help="propagation data plane (default: frontier; "
                             "compiled is the fused kernel, fastest)")
    parser.add_argument("--inference-backend", default=None,
                        choices=["object", "bitset"],
                        help="MLP inference data plane (default: object; "
                             "bitset is the vectorized reachability plane)")
    parser.add_argument("--events", default=None, metavar="FAMILY",
                        help="replay an event-timeline family (churn, "
                             "failover, flap-storm) over the scenario and "
                             "print per-event delta-recompute stats")
    parser.add_argument("--list", action="store_true",
                        help="list the registered scenarios and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in scenario_names():
            spec = get_scenario(name)
            sizes = ", ".join(spec.size_names())
            print(f"{name:<20} {spec.description}")
            print(f"{'':<20} sizes: {sizes}")
        return

    run_survey(args.scenario, args.size, workers=args.workers,
               backend=args.backend,
               inference_backend=args.inference_backend,
               events=args.events)


if __name__ == "__main__":
    main()
