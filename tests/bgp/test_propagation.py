"""Tests for the valley-free propagation engine."""

import pytest

from repro.bgp.communities import Community
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.bgp.propagation import (
    Adjacency,
    CLASS_CUSTOMER,
    CLASS_ORIGIN,
    CLASS_PEER,
    CLASS_PROVIDER,
    OriginSpec,
    PropagationEngine,
    bidirectional_adjacencies,
)


def build_engine(links, record_at=None, record_alternatives_at=None,
                 extra_adjacencies=()):
    """links: list of (customer, provider) or (a, b, 'peer'/'rs') tuples."""
    adjacencies = []
    for link in links:
        if len(link) == 2:
            customer, provider = link
            adjacencies.extend(bidirectional_adjacencies(
                customer, provider, Relationship.PROVIDER))
        else:
            a, b, kind = link
            rel = Relationship.RS_PEER if kind == "rs" else Relationship.PEER
            adjacencies.append(Adjacency(source=a, target=b, relationship=rel))
            adjacencies.append(Adjacency(source=b, target=a, relationship=rel))
    adjacencies.extend(extra_adjacencies)
    return PropagationEngine(adjacencies, record_at=record_at,
                             record_alternatives_at=record_alternatives_at)


def origin(asn, prefix="10.0.0.0/24"):
    return OriginSpec(asn=asn, prefixes=[Prefix.parse(prefix)])


class TestBidirectionalAdjacencies:
    def test_customer_provider_directions(self):
        adjacencies = bidirectional_adjacencies(1, 2, Relationship.CUSTOMER)
        by_target = {adj.target: adj for adj in adjacencies}
        # 2 is 1's customer: when 2 learns from 1, it learned from a provider.
        assert by_target[2].relationship is Relationship.PROVIDER
        assert by_target[1].relationship is Relationship.CUSTOMER


class TestPropagation:
    def test_customer_route_climbs_to_provider(self):
        # 10 is customer of 20, 20 customer of 30.
        engine = build_engine([(10, 20), (20, 30)])
        result = engine.propagate([origin(10)])
        assert result.best_route(30, 10).path == (30, 20, 10)
        assert result.best_route(30, 10).provenance == CLASS_CUSTOMER

    def test_provider_route_descends_to_customers(self):
        engine = build_engine([(10, 20), (11, 20)])
        result = engine.propagate([origin(10)])
        assert result.best_route(11, 10).path == (11, 20, 10)
        assert result.best_route(11, 10).provenance == CLASS_PROVIDER

    def test_peer_route_single_hop(self):
        # 10-20 c2p, 20 peers with 30, 30 has customer 40.
        engine = build_engine([(10, 20), (40, 30), (20, 30, "peer")])
        result = engine.propagate([origin(10)])
        # 30 learns via its peer 20, and passes it down to customer 40.
        assert result.best_route(30, 10).path == (30, 20, 10)
        assert result.best_route(30, 10).provenance == CLASS_PEER
        assert result.best_route(40, 10).path == (40, 30, 20, 10)

    def test_valley_free_violation_blocked(self):
        # A route learned from a peer must not be re-exported to another peer.
        engine = build_engine([(10, 20), (20, 30, "peer"), (30, 40, "peer")])
        result = engine.propagate([origin(10)])
        assert result.best_route(30, 10) is not None
        assert result.best_route(40, 10) is None

    def test_peer_route_not_exported_to_provider(self):
        # 30 learns 10's route from peer 20; 30's provider 50 must not get it.
        engine = build_engine([(10, 20), (20, 30, "peer"), (30, 50)])
        result = engine.propagate([origin(10)])
        assert result.best_route(50, 10) is None

    def test_customer_route_preferred_over_peer_and_provider(self):
        # 99 can reach the origin both via its customer and via its peer.
        engine = build_engine([(10, 99), (10, 20), (20, 99, "peer")])
        result = engine.propagate([origin(10)])
        best = result.best_route(99, 10)
        assert best.provenance == CLASS_CUSTOMER
        assert best.path == (99, 10)

    def test_shortest_path_wins_within_class(self):
        engine = build_engine([(10, 20), (20, 30), (10, 30)])
        result = engine.propagate([origin(10)])
        assert result.best_route(30, 10).path == (30, 10)

    def test_origin_route_recorded(self):
        engine = build_engine([(10, 20)])
        result = engine.propagate([origin(10)])
        assert result.best_route(10, 10).provenance == CLASS_ORIGIN
        assert result.best_route(10, 10).path == (10,)

    def test_rs_peer_communities_attached_and_transitive(self):
        tag = Community(6695, 6695)
        adjacency = [
            Adjacency(source=10, target=20, relationship=Relationship.RS_PEER,
                      communities=frozenset({tag})),
            Adjacency(source=20, target=10, relationship=Relationship.RS_PEER),
        ]
        engine = build_engine([(30, 20)], extra_adjacencies=adjacency)
        result = engine.propagate([origin(10)])
        # 20 learned 10's route over the RS edge: the community is attached,
        # and survives the export down to 20's customer 30.
        assert tag in result.best_route(20, 10).communities
        assert tag in result.best_route(30, 10).communities

    def test_non_transparent_route_server_asn_in_path(self):
        adjacency = [
            Adjacency(source=10, target=20, relationship=Relationship.RS_PEER,
                      via_rs_asn=6695, rs_transparent=False),
            Adjacency(source=20, target=10, relationship=Relationship.RS_PEER,
                      via_rs_asn=6695, rs_transparent=False),
        ]
        engine = build_engine([], extra_adjacencies=adjacency)
        result = engine.propagate([origin(10)])
        assert result.best_route(20, 10).path == (20, 6695, 10)

    def test_record_at_limits_observers(self):
        engine = build_engine([(10, 20), (20, 30)], record_at=[30])
        result = engine.propagate([origin(10)])
        assert result.best_route(30, 10) is not None
        assert result.best_route(20, 10) is None

    def test_record_alternatives(self):
        engine = build_engine([(10, 20), (10, 30), (20, 99), (30, 99)],
                              record_alternatives_at=[99])
        result = engine.propagate([origin(10)])
        paths = result.all_paths(99, 10)
        assert len(paths) >= 2
        first_hops = {route.path[1] for route in paths}
        assert first_hops == {20, 30}

    def test_visible_links_from_observers(self):
        engine = build_engine([(10, 20), (20, 30)])
        result = engine.propagate([origin(10)])
        links = result.visible_links([30])
        assert links == {(10, 20), (20, 30)}

    def test_multiple_origins(self):
        engine = build_engine([(10, 20), (11, 20)])
        result = engine.propagate([origin(10), origin(11, "10.1.0.0/24")])
        assert result.best_route(11, 10) is not None
        assert result.best_route(10, 11) is not None
        assert set(result.origins()) == {10, 11}

    def test_sibling_link_transparent(self):
        adjacencies = [
            Adjacency(source=10, target=11, relationship=Relationship.SIBLING),
            Adjacency(source=11, target=10, relationship=Relationship.SIBLING),
        ]
        engine = build_engine([(11, 20, "peer")], extra_adjacencies=adjacencies)
        result = engine.propagate([origin(10)])
        # The sibling 11 holds the route with origin-like provenance and can
        # therefore still export it across its peering link.
        assert result.best_route(11, 10) is not None
        assert result.best_route(20, 10) is not None
