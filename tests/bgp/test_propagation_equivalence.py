"""Property-style equivalence: frontier engine vs object-graph reference.

The array-based frontier engine (:class:`PropagationEngine`) must
produce exactly the same best routes — provenance, AS path, transitive
communities, learned-from neighbour — as the retained seed
implementation (:class:`ReferencePropagationEngine`) on any topology.
Randomized small internets across several seeds exercise the corners:
multi-provider hierarchies, bilateral and route-server peering (with
attached communities and non-transparent route servers), sibling links
and origin-attached communities.
"""

import random

import pytest

from repro.bgp.communities import Community
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.bgp.propagation import (
    Adjacency,
    OriginSpec,
    PropagationEngine,
    bidirectional_adjacencies,
)
from repro.bgp.reference_propagation import ReferencePropagationEngine


def random_internet(rng, num_ases=28):
    """A random policy-annotated adjacency set plus its ASN list."""
    asns = [64500 + i for i in range(num_ases)]
    adjacencies = []
    linked = set()

    def link(a, b):
        return (min(a, b), max(a, b))

    # Hierarchy: every non-root AS buys transit from 1-2 earlier ASes.
    for i in range(1, num_ases):
        providers = rng.sample(asns[:i], k=min(i, rng.randint(1, 2)))
        for provider in providers:
            linked.add(link(asns[i], provider))
            adjacencies.extend(bidirectional_adjacencies(
                asns[i], provider, Relationship.PROVIDER))

    # Bilateral peering.
    for _ in range(num_ases):
        a, b = rng.sample(asns, 2)
        if link(a, b) in linked:
            continue
        linked.add(link(a, b))
        adjacencies.append(Adjacency(a, b, Relationship.PEER))
        adjacencies.append(Adjacency(b, a, Relationship.PEER))

    # Route-server peering with exporter communities, sometimes through a
    # non-transparent route server.
    rs_asn = 65010
    for _ in range(num_ases // 2):
        a, b = rng.sample(asns, 2)
        if link(a, b) in linked:
            continue
        linked.add(link(a, b))
        transparent = rng.random() < 0.5
        communities_a = frozenset({Community(6695, a & 0xFFFF)})
        communities_b = frozenset({Community(6695, b & 0xFFFF)})
        adjacencies.append(Adjacency(
            a, b, Relationship.RS_PEER, communities=communities_a,
            via_rs_asn=rs_asn, rs_transparent=transparent))
        adjacencies.append(Adjacency(
            b, a, Relationship.RS_PEER, communities=communities_b,
            via_rs_asn=rs_asn, rs_transparent=transparent))

    # A couple of sibling pairs.
    for _ in range(2):
        a, b = rng.sample(asns, 2)
        if link(a, b) in linked:
            continue
        linked.add(link(a, b))
        adjacencies.append(Adjacency(a, b, Relationship.SIBLING))
        adjacencies.append(Adjacency(b, a, Relationship.SIBLING))

    return asns, adjacencies


def random_origins(rng, asns):
    origins = []
    for asn in rng.sample(asns, k=min(len(asns), 10)):
        communities = frozenset()
        if rng.random() < 0.3:
            communities = frozenset({Community(0, asn & 0xFFFF)})
        origins.append(OriginSpec(
            asn=asn,
            prefixes=[Prefix.from_octets(10, (asn >> 8) & 0xFF, asn & 0xFF, 0, 24)],
            communities=communities,
        ))
    return origins


def route_key(route):
    return (route.provenance, route.path, route.communities,
            route.learned_from)


@pytest.mark.parametrize("seed", [1, 7, 20130507, 424242, 999983])
def test_frontier_engine_matches_reference(seed):
    rng = random.Random(seed)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns)

    fast = PropagationEngine(adjacencies).propagate(origins)
    reference = ReferencePropagationEngine(adjacencies).propagate(origins)

    for origin in origins:
        for asn in asns:
            fast_route = fast.best_route(asn, origin.asn)
            ref_route = reference.best_route(asn, origin.asn)
            if ref_route is None:
                assert fast_route is None, (seed, origin.asn, asn)
                continue
            assert fast_route is not None, (seed, origin.asn, asn)
            assert route_key(fast_route) == route_key(ref_route), (
                seed, origin.asn, asn)

    assert fast.visible_links() == reference.visible_links()


@pytest.mark.parametrize("seed", [3, 31337])
def test_frontier_engine_matches_reference_with_recording(seed):
    """record_at / record_alternatives_at filtering behaves identically
    for best routes, and the alternative sets cover the same first hops."""
    rng = random.Random(seed)
    asns, adjacencies = random_internet(rng)
    origins = random_origins(rng, asns)
    observers = rng.sample(asns, k=8)
    alt_observers = observers[:3]

    fast = PropagationEngine(
        adjacencies, record_at=observers,
        record_alternatives_at=alt_observers).propagate(origins)
    reference = ReferencePropagationEngine(
        adjacencies, record_at=observers,
        record_alternatives_at=alt_observers).propagate(origins)

    for origin in origins:
        for asn in asns:
            fast_route = fast.best_route(asn, origin.asn)
            ref_route = reference.best_route(asn, origin.asn)
            assert (fast_route is None) == (ref_route is None)
            if ref_route is not None:
                assert route_key(fast_route) == route_key(ref_route)
        for observer in alt_observers:
            fast_paths = fast.all_paths(observer, origin.asn)
            ref_paths = reference.all_paths(observer, origin.asn)
            assert {r.path[1] for r in fast_paths if len(r.path) > 1} == \
                {r.path[1] for r in ref_paths if len(r.path) > 1}
            if ref_paths:
                # The selected best candidate must agree.
                assert route_key(fast_paths[0]) == route_key(ref_paths[0])
