"""Tests for the IPv4 prefix type."""

import pytest

from repro.bgp.prefix import Prefix


class TestParsing:
    def test_parse_roundtrip(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert str(prefix) == "192.0.2.0/24"
        assert prefix.length == 24

    def test_parse_bare_address_is_host_route(self):
        assert Prefix.parse("10.1.2.3").length == 32

    def test_host_bits_are_zeroed(self):
        prefix = Prefix.parse("192.0.2.77/24")
        assert prefix.network_address == "192.0.2.0"

    def test_from_octets(self):
        prefix = Prefix.from_octets(10, 20, 30, 0, 24)
        assert str(prefix) == "10.20.30.0/24"

    @pytest.mark.parametrize("bad", ["10.0.0/8", "300.1.1.1/24", "a.b.c.d/8",
                                     "10.0.0.0/33", "10.0.0.0/x", "10.0.0.0.0/8"])
    def test_invalid_inputs_rejected(self, bad):
        with pytest.raises(ValueError):
            Prefix.parse(bad)

    def test_invalid_octet_rejected(self):
        with pytest.raises(ValueError):
            Prefix.from_octets(256, 0, 0, 0, 8)


class TestRelations:
    def test_containment(self):
        supernet = Prefix.parse("10.0.0.0/8")
        subnet = Prefix.parse("10.1.0.0/16")
        assert supernet.contains(subnet)
        assert not subnet.contains(supernet)

    def test_self_containment(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains(prefix)

    def test_disjoint_prefixes_do_not_overlap(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("11.0.0.0/8")
        assert not a.overlaps(b)
        assert not b.overlaps(a)

    def test_overlap_is_symmetric_for_nested(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.5.0.0/16")
        assert a.overlaps(b) and b.overlaps(a)

    def test_contains_address(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.contains_address(Prefix.parse("192.0.2.200").network)
        assert not prefix.contains_address(Prefix.parse("192.0.3.1").network)

    def test_supernet_and_subnets(self):
        prefix = Prefix.parse("10.0.0.0/9")
        assert str(prefix.supernet()) == "10.0.0.0/8"
        low, high = Prefix.parse("10.0.0.0/8").subnets()
        assert str(low) == "10.0.0.0/9"
        assert str(high) == "10.128.0.0/9"

    def test_default_route_has_no_supernet(self):
        with pytest.raises(ValueError):
            Prefix(0, 0).supernet()

    def test_host_route_cannot_be_subdivided(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.1/32").subnets()


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = Prefix.parse("10.0.0.0/24")
        b = Prefix.parse("10.0.0.0/24")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_ordering(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a < b < c
        assert a <= a

    def test_immutability(self):
        prefix = Prefix.parse("10.0.0.0/24")
        with pytest.raises(AttributeError):
            prefix.length = 16

    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/24").num_addresses == 256
        assert Prefix.parse("10.0.0.0/32").num_addresses == 1

    def test_hosts_iteration_limited(self):
        hosts = list(Prefix.parse("10.0.0.0/24").hosts(limit=3))
        assert hosts == ["10.0.0.0", "10.0.0.1", "10.0.0.2"]
