"""Tests for relationships, Gao-Rexford export rules, and sessions."""

import pytest

from repro.bgp.communities import Community
from repro.bgp.policy import (
    ExportPolicy,
    ImportPolicy,
    Relationship,
    default_local_pref,
    export_allowed,
)
from repro.bgp.prefix import Prefix
from repro.bgp.session import (
    Session,
    SessionType,
    bilateral_session_count,
    multilateral_session_count,
)


class TestRelationship:
    def test_inverse(self):
        assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER
        assert Relationship.PEER.inverse() is Relationship.PEER
        assert Relationship.RS_PEER.inverse() is Relationship.RS_PEER
        assert Relationship.SIBLING.inverse() is Relationship.SIBLING

    def test_is_peering(self):
        assert Relationship.PEER.is_peering
        assert Relationship.RS_PEER.is_peering
        assert not Relationship.CUSTOMER.is_peering

    def test_local_pref_ordering(self):
        assert default_local_pref(Relationship.CUSTOMER) > \
            default_local_pref(Relationship.PEER) > \
            default_local_pref(Relationship.PROVIDER)
        assert default_local_pref(Relationship.PEER) > \
            default_local_pref(Relationship.RS_PEER)


class TestExportRule:
    def test_customer_routes_exported_to_everyone(self):
        for target in Relationship:
            assert export_allowed(Relationship.CUSTOMER, target)

    def test_peer_routes_only_to_customers(self):
        assert export_allowed(Relationship.PEER, Relationship.CUSTOMER)
        assert not export_allowed(Relationship.PEER, Relationship.PEER)
        assert not export_allowed(Relationship.PEER, Relationship.PROVIDER)
        assert not export_allowed(Relationship.RS_PEER, Relationship.RS_PEER)

    def test_provider_routes_only_to_customers(self):
        assert export_allowed(Relationship.PROVIDER, Relationship.CUSTOMER)
        assert not export_allowed(Relationship.PROVIDER, Relationship.PEER)

    def test_sibling_transparent(self):
        assert export_allowed(Relationship.PROVIDER, Relationship.SIBLING)
        assert export_allowed(Relationship.SIBLING, Relationship.PEER)


class TestPolicies:
    def test_import_policy_blocks_origin(self):
        policy = ImportPolicy(blocked_asns={666})
        assert not policy.accepts(Prefix.parse("10.0.0.0/24"), 666)
        assert policy.accepts(Prefix.parse("10.0.0.0/24"), 100)

    def test_import_policy_blocks_prefix(self):
        bad = Prefix.parse("10.0.0.0/24")
        policy = ImportPolicy(blocked_prefixes={bad})
        assert not policy.accepts(bad, 100)

    def test_import_policy_local_pref_override(self):
        policy = ImportPolicy(local_pref=250)
        assert policy.effective_local_pref(Relationship.PROVIDER) == 250
        assert ImportPolicy().effective_local_pref(Relationship.CUSTOMER) == 100

    def test_export_policy_valley_free_by_default(self):
        policy = ExportPolicy()
        assert not policy.allows(Prefix.parse("10.0.0.0/24"), 1,
                                 Relationship.PEER, Relationship.PEER)
        assert policy.allows(Prefix.parse("10.0.0.0/24"), 1,
                             Relationship.CUSTOMER, Relationship.PEER)

    def test_export_policy_announce_all_override(self):
        policy = ExportPolicy(announce_all=True)
        assert policy.allows(Prefix.parse("10.0.0.0/24"), 1,
                             Relationship.PROVIDER, Relationship.PEER)

    def test_export_policy_blocked_origin(self):
        policy = ExportPolicy(announce_all=True, blocked_asns={42})
        assert not policy.allows(Prefix.parse("10.0.0.0/24"), 42,
                                 Relationship.CUSTOMER, Relationship.CUSTOMER)

    def test_export_policy_adds_communities(self):
        tag = Community(6695, 6695)
        policy = ExportPolicy(added_communities={tag})
        result = policy.communities_for({Community(0, 1)})
        assert tag in result and Community(0, 1) in result

    def test_export_policy_strip_communities(self):
        policy = ExportPolicy(strip_communities=True,
                              added_communities={Community(1, 1)})
        result = policy.communities_for({Community(0, 1)})
        assert result == frozenset({Community(1, 1)})


class TestSession:
    def test_reversed_session(self):
        session = Session(local_asn=1, remote_asn=2,
                          relationship=Relationship.CUSTOMER,
                          session_type=SessionType.TRANSIT)
        reverse = session.reversed()
        assert reverse.local_asn == 2 and reverse.remote_asn == 1
        assert reverse.relationship is Relationship.PROVIDER

    def test_endpoints_sorted(self):
        session = Session(local_asn=9, remote_asn=2,
                          relationship=Relationship.PEER)
        assert session.endpoints == (2, 9)

    def test_session_counts_figure1(self):
        # Figure 1: six ASes in a full mesh need 15 bilateral sessions but
        # only 12 sessions with two route servers.
        assert bilateral_session_count(6) == 15
        assert multilateral_session_count(6, 2) == 12
        assert multilateral_session_count(6, 1) == 6

    def test_session_count_validation(self):
        with pytest.raises(ValueError):
            bilateral_session_count(-1)
        with pytest.raises(ValueError):
            multilateral_session_count(5, -1)
