"""Tests for the AS_PATH attribute and its sanity filters."""

import pytest

from repro.bgp.attributes import ASPath, Origin, common_links


class TestASPath:
    def test_parse_and_accessors(self):
        path = ASPath.parse("3356 1299 15169")
        assert path.first_hop == 3356
        assert path.origin_asn == 15169
        assert len(path) == 3
        assert 1299 in path
        assert path[1] == 1299

    def test_empty_path_has_no_origin(self):
        with pytest.raises(ValueError):
            ASPath().origin_asn

    def test_prepending_is_collapsed_by_dedup(self):
        path = ASPath([100, 200, 200, 200, 300])
        assert path.deduplicated().asns == (100, 200, 300)

    def test_prepending_is_not_a_cycle(self):
        assert not ASPath([100, 200, 200, 300]).has_cycle()

    def test_non_consecutive_repeat_is_a_cycle(self):
        assert ASPath([100, 200, 100, 300]).has_cycle()

    def test_reserved_asn_detection(self):
        assert ASPath([100, 23456, 300]).has_reserved_asn()
        assert ASPath([100, 64512, 300]).has_reserved_asn()
        assert not ASPath([100, 200, 300]).has_reserved_asn()

    def test_is_clean_filters(self):
        assert ASPath([100, 200, 300]).is_clean()
        assert not ASPath([]).is_clean()
        assert not ASPath([100, 23456]).is_clean()
        assert not ASPath([100, 200, 100]).is_clean()

    def test_links_are_sorted_pairs(self):
        path = ASPath([300, 100, 200])
        assert path.links() == [(100, 300), (100, 200)]

    def test_links_skip_prepending(self):
        path = ASPath([300, 100, 100, 200])
        assert path.links() == [(100, 300), (100, 200)]

    def test_prepend(self):
        path = ASPath([200, 300]).prepend(100, count=2)
        assert path.asns == (100, 100, 200, 300)
        with pytest.raises(ValueError):
            ASPath([1]).prepend(2, count=0)

    def test_without_removes_route_server_asn(self):
        path = ASPath([100, 6695, 200])
        assert path.without(6695).asns == (100, 200)

    def test_equality_and_hash(self):
        assert ASPath([1, 2]) == ASPath([1, 2])
        assert hash(ASPath([1, 2])) == hash(ASPath([1, 2]))
        assert ASPath([1, 2]) != ASPath([2, 1])

    def test_str_roundtrip(self):
        assert ASPath.parse(str(ASPath([10, 20, 30]))) == ASPath([10, 20, 30])


class TestHelpers:
    def test_common_links_union(self):
        links = common_links([ASPath([1, 2, 3]), ASPath([3, 4])])
        assert links == {(1, 2), (2, 3), (3, 4)}

    def test_origin_enum_values(self):
        assert Origin.IGP.value == "igp"
        assert Origin.INCOMPLETE.value == "incomplete"
