"""Tests for Route objects and the RIB decision process."""

import pytest

from repro.bgp.attributes import ASPath
from repro.bgp.communities import Community
from repro.bgp.policy import Relationship
from repro.bgp.prefix import Prefix
from repro.bgp.rib import RIB, AdjRIBIn, LocRIB
from repro.bgp.route import Route


def make_route(prefix="10.0.0.0/24", path=(100, 200), local_pref=100,
               learned_from=None, communities=(), med=0):
    return Route(
        prefix=Prefix.parse(prefix),
        as_path=ASPath(path),
        communities=communities,
        local_pref=local_pref,
        learned_from=learned_from if learned_from is not None else (path[0] if path else None),
        med=med,
    )


class TestRoute:
    def test_accessors(self):
        route = make_route(communities=[Community(0, 6695)])
        assert route.origin_asn == 200
        assert Community(0, 6695) in route.communities
        assert not route.is_local()

    def test_local_route(self):
        route = Route(Prefix.parse("10.0.0.0/24"), ASPath([]), learned_from=None)
        assert route.is_local()
        with pytest.raises(ValueError):
            route.origin_asn

    def test_replace_creates_new_instance(self):
        route = make_route(local_pref=100)
        updated = route.replace(local_pref=200)
        assert updated.local_pref == 200
        assert route.local_pref == 100
        assert updated.prefix == route.prefix

    def test_immutability(self):
        route = make_route()
        with pytest.raises(AttributeError):
            route.local_pref = 50

    def test_selection_prefers_higher_local_pref(self):
        low = make_route(path=(1, 9), local_pref=80)
        high = make_route(path=(2, 3, 4, 9), local_pref=100)
        assert high.selection_key() < low.selection_key()

    def test_selection_prefers_shorter_path_on_tie(self):
        short = make_route(path=(1, 9))
        long = make_route(path=(2, 3, 9))
        assert short.selection_key() < long.selection_key()

    def test_selection_prefers_lower_med_then_neighbour(self):
        a = make_route(path=(5, 9), med=0)
        b = make_route(path=(5, 9), med=10)
        assert a.selection_key() < b.selection_key()
        c = make_route(path=(2, 9))
        d = make_route(path=(7, 9))
        assert c.selection_key() < d.selection_key()


class TestAdjRIBIn:
    def test_add_and_replace_per_neighbour(self):
        rib = AdjRIBIn()
        rib.add(make_route(path=(1, 9)))
        rib.add(make_route(path=(1, 5, 9)))  # same neighbour replaces
        assert len(rib) == 1
        rib.add(make_route(path=(2, 9)))
        assert len(rib) == 2

    def test_routes_for_sorted_best_first(self):
        rib = AdjRIBIn()
        rib.add(make_route(path=(2, 5, 9)))
        rib.add(make_route(path=(1, 9)))
        routes = rib.routes_for(Prefix.parse("10.0.0.0/24"))
        assert routes[0].as_path.asns == (1, 9)

    def test_withdraw(self):
        rib = AdjRIBIn()
        rib.add(make_route(path=(1, 9)))
        assert rib.withdraw(Prefix.parse("10.0.0.0/24"), 1)
        assert not rib.withdraw(Prefix.parse("10.0.0.0/24"), 1)
        assert len(rib) == 0


class TestRIB:
    def test_update_installs_best(self):
        rib = RIB()
        changed = rib.update(make_route(path=(2, 5, 9)))
        assert changed
        assert rib.best(Prefix.parse("10.0.0.0/24")).as_path.asns == (2, 5, 9)

    def test_better_route_replaces_best(self):
        rib = RIB()
        rib.update(make_route(path=(2, 5, 9)))
        changed = rib.update(make_route(path=(1, 9)))
        assert changed
        assert rib.best(Prefix.parse("10.0.0.0/24")).as_path.asns == (1, 9)

    def test_worse_route_does_not_change_best(self):
        rib = RIB()
        rib.update(make_route(path=(1, 9)))
        changed = rib.update(make_route(path=(2, 5, 6, 9)))
        assert not changed
        assert rib.best(Prefix.parse("10.0.0.0/24")).as_path.asns == (1, 9)
        assert len(rib.all_paths(Prefix.parse("10.0.0.0/24"))) == 2

    def test_withdraw_falls_back_to_second_best(self):
        rib = RIB()
        rib.update(make_route(path=(1, 9)))
        rib.update(make_route(path=(2, 5, 9)))
        changed = rib.withdraw(Prefix.parse("10.0.0.0/24"), 1)
        assert changed
        assert rib.best(Prefix.parse("10.0.0.0/24")).as_path.asns == (2, 5, 9)

    def test_withdraw_last_route_empties_loc_rib(self):
        rib = RIB()
        rib.update(make_route(path=(1, 9)))
        assert rib.withdraw(Prefix.parse("10.0.0.0/24"), 1)
        assert rib.best(Prefix.parse("10.0.0.0/24")) is None

    def test_withdraw_unknown_is_noop(self):
        rib = RIB()
        assert not rib.withdraw(Prefix.parse("10.0.0.0/24"), 1)


class TestLocRIB:
    def test_install_and_remove(self):
        loc = LocRIB()
        route = make_route()
        loc.install(route)
        assert loc.best(route.prefix) == route
        assert len(loc) == 1
        loc.remove(route.prefix)
        assert loc.best(route.prefix) is None
